"""Deadline arithmetic, ContextVar propagation, and end-to-end 504s."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from time import perf_counter

import pytest

from repro.exceptions import DeadlineExceededError
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    use_deadline,
)
from repro.service.app import QueryService
from repro.service.http import create_server
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


def expired_deadline(budget_ms: float = 5.0) -> Deadline:
    """A deadline whose budget ran out one second ago."""
    return Deadline(budget_ms, started=perf_counter() - 1.0)


class TestDeadlineMath:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-10)

    def test_fresh_deadline_not_expired(self):
        deadline = Deadline.after_ms(60_000)
        assert not deadline.expired()
        assert deadline.remaining_ms() > 59_000
        assert deadline.remaining_seconds() > 59
        assert deadline.elapsed_ms() < 1_000

    def test_expired_deadline_reports_expiry(self):
        deadline = expired_deadline()
        assert deadline.expired()
        assert deadline.remaining_ms() < 0
        assert deadline.elapsed_ms() >= 1_000

    def test_check_raises_structured_504_with_partial(self):
        deadline = expired_deadline(budget_ms=5)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("unit-test", rounds=3)
        error = excinfo.value
        assert error.status == 504
        assert error.detail["where"] == "unit-test"
        assert error.detail["budget_ms"] == 5.0
        assert error.detail["partial"] == {"rounds": 3}

    def test_check_is_noop_before_expiry(self):
        Deadline.after_ms(60_000).check("unit-test")


class TestContextPropagation:
    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None
        check_deadline("anywhere")  # must not raise

    def test_use_deadline_activates_and_restores(self):
        deadline = Deadline.after_ms(60_000)
        with use_deadline(deadline) as active:
            assert active is deadline
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_use_deadline_none_deactivates_nested(self):
        with use_deadline(Deadline.after_ms(60_000)):
            with use_deadline(None):
                assert current_deadline() is None
                check_deadline("inner")
            assert current_deadline() is not None

    def test_check_deadline_raises_for_expired_ambient(self):
        with use_deadline(expired_deadline()):
            with pytest.raises(DeadlineExceededError):
                check_deadline("ambient")

    def test_pool_threads_reactivate_explicitly(self):
        # ContextVars do not cross threads: the worker sees None until it
        # scopes the parent's deadline onto itself with use_deadline.
        deadline = Deadline.after_ms(60_000)
        seen = {}

        def worker():
            seen["inherited"] = current_deadline()
            with use_deadline(deadline):
                seen["activated"] = current_deadline()

        with use_deadline(deadline):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["inherited"] is None
        assert seen["activated"] is deadline


class TestServiceEnforcement:
    def test_expired_deadline_aborts_query(self):
        service = QueryService(make_graph())
        try:
            with use_deadline(expired_deadline()):
                with pytest.raises(DeadlineExceededError):
                    service.query(**QUERY)
        finally:
            service.close()

    def test_expired_deadline_surfaces_in_handle_query(self):
        service = QueryService(make_graph())
        try:
            with use_deadline(expired_deadline()):
                with pytest.raises(DeadlineExceededError) as excinfo:
                    service.handle_query(dict(QUERY))
            assert excinfo.value.status == 504
        finally:
            service.close()

    def test_generous_deadline_answers_normally(self):
        service = QueryService(make_graph())
        try:
            with use_deadline(Deadline.after_ms(60_000)):
                result, _ = service.query(**QUERY)
            assert result.answer is True
        finally:
            service.close()

    def test_batch_respects_ambient_deadline(self):
        service = QueryService(make_graph())
        try:
            payload = {"queries": [dict(QUERY), dict(QUERY)]}
            with use_deadline(expired_deadline()):
                with pytest.raises(DeadlineExceededError):
                    service.handle_batch(payload)
        finally:
            service.close()


class HttpFixture:
    def __init__(self, service, **server_kwargs):
        self.service = service
        self.server = create_server(service, "127.0.0.1", 0, **server_kwargs)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.base = f"http://127.0.0.1:{self.server.server_address[1]}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)
        self.service.close()

    def post(self, path, payload):
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def post_error(self, path, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(path, payload)
        error = excinfo.value
        return error.code, json.loads(error.read())


class TestHttpDeadlines:
    def test_deadline_ms_query_parameter_happy_path(self):
        fixture = HttpFixture(QueryService(make_graph()))
        try:
            status, document = fixture.post("/query?deadline_ms=60000", QUERY)
            assert status == 200
            assert document["answer"] is True
        finally:
            fixture.close()

    def test_junk_deadline_is_a_400(self):
        fixture = HttpFixture(QueryService(make_graph()))
        try:
            for raw in ("junk", "-5", "0", "inf", "nan"):
                code, document = fixture.post_error(
                    f"/query?deadline_ms={raw}", QUERY
                )
                assert code == 400
                assert document["error"]["type"] == "bad-request"
        finally:
            fixture.close()

    def test_tiny_deadline_times_out_structured(self):
        # An sub-microsecond budget expires before the execute seam even
        # runs, so this stays fast and deterministic.
        fixture = HttpFixture(QueryService(make_graph()))
        try:
            code, document = fixture.post_error(
                "/query?deadline_ms=0.001", QUERY
            )
            assert code == 504
            error = document["error"]
            assert error["type"] == "deadline-exceeded"
            assert error["detail"]["budget_ms"] == 0.001
            assert "where" in error["detail"]
        finally:
            fixture.close()

    def test_server_default_deadline_applies(self):
        fixture = HttpFixture(
            QueryService(make_graph()), default_deadline_ms=0.0001
        )
        try:
            code, document = fixture.post_error("/query", QUERY)
            assert code == 504
            assert document["error"]["type"] == "deadline-exceeded"
            # An explicit parameter wins over the server default.
            status, document = fixture.post("/query?deadline_ms=60000", QUERY)
            assert status == 200
            assert document["answer"] is True
        finally:
            fixture.close()

    def test_deadline_stats_counter_moves(self):
        service = QueryService(make_graph())
        fixture = HttpFixture(service)
        try:
            fixture.post_error("/query?deadline_ms=0.0001", QUERY)
            snapshot = service.stats_snapshot()
            assert snapshot["service"]["errors"]["deadline-exceeded"] >= 1
        finally:
            fixture.close()
