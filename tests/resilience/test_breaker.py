"""CircuitBreaker state machine driven by an injected clock."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("window", 10)
    kwargs.setdefault("min_calls", 5)
    kwargs.setdefault("reset_timeout", 5.0)
    breaker = CircuitBreaker(clock=clock, **kwargs)
    return breaker, clock


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_admits(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_success_resets_consecutive_failures(self):
        # min_calls high enough that the windowed-rate trigger stays out
        # of the way; only the consecutive counter is under test.
        breaker, _ = make_breaker(failure_threshold=3, min_calls=10)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(error_rate=0.0)


class TestTripping:
    def test_consecutive_failures_open_the_breaker(self):
        breaker, _ = make_breaker(failure_threshold=3)
        trip(breaker)
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.stats()["opens"] == 1
        assert breaker.stats()["rejected"] >= 1

    def test_error_rate_trips_only_past_min_calls(self):
        # One failure in a cold window must not trip, even at 100% rate.
        breaker, _ = make_breaker(
            failure_threshold=100, min_calls=5, error_rate=0.5
        )
        breaker.record_failure()
        assert breaker.state == CLOSED
        # Interleave so consecutive failures stay below the threshold but
        # the windowed rate crosses 50% once min_calls outcomes are in.
        for _ in range(2):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_healthy_majority_stays_closed(self):
        breaker, _ = make_breaker(failure_threshold=100, min_calls=5)
        for _ in range(20):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestRecovery:
    def test_open_becomes_half_open_after_reset_timeout(self):
        breaker, clock = make_breaker(reset_timeout=5.0)
        trip(breaker)
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_one_probe_at_a_time(self):
        breaker, clock = make_breaker(reset_timeout=5.0)
        trip(breaker)
        clock.advance(5.1)
        assert breaker.allow() is True  # the probe
        assert breaker.allow() is False  # concurrent caller rejected

    def test_probe_success_closes_and_clears_window(self):
        breaker, clock = make_breaker(reset_timeout=5.0)
        trip(breaker)
        clock.advance(5.1)
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CLOSED
        stats = breaker.stats()
        assert stats["window_calls"] == 0
        assert stats["consecutive_failures"] == 0

    def test_probe_failure_reopens_with_fresh_timer(self):
        breaker, clock = make_breaker(reset_timeout=5.0)
        trip(breaker)
        clock.advance(5.1)
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN


class TestStats:
    def test_stats_shape_and_state_code(self):
        breaker, clock = make_breaker()
        breaker.record_success()
        stats = breaker.stats()
        assert set(stats) == {
            "state",
            "state_code",
            "consecutive_failures",
            "window_calls",
            "window_error_rate",
            "opens",
            "rejected",
            "failures",
            "successes",
        }
        assert stats["state_code"] == 0
        trip(breaker)
        assert breaker.stats()["state_code"] == 2
        clock.advance(10)
        assert breaker.stats()["state_code"] == 1
