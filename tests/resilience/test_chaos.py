"""Randomized chaos suite: under injected faults, answers are exact,
soundly degraded, or structured errors — never wrong and never hung.

Each seed fully determines the graph, the fault plan, and the query mix
(fault rules are pure counter arithmetic), so a failing seed replays
deterministically.  Hang durations are kept short (0.3s) because
``coordinator.close()`` drains the scatter pool with ``wait=True``.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ShardUnavailableError,
)
from repro.resilience.deadline import Deadline, use_deadline
from repro.resilience.faults import FaultRule, FaultyWorker
from repro.resilience.retry import RetryPolicy
from repro.service.app import QueryService
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges

SEEDS = range(30)
VERTICES = 20
CONSTRAINT = "SELECT ?x WHERE { ?x <mark> ?y . }"

#: Structured refusals a faulted fleet may answer with.
STRUCTURED = (DeadlineExceededError, OverloadedError, ShardUnavailableError)

#: Per-query wall-clock ceiling: worst case is a hang (0.3s) absorbed by
#: the scatter timeout on both phases plus retries and bookkeeping.
MAX_QUERY_SECONDS = 5.0


def build_graph(rng: random.Random, seed: int):
    names = [f"v{i}" for i in range(VERTICES)]
    edges = []
    for name in names:
        for _ in range(rng.randint(1, 3)):
            edges.append((name, rng.choice(("go", "go", "mark")),
                          rng.choice(names)))
    # Guarantee both labels exist so no query is rejected outright.
    edges.append((names[0], "go", names[1]))
    edges.append((names[1], "mark", names[2]))
    return graph_from_edges(edges, name=f"chaos{seed}"), names


def random_rules(rng: random.Random) -> list[FaultRule]:
    rules = []
    for _ in range(rng.randint(1, 2)):
        kind = rng.choice(("slow", "drop", "error", "flap", "hang"))
        rules.append(
            FaultRule(
                kind,
                start=rng.randint(1, 3),
                every=rng.randint(1, 3),
                count=1 if kind == "hang" else rng.choice((1, 2, 3, None)),
                duration={"hang": 0.3, "slow": 0.02}.get(kind),
            )
        )
    return rules


def check_response(result, oracle_answer: bool) -> None:
    if result.degraded is None:
        assert result.answer == oracle_answer
    elif result.degraded["verdict"] == "reachable":
        # A degraded True must be a real True (edge-subset monotonicity).
        assert result.answer is True
        assert oracle_answer is True
    else:
        assert result.degraded["verdict"] == "unknown"
        assert result.answer is False


def run_seed(seed: int) -> dict:
    rng = random.Random(1000 + seed)
    graph, names = build_graph(rng, seed)
    oracle = QueryService(graph)
    service = ShardedQueryService(
        graph,
        shards=3,
        local_fast_path=bool(seed % 3),
        degraded_answers=bool(seed % 2),
        scatter_timeout=0.15,
        retry_policy=RetryPolicy(
            max_attempts=2, base_delay=0.01, seed=seed, sleep=lambda _d: None
        ),
    )
    outcomes = {"exact": 0, "degraded": 0, "refused": 0}
    try:
        for index in rng.sample(range(len(service.workers)),
                                rng.randint(1, 2)):
            wrapper = FaultyWorker(
                service.workers[index],
                random_rules(rng),
                name=f"shard{index}",
            )
            service.workers[index] = wrapper
            service.coordinator.workers[index] = wrapper
        for _ in range(4):
            source, target = rng.sample(names, 2)
            labels = rng.choice((["go"], ["go", "mark"]))
            spec = dict(
                source=source, target=target, labels=labels,
                constraint=CONSTRAINT,
            )
            expected, _ = oracle.query(**spec)
            budget_ms = rng.choice((None, 400.0))
            scope = (
                use_deadline(Deadline.after_ms(budget_ms))
                if budget_ms is not None
                else use_deadline(None)
            )
            started = perf_counter()
            try:
                with scope:
                    result, _ = service.query(**spec, use_cache=False)
            except STRUCTURED:
                outcomes["refused"] += 1
            else:
                check_response(result, expected.answer)
                key = "exact" if result.degraded is None else "degraded"
                outcomes[key] += 1
            assert perf_counter() - started < MAX_QUERY_SECONDS
    finally:
        service.close()
        oracle.close()
    return outcomes


class TestChaos:
    def test_thirty_seeds_never_answer_wrong(self):
        totals = {"exact": 0, "degraded": 0, "refused": 0}
        for seed in SEEDS:
            for key, value in run_seed(seed).items():
                totals[key] += value
        assert sum(totals.values()) == len(SEEDS) * 4
        # The suite is only meaningful if faults actually bite sometimes
        # AND plenty of queries still come back exact.
        assert totals["exact"] > 0
        assert totals["degraded"] + totals["refused"] > 0

    def test_failing_seed_replays_identically(self):
        assert run_seed(7) == run_seed(7)
