"""Graceful degradation: fail-fast 503s vs. opted-in degraded answers."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ShardUnavailableError
from repro.resilience.faults import FaultRule, FaultyWorker
from repro.resilience.retry import RetryPolicy
from repro.service.http import create_server
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


def fast_retry():
    return RetryPolicy(max_attempts=2, base_delay=0.001, seed=1)


def make_service(**kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("local_fast_path", False)
    kwargs.setdefault("retry_policy", fast_retry())
    return ShardedQueryService(make_graph(), **kwargs)


def break_workers(service, rules_factory):
    """Wrap every worker (in both lists) with a FaultyWorker."""
    faulty = []
    for index, worker in enumerate(list(service.workers)):
        wrapper = FaultyWorker(
            worker, rules_factory(index), name=f"shard{index}"
        )
        service.workers[index] = wrapper
        service.coordinator.workers[index] = wrapper
        faulty.append(wrapper)
    return faulty


class TestFailFast:
    def test_downed_shard_raises_structured_503(self):
        service = make_service(degraded_answers=False)
        break_workers(service, lambda i: [FaultRule("error")])
        try:
            with pytest.raises(ShardUnavailableError) as excinfo:
                service.query(**QUERY)
            error = excinfo.value
            assert error.status == 503
            assert isinstance(error.shard, int)
            assert "shard" in error.detail
        finally:
            service.close()

    def test_http_503_names_the_shard(self):
        service = make_service(degraded_answers=False)
        break_workers(service, lambda i: [FaultRule("error")])
        server = create_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            request = urllib.request.Request(
                f"{base}/query",
                data=json.dumps(QUERY).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            document = json.loads(excinfo.value.read())
            assert document["error"]["type"] == "shard-unavailable"
            assert "shard" in document["error"]["detail"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()


class TestDegradedAnswers:
    def test_total_outage_degrades_to_unknown(self):
        service = make_service(degraded_answers=True)
        break_workers(service, lambda i: [FaultRule("error")])
        try:
            result, meta = service.query(**QUERY)
            assert result.degraded is not None
            assert result.degraded["missing_shards"]
            if result.degraded["verdict"] == "unknown":
                # Unreachable over a partial fleet is never a claim.
                assert result.answer is False
            else:
                assert result.degraded["verdict"] == "reachable"
                assert result.answer is True
            assert meta["degraded"] == result.degraded
        finally:
            service.close()

    def test_degraded_reachable_claims_are_sound(self):
        # The full graph answers True for QUERY; any degraded "reachable"
        # verdict must therefore agree (edge-subset monotonicity), and a
        # degraded run can never invent a True the oracle lacks.
        service = make_service(degraded_answers=True)
        break_workers(
            service, lambda i: [FaultRule("error", count=1)] if i == 0 else []
        )
        try:
            result, _ = service.query(**QUERY)
            if result.degraded is None:
                assert result.answer is True
            elif result.degraded["verdict"] == "reachable":
                assert result.answer is True
            else:
                assert result.answer is False
        finally:
            service.close()

    def test_degraded_answers_are_not_cached(self):
        service = make_service(degraded_answers=True)
        faulty = break_workers(
            service, lambda i: [FaultRule("error", count=2)]
        )
        try:
            first, _ = service.query(**QUERY)
            assert first.degraded is not None
            # Heal the fleet: clear every remaining fault rule.
            for wrapper in faulty:
                wrapper._faults.clear()
            second, meta = service.query(**QUERY)
            assert second.degraded is None
            assert meta["source"] == "evaluated"  # not a cached degradation
            assert second.answer is True
            # The exact answer now populates the cache as usual.
            third, meta = service.query(**QUERY)
            assert meta["source"] == "result-cache"
            assert third.answer is True
        finally:
            service.close()

    def test_degradation_is_observable_in_stats(self):
        service = make_service(degraded_answers=True)
        break_workers(service, lambda i: [FaultRule("error")])
        try:
            result, _ = service.query(**QUERY)
            assert result.degraded is not None
            stats = service.coordinator.stats()
            resilience = stats["resilience"]
            assert resilience["worker_failures"] >= 1
            assert resilience["retries"] >= 1
            assert resilience["degraded_answers"] >= 1
            assert resilience["degraded_mode"] is True
            assert resilience["breakers"]  # one per shard
            service_doc = service.stats_snapshot()
            assert (
                service_doc["service"]["resilience"]["degraded_answers"] >= 1
            )
        finally:
            service.close()

    def test_healthy_fleet_is_never_degraded(self):
        service = make_service(degraded_answers=True)
        try:
            result, _ = service.query(**QUERY)
            assert result.degraded is None
            assert result.answer is True
        finally:
            service.close()
