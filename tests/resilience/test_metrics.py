"""The new resilience series render valid Prometheus text and strict-parse."""

from __future__ import annotations

from repro.obs.prometheus import parse_prometheus_text, render_metrics
from repro.resilience.faults import FaultRule, FaultyWorker
from repro.resilience.retry import RetryPolicy
from repro.service.app import QueryService
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


def render_names(service):
    samples = parse_prometheus_text(
        render_metrics({"default": service.stats_snapshot()}, version="test")
    )
    return samples, {name for (name, _labels) in samples}


class TestResilienceSeries:
    def test_faulted_sharded_service_renders_breaker_series(self):
        service = ShardedQueryService(
            make_graph(),
            shards=3,
            local_fast_path=False,
            degraded_answers=True,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001, seed=1),
        )
        for index, worker in enumerate(list(service.workers)):
            wrapper = FaultyWorker(
                worker, [FaultRule("error")], name=f"shard{index}"
            )
            service.workers[index] = wrapper
            service.coordinator.workers[index] = wrapper
        try:
            result, _ = service.query(**QUERY)
            assert result.degraded is not None
            samples, names = render_names(service)
            assert {
                "repro_resilience_retries_total",
                "repro_resilience_worker_failures_total",
                "repro_resilience_degraded_answers_total",
                "repro_resilience_degraded_mode",
                "repro_resilience_breaker_state",
                "repro_degraded_answers_total",
                "repro_shard_coordinator_scatter_serial_fallbacks",
            } <= names
            breaker_states = {
                labels: value
                for (name, labels), value in samples.items()
                if name == "repro_resilience_breaker_state"
            }
            assert len(breaker_states) == 3  # one gauge per shard
            failures = sum(
                value for (name, _l), value in samples.items()
                if name == "repro_resilience_worker_failures_total"
            )
            assert failures >= 1
        finally:
            service.close()

    def test_admission_series_render(self):
        service = QueryService(make_graph(), max_concurrent=2, max_queue=1)
        try:
            service.handle_query(dict(QUERY))
            _samples, names = render_names(service)
            assert {
                "repro_admission_active",
                "repro_admission_queued",
                "repro_admission_max_concurrent",
                "repro_admission_admitted_total",
                "repro_admission_shed_total",
                "repro_requests_shed_total",
            } <= names
        finally:
            service.close()

    def test_plain_service_has_no_resilience_noise(self):
        service = QueryService(make_graph())
        try:
            service.handle_query(dict(QUERY))
            _samples, names = render_names(service)
            assert "repro_admission_active" not in names
            assert "repro_resilience_breaker_state" not in names
        finally:
            service.close()
