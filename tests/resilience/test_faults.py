"""Fault-injection harness: rule matching, firing, and wrapper delegation."""

from __future__ import annotations

import time

import pytest

from repro.resilience.faults import FaultPlan, FaultRule, FaultyWal, FaultyWorker


class Recorder:
    """A stand-in worker recording every expand call."""

    shard_id = 0

    def __init__(self):
        self.calls = []

    def expand(self, seeds, mask, exclude=(), trace=None, deadline_ms=None):
        self.calls.append((tuple(seeds), deadline_ms))
        return "expanded"

    def local_query(self, query):
        return {"answer": True}

    def describe(self):
        return {"shard": self.shard_id}

    def custom_method(self):
        return "delegated"


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule("explode")

    def test_matches_start_every_count(self):
        rule = FaultRule("error", start=2, every=2, count=2)
        fired = []
        for n in range(1, 10):
            if rule.matches("expand", n):
                rule._fired += 1  # the injector claims matches like this
                fired.append(n)
        assert fired == [2, 4]  # count=2 caps it

    def test_every_without_count_keeps_firing(self):
        rule = FaultRule("error", start=1, every=3)
        hits = []
        for n in range(1, 10):
            if rule.matches("expand", n):
                rule._fired += 1
                hits.append(n)
        assert hits == [1, 4, 7]

    def test_operation_must_match(self):
        rule = FaultRule("error", operation="reload")
        assert not rule.matches("expand", 1)
        assert rule.matches("reload", 1)
        wildcard = FaultRule("error", operation="*")
        assert wildcard.matches("expand", 1)
        assert wildcard.matches("reload", 1)


class TestFaultyWorker:
    def test_error_rule_raises_runtime_error(self):
        worker = FaultyWorker(Recorder(), [FaultRule("error")])
        with pytest.raises(RuntimeError, match="injected error"):
            worker.expand([1], 0b1)

    def test_drop_and_flap_raise_connection_error(self):
        for kind in ("drop", "flap"):
            worker = FaultyWorker(Recorder(), [FaultRule(kind)], name="w9")
            with pytest.raises(ConnectionError, match=f"injected {kind} on w9"):
                worker.expand([1], 0b1)

    def test_count_limits_the_blast_radius(self):
        inner = Recorder()
        worker = FaultyWorker(inner, [FaultRule("error", count=2)])
        for _ in range(2):
            with pytest.raises(RuntimeError):
                worker.expand([1], 0b1)
        assert worker.expand([1], 0b1) == "expanded"
        assert len(inner.calls) == 1

    def test_slow_rule_delays_then_delegates(self):
        worker = FaultyWorker(
            Recorder(), [FaultRule("slow", duration=0.05)]
        )
        started = time.perf_counter()
        assert worker.expand([1], 0b1) == "expanded"
        assert time.perf_counter() - started >= 0.045

    def test_arguments_pass_through_unharmed(self):
        inner = Recorder()
        worker = FaultyWorker(inner, [])
        worker.expand([3, 4], 0b1, deadline_ms=250.0)
        assert inner.calls == [((3, 4), 250.0)]

    def test_local_query_interception(self):
        worker = FaultyWorker(
            Recorder(), [FaultRule("error", operation="local_query")]
        )
        with pytest.raises(RuntimeError):
            worker.local_query({"source": "s"})

    def test_describe_reports_fault_plan(self):
        worker = FaultyWorker(Recorder(), [FaultRule("error", count=1)])
        with pytest.raises(RuntimeError):
            worker.expand([1], 0b1)
        document = worker.describe()
        assert document["shard"] == 0
        faults = document["faults"]
        assert faults["calls"]["expand"] == 1
        assert faults["rules"] == 1

    def test_unwrapped_attributes_delegate(self):
        worker = FaultyWorker(Recorder(), [])
        assert worker.custom_method() == "delegated"
        assert worker.shard_id == 0


class TestFaultyWal:
    class StubWal:
        def __init__(self):
            self.reloads = 0

        def reload(self):
            self.reloads += 1

        def replay_into(self, service):
            return {"applied": 0, "skipped": 0}

    def test_reload_rule_fires(self):
        wal = FaultyWal(
            self.StubWal(), [FaultRule("error", operation="reload")]
        )
        with pytest.raises(RuntimeError):
            wal.reload()

    def test_default_expand_rules_never_touch_the_wal(self):
        inner = self.StubWal()
        wal = FaultyWal(inner, [FaultRule("error")])  # operation="expand"
        wal.reload()
        assert inner.reloads == 1


class TestFaultPlan:
    def test_describe_lists_rules(self):
        plan = FaultPlan({"expand": [FaultRule("hang", duration=0.1)]})
        described = plan.describe()
        assert described["expand"][0]["kind"] == "hang"
        assert described["expand"][0]["duration"] == 0.1
