"""RetryPolicy: backoff bounds, non-retryable short-circuit, budget awareness."""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.exceptions import CircuitOpenError, DeadlineExceededError
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy


class Flaky:
    """Callable failing ``failures`` times before succeeding."""

    def __init__(self, failures, error=ConnectionError("boom")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


def make_policy(**kwargs):
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("base_delay", 0.01)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("sleep", lambda _delay: None)
    return RetryPolicy(**kwargs)


class TestCall:
    def test_success_without_failures_is_one_call(self):
        fn = Flaky(0)
        assert make_policy().call(fn) == "ok"
        assert fn.calls == 1

    def test_recovers_within_budget(self):
        fn = Flaky(2)
        assert make_policy(max_attempts=3).call(fn) == "ok"
        assert fn.calls == 3

    def test_exhaustion_reraises_last_error(self):
        fn = Flaky(10, error=ConnectionError("still down"))
        with pytest.raises(ConnectionError, match="still down"):
            make_policy(max_attempts=3).call(fn)
        assert fn.calls == 3

    def test_non_retryable_errors_fail_immediately(self):
        for error in (
            DeadlineExceededError("x", elapsed_ms=1, budget_ms=1),
            CircuitOpenError(0, "open"),
        ):
            fn = Flaky(10, error=error)
            with pytest.raises(type(error)):
                make_policy().call(fn)
            assert fn.calls == 1

    def test_on_retry_and_on_failure_callbacks(self):
        retries = []
        failures = []
        fn = Flaky(2)
        make_policy(max_attempts=3).call(
            fn,
            on_retry=lambda attempt, error: retries.append(attempt),
            on_failure=lambda error: failures.append(type(error).__name__),
        )
        assert retries == [1, 2]
        assert failures == ["ConnectionError", "ConnectionError"]

    def test_on_failure_fires_on_final_attempt_too(self):
        failures = []
        with pytest.raises(ConnectionError):
            make_policy(max_attempts=2).call(
                Flaky(10), on_failure=lambda error: failures.append(error)
            )
        assert len(failures) == 2


class TestDeadlineAwareness:
    def test_gives_up_when_delay_exceeds_remaining_budget(self):
        # ~1ms of budget left but backoff delays are >= 50ms: the policy
        # must re-raise instead of sleeping past the deadline.
        slept = []
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.05, seed=7, sleep=slept.append
        )
        fn = Flaky(10)
        deadline = Deadline(1.0, started=perf_counter())
        with pytest.raises(ConnectionError):
            policy.call(fn, deadline=deadline)
        assert fn.calls == 1
        assert slept == []

    def test_retries_normally_with_generous_budget(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.001, seed=7, sleep=slept.append
        )
        fn = Flaky(2)
        assert policy.call(fn, deadline=Deadline.after_ms(60_000)) == "ok"
        assert fn.calls == 3
        assert len(slept) == 2


class TestBackoff:
    def test_delays_stay_within_configured_bounds(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.05, max_delay=2.0, seed=11
        )
        delay = None
        for _ in range(50):
            delay = policy.next_delay(delay)
            assert 0.05 <= delay <= 2.0

    def test_seeded_policies_are_deterministic(self):
        a = RetryPolicy(max_attempts=3, base_delay=0.05, seed=3)
        b = RetryPolicy(max_attempts=3, base_delay=0.05, seed=3)
        sequence_a = [a.next_delay(None)]
        sequence_b = [b.next_delay(None)]
        for _ in range(5):
            sequence_a.append(a.next_delay(sequence_a[-1]))
            sequence_b.append(b.next_delay(sequence_b[-1]))
        assert sequence_a == sequence_b

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
