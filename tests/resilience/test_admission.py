"""AdmissionController caps, queueing, and HTTP 429s with Retry-After."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from time import perf_counter

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServiceConfigError,
)
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import Deadline
from repro.service.app import QueryService
from repro.service.http import create_server
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


class TestController:
    def test_admits_up_to_cap_then_sheds(self):
        controller = AdmissionController(2, max_queue=0)
        first = controller.admit()
        second = controller.admit()
        with pytest.raises(OverloadedError) as excinfo:
            controller.admit()
        error = excinfo.value
        assert error.status == 429
        assert error.headers["Retry-After"]
        assert error.detail["max_concurrent"] == 2
        first.__exit__(None, None, None)
        second.__exit__(None, None, None)

    def test_release_frees_the_slot(self):
        controller = AdmissionController(1)
        with controller.admit():
            pass
        with controller.admit():
            pass
        stats = controller.stats()
        assert stats["admitted"] == 2
        assert stats["active"] == 0
        assert stats["shed"] == 0

    def test_queued_request_proceeds_after_release(self):
        controller = AdmissionController(1, max_queue=1, max_wait=5.0)
        slot = controller.admit()
        outcome = {}

        def waiter():
            with controller.admit():
                outcome["admitted"] = True

        thread = threading.Thread(target=waiter)
        thread.start()
        # Give the waiter time to enter the queue, then free the slot.
        for _ in range(200):
            if controller.stats()["queued"] == 1:
                break
            threading.Event().wait(0.005)
        assert controller.stats()["queued"] == 1
        slot.__exit__(None, None, None)
        thread.join(timeout=5)
        assert outcome.get("admitted") is True
        assert controller.stats()["queued"] == 0

    def test_bounded_wait_times_out_as_overload(self):
        controller = AdmissionController(1, max_queue=1, max_wait=0.05)
        slot = controller.admit()
        try:
            with pytest.raises(OverloadedError) as excinfo:
                controller.admit()
            assert "queued longer" in str(excinfo.value)
            stats = controller.stats()
            assert stats["queue_timeouts"] == 1
            assert stats["shed"] == 1
        finally:
            slot.__exit__(None, None, None)

    def test_expired_deadline_in_queue_is_a_504(self):
        controller = AdmissionController(1, max_queue=1, max_wait=5.0)
        slot = controller.admit()
        try:
            expired = Deadline(5, started=perf_counter() - 1.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                controller.admit(deadline=expired)
            assert excinfo.value.detail["where"] == "admission-queue"
        finally:
            slot.__exit__(None, None, None)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_queue=-1)


class TestServiceIntegration:
    def test_service_validates_admission_config(self):
        with pytest.raises(ServiceConfigError):
            QueryService(make_graph(), max_concurrent=0)

    def test_shed_request_is_structured_429_over_http(self):
        service = QueryService(make_graph(), max_concurrent=1)
        server = create_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        slot = service.admission.admit()  # occupy the only slot
        try:
            request = urllib.request.Request(
                f"{base}/query",
                data=json.dumps(QUERY).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] is not None
            document = json.loads(error.read())
            assert document["error"]["type"] == "overloaded"
            assert document["error"]["detail"]["retry_after_seconds"] == 1.0
            # The shed shows up in /stats for operators.
            slot.__exit__(None, None, None)
            slot = None
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
                stats = json.loads(resp.read())
            assert stats["admission"]["shed"] == 1
            assert stats["service"]["resilience"]["requests_shed"] == 1
        finally:
            if slot is not None:
                slot.__exit__(None, None, None)
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    def test_admitted_requests_answer_normally(self):
        service = QueryService(make_graph(), max_concurrent=4)
        try:
            document = service.handle_query(dict(QUERY))
            assert document["answer"] is True
            assert service.admission.stats()["admitted"] == 1
            assert service.admission.stats()["active"] == 0
        finally:
            service.close()
