"""Tests for the bench table renderer."""

from repro.bench.reporting import format_number, format_table, render_experiment


class TestFormatNumber:
    def test_none_is_dash(self):
        assert format_number(None) == "-"

    def test_strings_pass_through(self):
        assert format_number("-") == "-"

    def test_bools(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"

    def test_ints_with_separators(self):
        assert format_number(1234567) == "1,234,567"

    def test_floats_by_magnitude(self):
        assert format_number(0.0) == "0"
        assert format_number(1234.5) == "1,234"
        assert format_number(3.14159) == "3.14"
        assert format_number(0.00123) == "0.0012"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["A", "Bee"], [["x", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        # all rows equal width
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2
        assert lines[0].startswith("A")

    def test_header_separator(self):
        table = format_table(["H"], [["v"]])
        assert "-" in table.splitlines()[1]


class TestRenderExperiment:
    def test_title_and_notes(self):
        text = render_experiment("My Title", ["H"], [["v"]], notes=["a note"])
        assert "== My Title ==" in text
        assert "note: a note" in text

    def test_no_notes(self):
        text = render_experiment("T", ["H"], [["v"]])
        assert "note" not in text
