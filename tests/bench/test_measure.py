"""Tests for the query-group measurement runner."""

import pytest

from repro.bench.measure import MeasurementError, run_query_group
from repro.constraints.label_constraint import LabelConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.workloads.generator import WorkloadQuery


def make_item(source, target, labels, expected):
    query = LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=figure3_constraint(),
    )
    return WorkloadQuery(query=query, expected=expected, tree_size=1, label_bucket=0)


class TestRunQueryGroup:
    def test_aggregates_per_algorithm(self):
        g = figure3_graph()
        items = [
            make_item("v0", "v4", ["likes", "follows"], True),
            make_item("v0", "v3", ["likes", "follows"], False),
        ]
        aggregates = run_query_group([UIS(g), NaiveTwoProcedure(g)], items)
        assert set(aggregates) == {"UIS", "Naive"}
        assert aggregates["UIS"].count == 2
        assert aggregates["UIS"].true_answers == 1
        assert aggregates["UIS"].mean_seconds > 0

    def test_wrong_expectation_raises(self):
        g = figure3_graph()
        items = [make_item("v0", "v4", ["likes", "follows"], False)]  # wrong!
        with pytest.raises(MeasurementError):
            run_query_group([UIS(g)], items)

    def test_verify_can_be_disabled(self):
        g = figure3_graph()
        items = [make_item("v0", "v4", ["likes", "follows"], False)]
        aggregates = run_query_group([UIS(g)], items, verify=False)
        assert aggregates["UIS"].count == 1

    def test_mean_passed_vertices(self):
        g = figure3_graph()
        items = [make_item("v0", "v4", ["likes", "follows"], True)]
        aggregates = run_query_group([UIS(g)], items)
        assert aggregates["UIS"].mean_passed_vertices >= 1
