"""Smoke tests: every table/figure runner executes at SMOKE scale.

These are the CI guarantee that the benchmark harness — the deliverable
that regenerates every table and figure — actually runs end-to-end.
"""

import pytest

from repro.bench.experiments import SMOKE
from repro.bench.harness import EXPERIMENTS, render_results, run_experiment
from repro.exceptions import BenchmarkError


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "fig5",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "ablation",  # extension beyond the paper
        }

    def test_ablation_runs(self):
        results = run_experiment("ablation", SMOKE, seed=0)
        assert results[0].rows
        variants = {row[1] for row in results[0].rows}
        assert "INS" in variants
        assert "INS-noprune" in variants

    def test_unknown_experiment_raises(self):
        with pytest.raises(BenchmarkError, match="unknown experiment"):
            run_experiment("fig99", SMOKE)


class TestTable2:
    def test_runs_and_reports_both_indexes(self):
        results = run_experiment("table2", SMOKE, seed=0)
        assert len(results) == 1
        table = results[0]
        assert table.experiment_id == "table2"
        assert len(table.rows) == len(SMOKE.indexing_datasets)
        for row in table.rows:
            assert row[3] > 0  # local index time
            assert row[4] > 0  # local index size


class TestFig5:
    def test_two_panels(self):
        results = run_experiment("fig5", SMOKE, seed=0)
        assert [r.experiment_id for r in results] == ["fig5a", "fig5b"]
        for result in results:
            for row in result.rows:
                assert row[2] > 0  # indexing time

    def test_vertex_scaling_is_increasing(self):
        results = run_experiment("fig5", SMOKE, seed=0)
        times = [row[2] for row in results[1].rows]
        assert times == sorted(times)


@pytest.mark.parametrize("figure", ["fig10", "fig14"])
class TestConstraintFigures:
    def test_four_panels(self, figure):
        results = run_experiment(figure, SMOKE, seed=0)
        assert [r.experiment_id for r in results] == [
            f"{figure}a",
            f"{figure}b",
            f"{figure}c",
            f"{figure}d",
        ]
        for result in results:
            assert len(result.rows) == len(SMOKE.datasets)
            assert result.headers == ("Dataset", "#q", "UIS", "UIS*", "INS")


class TestFig15:
    def test_runs_with_magnitude_rows(self):
        results = run_experiment("fig15", SMOKE, seed=0)
        assert len(results) == 4
        assert len(results[0].rows) == len(SMOKE.yago_magnitudes)


class TestRendering:
    def test_render_results_printable(self):
        results = run_experiment("fig5", SMOKE, seed=0)
        text = render_results(results)
        assert "Figure 5(a)" in text
        assert "Figure 5(b)" in text
