"""Tests for the ``python -m repro.bench`` entry point."""

from repro.bench.__main__ import main


class TestBenchCli:
    def test_single_experiment_smoke(self, capsys):
        assert main(["fig5", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "completed in" in out

    def test_seed_flag(self, capsys):
        assert main(["fig5", "--smoke", "--seed", "3"]) == 0
        assert "Figure 5(b)" in capsys.readouterr().out

    def test_multiple_experiments(self, capsys):
        assert main(["fig5", "table2", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 5(a)" in out
