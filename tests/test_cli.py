"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.io import dump_tsv
from repro.datasets.toy import figure3_graph


@pytest.fixture()
def g0_path(tmp_path):
    path = tmp_path / "g0.tsv"
    dump_tsv(figure3_graph(), path)
    return str(path)


class TestGenerate:
    def test_lubm(self, tmp_path, capsys):
        out = str(tmp_path / "d0.tsv")
        assert main(["generate", "--lubm", "D0", "--output", out]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (tmp_path / "d0.tsv").stat().st_size > 0

    def test_yago(self, tmp_path, capsys):
        out = str(tmp_path / "y.tsv")
        assert main(["generate", "--yago", "100", "--output", out]) == 0
        assert "vertices" in capsys.readouterr().out

    def test_random(self, tmp_path):
        out = str(tmp_path / "r.tsv")
        assert main(["generate", "--random", "30", "1.5", "3", "--output", out]) == 0

    def test_generate_requires_kind(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--output", str(tmp_path / "x.tsv")])


class TestStats:
    def test_basic(self, g0_path, capsys):
        assert main(["stats", g0_path]) == 0
        out = capsys.readouterr().out
        assert "|V|=5" in out

    def test_label_histogram(self, g0_path, capsys):
        assert main(["stats", g0_path, "--labels"]) == 0
        assert "friendOf" in capsys.readouterr().out


class TestIndex:
    def test_build_and_save(self, g0_path, tmp_path, capsys):
        out = str(tmp_path / "idx.json")
        assert main(["index", g0_path, "--output", out, "--k", "2"]) == 0
        assert "landmarks" in capsys.readouterr().out
        assert (tmp_path / "idx.json").stat().st_size > 0


class TestQuery:
    CONSTRAINT = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"

    def test_true_query_exit_zero(self, g0_path, capsys):
        code = main(
            [
                "query",
                g0_path,
                "--source", "v0",
                "--target", "v4",
                "--labels", "likes,follows",
                "--constraint", self.CONSTRAINT,
            ]
        )
        assert code == 0
        assert "answer=True" in capsys.readouterr().out

    def test_false_query_exit_one(self, g0_path, capsys):
        code = main(
            [
                "query",
                g0_path,
                "--source", "v0",
                "--target", "v3",
                "--labels", "likes,follows",
                "--constraint", self.CONSTRAINT,
            ]
        )
        assert code == 1
        assert "answer=False" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["uis", "uis*", "ins", "naive"])
    def test_all_algorithms(self, g0_path, algorithm, capsys):
        code = main(
            [
                "query",
                g0_path,
                "--source", "v0",
                "--target", "v4",
                "--labels", "likes,follows",
                "--constraint", self.CONSTRAINT,
                "--algorithm", algorithm,
            ]
        )
        assert code == 0

    def test_witness_printed(self, g0_path, capsys):
        code = main(
            [
                "query",
                g0_path,
                "--source", "v0",
                "--target", "v4",
                "--labels", "likes,follows",
                "--constraint", self.CONSTRAINT,
                "--witness",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "witness" in out
        assert "--likes-->" in out

    def test_ins_with_saved_index(self, g0_path, tmp_path, capsys):
        index_path = str(tmp_path / "idx.json")
        main(["index", g0_path, "--output", index_path, "--k", "2"])
        capsys.readouterr()
        code = main(
            [
                "query",
                g0_path,
                "--source", "v0",
                "--target", "v4",
                "--labels", "likes,follows",
                "--constraint", self.CONSTRAINT,
                "--algorithm", "ins",
                "--index", index_path,
            ]
        )
        assert code == 0

    def test_bad_vertex_reports_error(self, g0_path, capsys):
        code = main(
            [
                "query",
                g0_path,
                "--source", "nope",
                "--target", "v4",
                "--labels", "likes",
                "--constraint", self.CONSTRAINT,
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestServe:
    """Parser-level serve tests; real serving is covered in tests/service."""

    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--graph", "g.tsv", "--index", "g.json", "--port", "0"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.index == "g.json"
        assert args.algorithm is None

    def test_serve_requires_some_graph(self, capsys):
        # --graph is optional now (a --tenant list can stand alone), but
        # serving nothing at all is a config error.
        code = main(["serve"])
        assert code == 2
        assert "--graph and/or --tenant" in capsys.readouterr().err

    def test_serve_missing_graph_reports_error(self, tmp_path, capsys):
        code = main(["serve", "--graph", str(tmp_path / "missing.tsv")])
        assert code == 2
        assert "graph file not found" in capsys.readouterr().err

    def test_parser_accepts_tenants(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--tenant", "a=a.tsv", "--tenant", "b=b.tsv:b.json"]
        )
        assert args.tenant == ["a=a.tsv", "b=b.tsv:b.json"]
        assert args.graph is None

    def test_tenant_spec_parsing(self):
        from repro.cli import _parse_tenant_spec

        assert _parse_tenant_spec("a=g.tsv") == ("a", "g.tsv", None)
        assert _parse_tenant_spec("a=g.tsv:i.json") == ("a", "g.tsv", "i.json")

    @pytest.mark.parametrize("spec", ["noequals", "=g.tsv", "name="])
    def test_tenant_spec_rejected(self, spec):
        from repro.cli import _parse_tenant_spec
        from repro.exceptions import ServiceConfigError

        with pytest.raises(ServiceConfigError, match="NAME=GRAPH"):
            _parse_tenant_spec(spec)

    def test_serve_bad_tenant_spec_reports_error(self, capsys):
        code = main(["serve", "--tenant", "broken"])
        assert code == 2
        assert "NAME=GRAPH" in capsys.readouterr().err


class TestServeWalFlags:
    """Parser + validation for --wal / --follow; real WAL serving is
    covered by tests/wal and the wal-recovery CI job."""

    def test_parser_accepts_wal_flags(self):
        from repro.cli import build_parser
        from repro.wal import DEFAULT_COMPACT_EVERY, DEFAULT_POLL_INTERVAL

        args = build_parser().parse_args(
            ["serve", "--graph", "g.tsv", "--wal", "walDir",
             "--compact-every", "32"]
        )
        assert args.wal == "walDir"
        assert args.compact_every == 32
        assert args.follow is None
        args = build_parser().parse_args(
            ["serve", "--graph", "g.tsv", "--follow", "walDir",
             "--follow-interval", "0.1"]
        )
        assert args.follow == "walDir"
        assert args.follow_interval == 0.1
        defaults = build_parser().parse_args(["serve", "--graph", "g.tsv"])
        assert defaults.wal is None and defaults.follow is None
        assert defaults.compact_every == DEFAULT_COMPACT_EVERY
        assert defaults.follow_interval == DEFAULT_POLL_INTERVAL

    def test_wal_and_follow_are_mutually_exclusive(self, capsys):
        code = main(["serve", "--graph", "g.tsv", "--wal", "d", "--follow", "d"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_wal_requires_graph(self, capsys):
        code = main(["serve", "--tenant", "t=g.tsv", "--wal", "d"])
        assert code == 2
        assert "require --graph" in capsys.readouterr().err

    def test_follow_incompatible_with_shards(self, capsys):
        # --wal --shards compose (the log carries slice epochs); a
        # follower republishes read-only and cannot drive a fleet.
        code = main(["serve", "--graph", "g.tsv", "--shards", "2",
                     "--follow", "d"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_follow_refuses_allow_updates(self, capsys):
        code = main(["serve", "--graph", "g.tsv", "--follow", "d",
                     "--allow-updates"])
        assert code == 2
        assert "read-only" in capsys.readouterr().err

    def test_compact_every_must_be_positive(self, capsys):
        code = main(["serve", "--graph", "g.tsv", "--wal", "d",
                     "--compact-every", "0"])
        assert code == 2
        assert "--compact-every" in capsys.readouterr().err
