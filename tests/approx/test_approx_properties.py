"""50-seed randomized properties of the approx tier.

Three claims, each against an independent oracle:

* **agreement** — an approx-enabled service in exact mode answers every
  query bit-identically to the naive oracle *and* to a twin service
  built with ``approx=False`` (short-circuits are sound, never lossy);
* **witness validity** — every witness path the tier caches verifies
  under :func:`repro.core.witness.verify_witness` on the current graph;
* **honest accounting** — with ``recheck_rate=1.0`` the false-rate
  counters in ``/stats`` equal an exact recount of how many approximate
  answers disagreed with the oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.witness import verify_witness
from repro.service.app import QueryService

from tests.service.test_agreement_service import (
    make_graph,
    naive_answer,
    random_specs,
)

SEEDS = list(range(50))


class TestExactModeAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_to_oracle_and_plain_service(self, seed):
        graph = make_graph(seed)
        routed = QueryService(graph, seed=seed)
        plain = QueryService(graph, seed=seed, approx=False)
        rng = random.Random(seed * 6151 + 11)
        parsed = {}
        try:
            # use_cache=False so repeats exercise the witness tier, not
            # the result cache — every answer is the router's own.
            for source, target, labels, text in random_specs(rng, 3, 9):
                expected = naive_answer(graph, source, target, labels,
                                        text, parsed)
                for _ in range(2):
                    mine, meta = routed.query(
                        source, target, labels, text, use_cache=False
                    )
                    twin, _ = plain.query(
                        source, target, labels, text, use_cache=False
                    )
                    assert mine.answer == expected == twin.answer, (
                        f"seed={seed} {source}->{target} L={labels} "
                        f"S={text!r}: routed={mine.answer} "
                        f"({mine.algorithm}) naive={expected} "
                        f"({meta['reason']})"
                    )
        finally:
            routed.close()
            plain.close()


class TestWitnessValidity:
    @pytest.mark.parametrize("seed", SEEDS[::2])
    def test_every_cached_witness_verifies(self, seed):
        graph = make_graph(seed)
        service = QueryService(graph, seed=seed)
        rng = random.Random(seed * 13007 + 5)
        try:
            evaluated_true = 0
            for source, target, labels, text in random_specs(
                rng, 3, 9, count=12
            ):
                result, meta = service.query(
                    source, target, labels, text, use_cache=False
                )
                # Trivial answers (and short-circuits) never reach the
                # witness extractor; only evaluated True answers do.
                if (result.answer and not meta["trivial"]
                        and meta.get("tier") == "exact"):
                    evaluated_true += 1
            cache = service.approx.witnesses
            assert len(cache) > 0 or evaluated_true == 0, (
                f"seed={seed}: no witness cached despite "
                f"{evaluated_true} evaluated true answers"
            )
            for key, witness in list(cache._entries.items()):
                source, target, labels, text = key
                query = LSCRQuery(
                    source=source,
                    target=target,
                    labels=LabelConstraint(list(labels)),
                    constraint=SubstructureConstraint.from_sparql(text),
                )
                assert verify_witness(service.graph, query, witness), (
                    f"seed={seed}: cached witness for {key} fails "
                    f"verification: {witness}"
                )
        finally:
            service.close()


class TestFalseRateAccounting:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_accounting_matches_exact_recount(self, seed):
        graph = make_graph(seed)
        service = QueryService(graph, seed=seed, approx_recheck=1.0)
        naive = NaiveTwoProcedure(graph)
        rng = random.Random(seed * 21911 + 3)
        parsed = {}
        approximate_answers = 0
        recount_mismatches = 0
        try:
            for source, target, labels, text in random_specs(
                rng, 3, 9, count=10
            ):
                expected = naive_answer(graph, source, target, labels,
                                        text, parsed)
                result, meta = service.query(
                    source, target, labels, text,
                    use_cache=False, mode="approximate",
                )
                if meta.get("tier") == "approximate":
                    approximate_answers += 1
                    if result.answer != expected:
                        recount_mismatches += 1
                else:
                    # Short-circuit / trivial answers stay exact even
                    # in approximate mode.
                    assert result.answer == expected, (
                        f"seed={seed}: non-approximate tier "
                        f"{meta.get('tier')} answered "
                        f"{result.answer} != oracle {expected}"
                    )
            stats = service.approx.stats()
            assert stats["approximate_answers"] == approximate_answers
            assert stats["rechecks"] == approximate_answers
            assert stats["recheck_mismatches"] == recount_mismatches
            if approximate_answers:
                assert stats["false_rate"] == pytest.approx(
                    recount_mismatches / approximate_answers
                )
            _ = naive  # oracle doubles as documentation of independence
        finally:
            service.close()
