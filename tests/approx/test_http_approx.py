"""HTTP surface of the approx tier: ?mode=, /stats, /metrics, /debug/slow."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.prometheus import parse_prometheus_text
from repro.service.app import QueryService
from repro.service.http import create_server
from tests.helpers import graph_from_edges

MARK = "SELECT ?x WHERE { ?x <mark> ?y . }"
TRUE_SPEC = {
    "source": "s", "target": "t", "labels": ["go"], "constraint": MARK,
}
NO_SPEC = {
    "source": "t", "target": "s", "labels": ["go"], "constraint": MARK,
}
GUESS_SPEC = {
    "source": "u", "target": "w", "labels": ["go"], "constraint": MARK,
}


def make_service(**kwargs):
    graph = graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("u", "go", "w"),
        ]
    )
    return QueryService(graph, seed=0, slow_ms=0.0, **kwargs)


@pytest.fixture()
def base_url():
    server = create_server(make_service(approx_recheck=1.0), "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def get_text(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


class TestModeParam:
    def test_exact_mode_is_default(self, base_url):
        status, body = post(f"{base_url}/query", GUESS_SPEC)
        assert status == 200
        assert body["answer"] is False
        assert body["tier"] == "exact"

    def test_approximate_mode(self, base_url):
        status, body = post(f"{base_url}/query?mode=approximate", GUESS_SPEC)
        assert status == 200
        assert body["answer"] is True
        assert body["algorithm"] == "approx"
        assert body["tier"] == "approximate"

    def test_short_circuit_stays_exact_in_approximate_mode(self, base_url):
        status, body = post(f"{base_url}/query?mode=approximate", NO_SPEC)
        assert status == 200
        assert body["answer"] is False
        assert body["tier"] == "short-circuit"

    def test_invalid_mode_400(self, base_url):
        status, body = post(f"{base_url}/query?mode=turbo", TRUE_SPEC)
        assert status == 400
        assert "mode" in body["error"]["message"]

    def test_batch_mode(self, base_url):
        status, body = post(
            f"{base_url}/batch?mode=approximate",
            {"queries": [GUESS_SPEC, NO_SPEC]},
        )
        assert status == 200
        tiers = [item["tier"] for item in body["results"]]
        assert tiers == ["approximate", "short-circuit"]


class TestStatsAndMetrics:
    def test_stats_approx_section(self, base_url):
        post(f"{base_url}/query", NO_SPEC)
        post(f"{base_url}/query?mode=approximate", GUESS_SPEC)
        status, document = get_json(f"{base_url}/stats")
        assert status == 200
        approx = document["approx"]
        assert approx["enabled"] is True
        assert approx["short_circuit_no"] >= 1
        assert approx["approximate_answers"] == 1
        assert approx["rechecks"] == 1  # recheck_rate=1.0 in the fixture
        assert approx["recheck_mismatches"] == 1
        assert approx["false_rate"] == 1.0
        assert approx["bounds"]["mode"] == "closure"
        assert document["config"]["approx"] is True

    def test_metrics_families_strict_parse(self, base_url):
        post(f"{base_url}/query", NO_SPEC)
        post(f"{base_url}/query", TRUE_SPEC)
        post(f"{base_url}/query?mode=approximate", GUESS_SPEC)
        status, text = get_text(f"{base_url}/metrics")
        assert status == 200
        # Strict parse: any malformed line or TYPE header raises.
        samples = parse_prometheus_text(text)
        names = {name for name, _labels in samples}
        for name in (
            "repro_approx_routed_total",
            "repro_approx_short_circuit_no_total",
            "repro_approx_short_circuit_yes_total",
            "repro_approx_exact_fallthrough_total",
            "repro_approx_short_circuit_rate",
            "repro_approx_answers_total",
            "repro_approx_rechecks_total",
            "repro_approx_recheck_mismatches_total",
            "repro_approx_false_rate",
            "repro_approx_witness_entries",
            "repro_approx_bounds_components",
        ):
            assert name in names, f"missing family {name}"
        routed = sum(
            value for (name, _labels), value in samples.items()
            if name == "repro_approx_routed_total"
        )
        assert routed >= 3

    def test_flight_recorder_records_tier(self, base_url):
        post(f"{base_url}/query", NO_SPEC)
        post(f"{base_url}/query", TRUE_SPEC)
        post(f"{base_url}/query?mode=approximate", GUESS_SPEC)
        status, document = get_json(f"{base_url}/debug/slow")
        assert status == 200
        entries = document["tenants"]["default"]["entries"]
        tiers = {entry["tier"] for entry in entries}
        # slow_ms=0 records everything: all three tiers show up.
        assert {"short-circuit", "exact", "approximate"} <= tiers


class TestTenantOptions:
    def test_register_tenant_with_approx_options(self, base_url, tmp_path):
        graph_file = tmp_path / "dyn.tsv"
        graph_file.write_text("a\tgo\tb\n")
        status, _ = post(
            f"{base_url}/tenants",
            {
                "name": "dyn",
                "graph": str(graph_file),
                "approx": True,
                "approx_default": True,
                "approx_recheck": 0.5,
            },
        )
        assert status == 201
        status, body = post(
            f"{base_url}/t/dyn/query",
            {"source": "a", "target": "b", "labels": ["go"],
             "constraint": "SELECT ?x WHERE { ?x <go> ?y . }"},
        )
        assert status == 200
        # approx_default=True: no ?mode= needed for the approximate tier.
        assert body["tier"] in ("approximate", "short-circuit")

    def test_invalid_recheck_option_rejected(self, base_url, tmp_path):
        graph_file = tmp_path / "bad.tsv"
        graph_file.write_text("a\tgo\tb\n")
        status, _ = post(
            f"{base_url}/tenants",
            {
                "name": "bad",
                "graph": str(graph_file),
                "approx_recheck": 2.0,
            },
        )
        assert status == 400
