"""Bounds-index soundness: the upper bound never lies about No.

The whole approx tier rests on one invariant: ``maybe_reachable(s, t)
== False`` implies no directed ``s -> t`` path exists at all — and
therefore no LSCR witness path either.  This suite checks it directly
against a label-blind BFS oracle and indirectly against the naive LSCR
oracle, across 50 random graphs, in both index modes (the exact bitset
closure and the GRAIL-style randomized intervals, the latter forced by
``closure_limit=0``).
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro.approx.bounds import BoundsIndex, build_bounds
from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.graph.csr import freeze_graph
from tests.helpers import graph_from_edges

SEEDS = list(range(50))


def bfs_reachable(graph, s):
    """Label-blind oracle: every vertex reachable from ``s``."""
    seen = {s}
    queue = deque((s,))
    while queue:
        u = queue.popleft()
        for _label, w in graph.out_edges(u):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


class TestToyGraphs:
    def test_chain_and_disconnected(self):
        graph = graph_from_edges(
            [("a", "go", "b"), ("b", "go", "c"), ("x", "go", "y")]
        )
        bounds = build_bounds(freeze_graph(graph))
        assert bounds.mode == "closure"
        a, b, c = graph.vid("a"), graph.vid("b"), graph.vid("c")
        x, y = graph.vid("x"), graph.vid("y")
        assert bounds.maybe_reachable(a, c)
        assert not bounds.maybe_reachable(c, a)
        assert not bounds.maybe_reachable(a, y)
        assert not bounds.maybe_reachable(x, c)
        assert bounds.maybe_reachable(x, y)

    def test_cycle_is_one_component(self):
        graph = graph_from_edges(
            [("a", "go", "b"), ("b", "go", "c"), ("c", "go", "a")]
        )
        bounds = build_bounds(freeze_graph(graph))
        assert bounds.component_count == 1
        a, c = graph.vid("a"), graph.vid("c")
        assert bounds.maybe_reachable(c, a)
        assert bounds.maybe_reachable(a, a)

    def test_interval_mode_forced(self):
        graph = graph_from_edges(
            [("a", "go", "b"), ("b", "go", "c"), ("x", "go", "y")]
        )
        bounds = BoundsIndex(freeze_graph(graph), closure_limit=0)
        assert bounds.mode == "interval"
        a, c = graph.vid("a"), graph.vid("c")
        # Necessary condition: the true pair always passes...
        assert bounds.maybe_reachable(a, c)
        # ...and a definitely-unreachable *reverse* pair is excluded by
        # the interval filter on this tiny DAG.
        assert not bounds.maybe_reachable(c, a)

    def test_describe_shape(self):
        graph = graph_from_edges([("a", "go", "b")])
        described = build_bounds(freeze_graph(graph)).describe()
        assert described["mode"] == "closure"
        assert described["vertices"] == 2
        assert described["components"] == 2
        assert described["build_seconds"] >= 0

    def test_unfrozen_graph_supported(self):
        graph = graph_from_edges([("a", "go", "b"), ("b", "go", "a")])
        bounds = build_bounds(graph)  # dict-backed adjacency fallback
        assert bounds.component_count == 1


class TestFiftySeedSoundness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_upper_bound_covers_bfs_oracle(self, seed):
        graph = random_labeled_graph(
            12, 1.6, 3, rng=seed, name=f"bounds-{seed}"
        )
        frozen = freeze_graph(graph)
        closure = build_bounds(frozen, seed=seed)
        interval = BoundsIndex(frozen, closure_limit=0, seed=seed)
        assert closure.mode == "closure"
        assert interval.mode == "interval"
        for s in range(graph.num_vertices):
            reached = bfs_reachable(graph, s)
            for t in range(graph.num_vertices):
                truly = t in reached
                # Closure mode is exact label-blind reachability.
                assert closure.maybe_reachable(s, t) == truly
                if truly:
                    # Interval mode is a necessary-condition filter: it
                    # may say maybe on an unreachable pair, never No on
                    # a reachable one.
                    assert interval.maybe_reachable(s, t)

    @pytest.mark.parametrize("seed", SEEDS[::5])
    def test_never_no_when_naive_oracle_says_yes(self, seed):
        graph = random_labeled_graph(
            10, 1.8, 3, rng=seed, name=f"lscr-bounds-{seed}"
        )
        frozen = freeze_graph(graph)
        closure = build_bounds(frozen, seed=seed)
        interval = BoundsIndex(frozen, closure_limit=0, seed=seed)
        naive = NaiveTwoProcedure(graph)
        rng = random.Random(seed * 31 + 7)
        vertices = [f"n{i}" for i in range(graph.num_vertices)]
        for _ in range(12):
            source, target = rng.choice(vertices), rng.choice(vertices)
            label = f"l{rng.randrange(3)}"
            query = LSCRQuery(
                source=source,
                target=target,
                labels=LabelConstraint([label, "l0"]),
                constraint=SubstructureConstraint.from_sparql(
                    f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}"
                ),
            )
            if naive.decide(query):
                s, t = graph.vid(source), graph.vid(target)
                assert closure.maybe_reachable(s, t)
                assert interval.maybe_reachable(s, t)
