"""Router behavior at the execute seam: tiers, caching, epochs, modes."""

from __future__ import annotations

import pytest

from repro.exceptions import BadRequestError, ServiceConfigError
from repro.service.app import QueryService
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges

MARK = "SELECT ?x WHERE { ?x <mark> ?y . }"


def make_graph():
    # s -> m -> t under "go" with m satisfying; u/w isolated except for
    # one edge between them, so (s, u) is label-blind unreachable and
    # (u, w) is reachable but constraint-false.
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("u", "go", "w"),
        ]
    )


@pytest.fixture()
def service():
    svc = QueryService(make_graph(), seed=0)
    yield svc
    svc.close()


class TestShortCircuits:
    def test_definite_no_from_bounds(self, service):
        result, meta = service.query("t", "s", ["go"], MARK)
        assert result.answer is False
        assert result.algorithm == "bounds"
        assert meta["tier"] == "short-circuit"
        stats = service.approx.stats()
        assert stats["short_circuit_no"] == 1

    def test_definite_no_from_label_mask(self, service):
        # s has out-edges, but none labeled "mark": the O(1) degree
        # test refuses before the bounds index is even consulted.
        result, _ = service.query("s", "t", ["mark"], MARK)
        assert result.answer is False
        assert result.algorithm == "bounds"
        assert service.approx.stats()["short_circuit_no_mask"] == 1

    def test_witness_answers_repeat_true_queries(self, service):
        first, _ = service.query("s", "t", ["go"], MARK, use_cache=False)
        assert first.answer is True
        assert first.algorithm in ("UIS*", "UIS", "INS", "naive")
        second, meta = service.query("s", "t", ["go"], MARK, use_cache=False)
        assert second.answer is True
        assert second.algorithm == "witness"
        assert meta["tier"] == "short-circuit"
        assert service.approx.stats()["short_circuit_yes"] == 1

    def test_self_loop_query_never_short_circuits_no(self, service):
        # reach(s, s) is trivially true label-blind, but the LSCR
        # answer needs a cycle through a satisfying vertex — there is
        # none here, and the router must fall through, not guess.
        result, meta = service.query("s", "s", ["go"], MARK)
        assert result.answer is False
        assert result.algorithm != "bounds"

    def test_cycle_self_query_witness(self):
        graph = graph_from_edges(
            [("a", "go", "b"), ("b", "go", "a"), ("b", "mark", "b")]
        )
        svc = QueryService(graph, seed=0)
        try:
            first, _ = svc.query("a", "a", ["go"], MARK, use_cache=False)
            assert first.answer is True
            second, _ = svc.query("a", "a", ["go"], MARK, use_cache=False)
            assert second.algorithm == "witness"
        finally:
            svc.close()

    def test_forced_algorithm_bypasses_router(self, service):
        result, meta = service.query("t", "s", ["go"], MARK, algorithm="uis*")
        assert result.answer is False
        assert result.algorithm == "UIS*"
        assert "tier" not in meta

    def test_sound_short_circuits_are_cached(self, service):
        service.query("t", "s", ["go"], MARK)
        _, meta = service.query("t", "s", ["go"], MARK)
        assert meta["cached"] is True


class TestEpochs:
    def test_bounds_rebuild_on_update(self, service):
        before, _ = service.query("s", "u", ["go"], MARK, use_cache=False)
        assert before.answer is False
        assert before.algorithm == "bounds"
        service.apply_updates([("t", "go", "u")])
        assert service.epoch.bounds is not None
        after, meta = service.query("s", "u", ["go"], MARK, use_cache=False)
        # The rebuilt bounds no longer exclude the pair; the exact path
        # answers True through the new edge.
        assert after.answer is True
        assert meta["epoch"] == 1

    def test_witness_invalidated_by_edge_removal(self, service):
        service.query("s", "t", ["go"], MARK, use_cache=False)
        hit, _ = service.query("s", "t", ["go"], MARK, use_cache=False)
        assert hit.algorithm == "witness"
        service.apply_updates([("s", "go", "m", "remove")])
        after, _ = service.query("s", "t", ["go"], MARK, use_cache=False)
        assert after.answer is False
        assert service.approx.witnesses.stats()["invalidations"] == 1

    def test_witness_survives_unrelated_update(self, service):
        service.query("s", "t", ["go"], MARK, use_cache=False)
        service.apply_updates([("u", "go", "s")])
        hit, meta = service.query("s", "t", ["go"], MARK, use_cache=False)
        # New epoch (result cache namespace rotated), same witness: the
        # path re-verified against the updated graph and kept serving.
        assert hit.algorithm == "witness"
        assert meta["epoch"] == 1


class TestModes:
    def test_invalid_mode_is_bad_request(self, service):
        with pytest.raises(BadRequestError):
            service.query("s", "t", ["go"], MARK, mode="fast")

    def test_approximate_requires_tier(self):
        svc = QueryService(make_graph(), seed=0, approx=False)
        try:
            assert svc.approx is None
            with pytest.raises(BadRequestError):
                svc.query("s", "t", ["go"], MARK, mode="approximate")
            # Exact mode still works without the tier.
            result, meta = svc.query("s", "t", ["go"], MARK, mode="exact")
            assert result.answer is True
            assert "tier" not in meta
        finally:
            svc.close()

    def test_approx_default_requires_approx(self):
        with pytest.raises(ServiceConfigError):
            QueryService(make_graph(), approx=False, approx_default=True)

    def test_bad_recheck_rate_rejected(self):
        with pytest.raises(ServiceConfigError):
            QueryService(make_graph(), approx_recheck=1.5)

    def test_approximate_uncertain_band_guesses_true(self):
        svc = QueryService(make_graph(), seed=0, approx_recheck=0.0)
        try:
            # (u, w) is label-blind reachable but constraint-false: the
            # uncertain band answers True in approximate mode...
            result, meta = svc.query("u", "w", ["go"], MARK, mode="approximate")
            assert result.answer is True
            assert result.algorithm == "approx"
            assert meta["tier"] == "approximate"
            # ...and the guess must never be cached: exact mode next
            # gets the true answer, freshly evaluated.
            exact, exact_meta = svc.query("u", "w", ["go"], MARK)
            assert exact.answer is False
            assert exact_meta["cached"] is False
        finally:
            svc.close()

    def test_approximate_mode_keeps_sound_short_circuits(self, service):
        result, meta = service.query("t", "s", ["go"], MARK, mode="approximate")
        # Definite-No is exact even in approximate mode.
        assert result.answer is False
        assert meta["tier"] == "short-circuit"

    def test_approx_default_service(self):
        svc = QueryService(make_graph(), seed=0, approx_default=True)
        try:
            result, meta = svc.query("u", "w", ["go"], MARK)
            assert result.algorithm == "approx"
            assert meta["tier"] == "approximate"
            # Per-request override back to exact.
            exact, _ = svc.query("u", "w", ["go"], MARK, mode="exact")
            assert exact.answer is False
        finally:
            svc.close()

    def test_recheck_accounting(self):
        svc = QueryService(make_graph(), seed=0, approx_recheck=1.0)
        try:
            svc.query("u", "w", ["go"], MARK, mode="approximate")  # wrong
            svc.query("s", "t", ["go"], MARK, mode="approximate")  # right
            stats = svc.approx.stats()
            assert stats["approximate_answers"] == 2
            assert stats["rechecks"] == 2
            assert stats["recheck_mismatches"] == 1
            assert stats["false_rate"] == 0.5
        finally:
            svc.close()


class TestSharded:
    def test_short_circuit_before_scatter(self):
        graph = make_graph()
        svc = ShardedQueryService(graph, seed=0, shards=2)
        try:
            result, meta = svc.query("t", "s", ["go"], MARK)
            assert result.answer is False
            assert result.algorithm == "bounds"
            assert meta["tier"] == "short-circuit"
            # The coordinator never saw the query: no scatter happened.
            assert svc.coordinator.stats()["queries"] == 0
            # Uncertain-band queries still scatter.
            exact, exact_meta = svc.query("s", "t", ["go"], MARK)
            assert exact.answer is True
            assert exact.algorithm == "sharded"
            assert exact_meta["tier"] == "exact"
            assert svc.coordinator.stats()["queries"] == 1
        finally:
            svc.close()

    def test_stats_section_present(self):
        svc = ShardedQueryService(make_graph(), seed=0, shards=2)
        try:
            document = svc.stats_snapshot()
            assert document["approx"]["enabled"] is True
            assert document["approx"]["bounds"]["mode"] == "closure"
            assert document["config"]["approx"] is True
        finally:
            svc.close()
