"""Live updates: apply_updates semantics, POST /edges, and the gates.

Covers the epoch-swap mechanics the randomized agreement suite
(``test_update_agreement.py``) then hammers statistically:

* :meth:`QueryService.apply_updates` — epoch bump, duplicate counting,
  vertex/label interning, index refresh vs full-rebuild fallback, the
  old epoch staying intact for in-flight readers;
* result-cache namespacing — a pre-update cached answer must never be
  served for the post-update graph (the headline staleness bug);
* ``POST /edges`` over real HTTP — default tenant and ``/t/<tenant>``
  routes, structured validation errors, the ``--allow-updates`` gate
  (403 when off) and the sharded path: a sharded tenant now re-cuts and
  pushes worker slices per batch, so ``POST /edges`` succeeds end to
  end and the summary carries the bumped slice epoch.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exceptions import (
    BadRequestError,
    ServiceConfigError,
)
from repro.graph import FrozenGraph
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.service.registry import TenantRegistry
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges

CONSTRAINT = "SELECT ?x WHERE { ?x <mark> ?y . }"


def make_graph(name="live"):
    return graph_from_edges(
        [("s", "go", "m"), ("m", "mark", "m"), ("x", "go", "y")], name=name
    )


def make_service(indexed=False, **kwargs):
    graph = make_graph()
    index = build_local_index(graph, k=2, rng=0) if indexed else None
    return QueryService(graph, index, seed=0, **kwargs)


class TestApplyUpdates:
    @pytest.mark.parametrize("indexed", [False, True])
    def test_new_edge_flips_the_answer(self, indexed):
        service = make_service(indexed)
        try:
            result, meta = service.query("s", "t2", ["go"], CONSTRAINT)
            assert meta["epoch"] == 0
            assert result.answer is False  # t2 not in the graph yet
            summary = service.apply_updates([("m", "go", "t2")])
            assert summary["epoch"] == 1
            assert summary["edges_added"] == 1
            assert summary["vertices_added"] == 1
            result, meta = service.query("s", "t2", ["go"], CONSTRAINT)
            assert result.answer is True
            assert meta["epoch"] == 1
        finally:
            service.close()

    def test_cached_pre_update_answer_is_not_served_after_swap(self):
        # The headline staleness regression: an *executed* False answer
        # cached at epoch 0 must not satisfy the same query once an
        # update makes the true answer True.  Before the epoch-namespaced
        # cache keys this returned the stale cached False.
        service = make_service()
        try:
            first, meta = service.query("s", "y", ["go"], CONSTRAINT)
            assert first.answer is False and not meta["trivial"]
            again, meta = service.query("s", "y", ["go"], CONSTRAINT)
            assert meta["cached"]  # epoch-0 entry is live
            service.apply_updates([("m", "go", "y")])
            fresh, meta = service.query("s", "y", ["go"], CONSTRAINT)
            assert fresh.answer is True
            assert not meta["cached"]
            assert meta["epoch"] == 1
        finally:
            service.close()

    def test_executed_cache_entry_does_not_cross_epochs(self):
        service = make_service()
        try:
            executed, meta = service.query("s", "m", ["go"], CONSTRAINT)
            assert executed.answer is True and not meta["trivial"]
            cached, meta = service.query("s", "m", ["go"], CONSTRAINT)
            assert meta["cached"]
            service.apply_updates([("y", "go", "s")])
            after, meta = service.query("s", "m", ["go"], CONSTRAINT)
            assert after.answer is True
            assert not meta["cached"]  # epoch-1 cache starts cold
            assert meta["epoch"] == 1
        finally:
            service.close()

    def test_all_duplicate_batch_is_a_no_op(self):
        # No epoch bump, no graph copy: a batch of already-present
        # triples must leave the published epoch (and therefore the
        # warm-cache identity and every cache entry) untouched.
        service = make_service()
        try:
            before = service.epoch
            executed, _ = service.query("s", "m", ["go"], CONSTRAINT)
            summary = service.apply_updates(
                [("s", "go", "m"), ("m", "mark", "m")]
            )
            assert summary["epoch"] == 0
            assert summary["edges_added"] == 0
            assert summary["edges_duplicate"] == 2
            assert service.epoch is before
            again, meta = service.query("s", "m", ["go"], CONSTRAINT)
            assert meta["cached"]  # the epoch-0 entry survived
        finally:
            service.close()

    def test_duplicates_and_new_labels_counted(self):
        service = make_service()
        try:
            summary = service.apply_updates(
                [("s", "go", "m"), ("s", "new-label", "m")]
            )
            assert summary["edges_duplicate"] == 1
            assert summary["edges_added"] == 1
            assert "new-label" in service.graph.labels
        finally:
            service.close()

    def test_old_epoch_object_keeps_serving(self):
        service = make_service()
        try:
            old_epoch = service.epoch
            old_graph = old_epoch.graph
            edges_before = old_graph.num_edges
            service.apply_updates([("a1", "go", "a2")])
            assert service.epoch is not old_epoch
            assert old_graph.num_edges == edges_before
            assert not old_graph.has_vertex("a1")
            assert isinstance(service.graph, FrozenGraph)
            assert service.graph.has_vertex("a1")
        finally:
            service.close()

    def test_index_refresh_and_rebuild_fallback(self):
        service = make_service(indexed=True)
        try:
            summary = service.apply_updates([("s", "go", "s2")])
            assert summary["index"] in ("refreshed", "unchanged")
            assert service.index is not None
            # Forcing the threshold to zero makes any touched region
            # trigger the full-rebuild fallback.
            summary = service.apply_updates(
                [("s", "go", "s3")], rebuild_region_fraction=0.0
            )
            assert summary["index"] == "rebuilt"
        finally:
            service.close()

    def test_empty_batch_rejected(self):
        service = make_service()
        try:
            with pytest.raises(BadRequestError):
                service.apply_updates([])
        finally:
            service.close()

    def test_handle_updates_validation(self):
        service = make_service()
        try:
            for payload in (
                "nope",
                {},
                {"edges": []},
                {"edges": "x"},
                {"edges": [{"source": "a", "label": "l"}]},
                {"edges": [["a", "l"]]},
                {"edges": [["a", 3, "b"]]},
                {"edges": [{"source": "", "label": "l", "target": "b"}]},
            ):
                with pytest.raises(BadRequestError):
                    service.handle_updates(payload)
            # Valid object and array forms both apply.
            summary = service.handle_updates(
                {"edges": [{"source": "p", "label": "go", "target": "q"},
                           ["q", "go", "r"]]}
            )
            assert summary["edges_added"] == 2
        finally:
            service.close()

    def test_stats_and_health_carry_the_epoch(self):
        service = make_service()
        try:
            service.apply_updates([("s", "go", "w")])
            health = service.health()
            assert health["epoch"] == 1
            stats = service.stats_snapshot()
            assert stats["epoch"]["epoch_id"] == 1
            assert isinstance(stats["epoch"]["fingerprint"], str)
            updates = stats["service"]["updates"]
            assert updates["batches"] == 1
            assert updates["edges_added"] == 1
            assert "updates" in stats["service"]["latency"]
        finally:
            service.close()


class TestEdgeRetraction:
    """``op: "remove"`` end to end — the bug was a silently dropped op:
    removals validated fine and then never reached the graph."""

    @pytest.mark.parametrize("indexed", [False, True])
    def test_removal_flips_the_answer_back(self, indexed):
        service = make_service(indexed)
        try:
            result, _ = service.query("s", "m", ["go"], CONSTRAINT)
            assert result.answer is True
            summary = service.apply_updates([("s", "go", "m", "remove")])
            assert summary["epoch"] == 1
            assert summary["edges_removed"] == 1
            assert summary["edges_added"] == 0
            result, meta = service.query("s", "m", ["go"], CONSTRAINT)
            assert result.answer is False
            assert meta["epoch"] == 1
            # Vertices stay (ids must remain dense); only the edge went.
            assert service.graph.has_vertex("s")
            assert not service.graph.has_edge_named("s", "go", "m")
        finally:
            service.close()

    def test_removing_an_absent_edge_is_counted_not_fatal(self):
        service = make_service()
        try:
            summary = service.apply_updates(
                [("s", "go", "nowhere", "remove"), ("a1", "go", "a2")]
            )
            assert summary["edges_missing"] == 1
            assert summary["edges_removed"] == 0
            assert summary["edges_added"] == 1
            assert summary["epoch"] == 1
        finally:
            service.close()

    def test_all_noop_mixed_batch_keeps_the_epoch(self):
        # Duplicate adds and absent removes together: nothing changes,
        # so nothing may be published (and a WAL would not be appended).
        service = make_service()
        try:
            before = service.epoch
            summary = service.apply_updates(
                [("s", "go", "m"), ("ghost", "go", "m", "remove")]
            )
            assert summary["epoch"] == 0
            assert summary["edges_duplicate"] == 1
            assert summary["edges_missing"] == 1
            assert service.epoch is before
        finally:
            service.close()

    def test_add_then_remove_same_edge_in_one_batch(self):
        # Ops apply in order: the batch is *not* a no-op — it bumps the
        # epoch and leaves the edge absent again.
        service = make_service()
        try:
            summary = service.apply_updates(
                [("p", "go", "q"), ("p", "go", "q", "remove")]
            )
            assert summary["epoch"] == 1
            assert summary["edges_added"] == 1
            assert summary["edges_removed"] == 1
            assert not service.graph.has_edge_named("p", "go", "q")
        finally:
            service.close()

    def test_removal_repairs_the_index(self):
        service = make_service(indexed=True)
        try:
            service.apply_updates([("m", "go", "far")])
            result, _ = service.query("s", "far", ["go"], CONSTRAINT)
            assert result.answer is True
            summary = service.apply_updates([("m", "go", "far", "remove")])
            assert summary["index"] in ("refreshed", "rebuilt")
            result, _ = service.query("s", "far", ["go"], CONSTRAINT)
            assert result.answer is False
        finally:
            service.close()

    def test_stats_count_removals(self):
        service = make_service()
        try:
            service.apply_updates(
                [("s", "go", "m", "remove"), ("zz", "go", "s", "remove")]
            )
            updates = service.stats_snapshot()["service"]["updates"]
            assert updates["edges_removed"] == 1
            assert updates["edges_missing"] == 1
        finally:
            service.close()

    def test_op_validation(self):
        service = make_service()
        try:
            for payload in (
                {"edges": [["a", "l", "b", "drop"]]},       # unknown op
                {"edges": [["a", "l", "b", ""]]},
                {"edges": [["a", "l", "b", "add", "x"]]},   # 5 columns
                {"edges": [{"source": "a", "label": "l", "target": "b",
                            "op": "upsert"}]},
                {"edges": [{"source": "a", "label": "l", "target": "b",
                            "op": 3}]},
            ):
                with pytest.raises(BadRequestError) as excinfo:
                    service.handle_updates(payload)
                assert "edges[0]" in str(excinfo.value)
            # Every valid spelling of the same retraction.
            service.apply_updates([("a", "go", "b"), ("c", "go", "d")])
            summary = service.handle_updates(
                {"edges": [
                    ["a", "go", "b", "remove"],
                    {"source": "c", "label": "go", "target": "d",
                     "op": "remove"},
                ]}
            )
            assert summary["edges_removed"] == 2
        finally:
            service.close()


class TestReadOnlyFollowerGate:
    def test_read_only_service_refuses_http_writes(self):
        from repro.exceptions import ReadOnlyServiceError

        service = make_service()
        service.read_only = True
        try:
            with pytest.raises(ReadOnlyServiceError) as excinfo:
                service.handle_updates({"edges": [["a", "go", "b"]]})
            assert excinfo.value.status == 403
            assert excinfo.value.detail == {"role": "follower"}
            # apply_updates itself stays open — the WAL tailer uses it.
            summary = service.apply_updates([("a", "go", "b")])
            assert summary["epoch"] == 1
        finally:
            service.close()


class TestShardedUpdates:
    def test_apply_updates_recuts_slices_and_bumps_slice_epoch(self):
        graph = graph_from_edges(
            [(f"n{i}", "l", f"n{i + 1}") for i in range(12)], name="sharded"
        )
        service = ShardedQueryService(graph, seed=0, shards=2)
        try:
            assert service.slice_epoch == 0
            summary = service.apply_updates([("n0", "l", "n7")])
            assert summary["epoch"] == 1
            assert summary["slice_epoch"] == 1
            assert summary["shards_updated"] == [
                service.shard_plan.shard_of[service.graph.vid("n0")]
            ]
            assert service.slice_epoch == 1
            # Every in-process worker now serves the new slice epoch.
            for worker in service.workers:
                assert worker.describe()["epoch"] == 1
            result, meta = service.query(
                "n0", "n7", ["l"], "SELECT ?x WHERE { ?x <l> ?y . }"
            )
            assert result.answer is True
            assert meta["epoch"] == 1
        finally:
            service.close()

    def test_no_op_batch_does_not_bump_slice_epoch(self):
        graph = graph_from_edges(
            [(f"n{i}", "l", f"n{i + 1}") for i in range(12)], name="sharded"
        )
        service = ShardedQueryService(graph, seed=0, shards=2)
        try:
            summary = service.apply_updates([("n0", "l", "n1")])  # duplicate
            assert summary["epoch"] == 0
            assert "slice_epoch" not in summary
            assert service.slice_epoch == 0
        finally:
            service.close()


def http_post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def update_server():
    registry = TenantRegistry(default_tenant="default")
    registry.add("default", make_service())
    registry.add("beta", make_service())
    server = create_server(registry, "127.0.0.1", 0, allow_updates=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}", registry
    finally:
        server.shutdown()
        server.server_close()


class TestHttpEdges:
    def test_post_edges_then_query_sees_the_new_graph(self, update_server):
        base_url, _ = update_server
        query = {"source": "s", "target": "fresh", "labels": ["go"],
                 "constraint": CONSTRAINT}
        status, before = http_post(f"{base_url}/query", query)
        assert status == 200 and before["answer"] is False
        status, summary = http_post(
            f"{base_url}/edges", {"edges": [["m", "go", "fresh"]]}
        )
        assert status == 200
        assert summary["epoch"] == 1 and summary["edges_added"] == 1
        status, after = http_post(f"{base_url}/query", query)
        assert status == 200 and after["answer"] is True
        assert after["epoch"] == 1

    def test_per_tenant_route_updates_only_that_tenant(self, update_server):
        base_url, registry = update_server
        status, summary = http_post(
            f"{base_url}/t/beta/edges", {"edges": [["m", "go", "beta-only"]]}
        )
        assert status == 200 and summary["epoch"] == 1
        assert registry.get("beta").graph.has_vertex("beta-only")
        assert not registry.get("default").graph.has_vertex("beta-only")
        assert registry.get("default").epoch.epoch_id == 0

    def test_validation_errors_are_structured_400s(self, update_server):
        base_url, _ = update_server
        status, body = http_post(f"{base_url}/edges", {"edges": [["a"]]})
        assert status == 400
        assert body["error"]["type"] == "bad-request"
        assert "edges[0]" in body["error"]["message"]

    def test_unknown_tenant_404(self, update_server):
        base_url, _ = update_server
        status, body = http_post(
            f"{base_url}/t/ghost/edges", {"edges": [["a", "l", "b"]]}
        )
        assert status == 404
        assert body["error"]["type"] == "unknown-tenant"

    def test_disabled_by_default_gives_403(self):
        server = create_server(make_service(), "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base_url = f"http://127.0.0.1:{server.server_address[1]}"
            status, body = http_post(
                f"{base_url}/edges", {"edges": [["a", "go", "b"]]}
            )
            assert status == 403
            assert body["error"]["type"] == "updates-disabled"
            assert "--allow-updates" in body["error"]["message"]
        finally:
            server.shutdown()
            server.server_close()

    def test_sharded_tenant_accepts_post_edges(self):
        graph = graph_from_edges(
            [(f"n{i}", "l", f"n{i + 1}") for i in range(12)], name="sharded"
        )
        service = ShardedQueryService(graph, seed=0, shards=2)
        server = create_server(service, "127.0.0.1", 0, allow_updates=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base_url = f"http://127.0.0.1:{server.server_address[1]}"
            status, summary = http_post(
                f"{base_url}/edges", {"edges": [["n0", "l", "n7"]]}
            )
            assert status == 200
            assert summary["epoch"] == 1
            assert summary["slice_epoch"] == 1
            query = {"source": "n0", "target": "n7", "labels": ["l"],
                     "constraint": "SELECT ?x WHERE { ?x <l> ?y . }"}
            status, body = http_post(f"{base_url}/query", query)
            assert status == 200 and body["answer"] is True
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_admin_rebalance_routes(self):
        graph = graph_from_edges(
            [(f"n{i}", "l", f"n{(i * 5 + 1) % 40}") for i in range(40)],
            name="sharded",
        )
        service = ShardedQueryService(graph, seed=0, shards=2)
        server = create_server(service, "127.0.0.1", 0, allow_updates=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base_url = f"http://127.0.0.1:{server.server_address[1]}"
            status, body = http_post(f"{base_url}/admin/rebalance", {})
            assert status == 200
            assert "rebalanced" in body
            if body["rebalanced"]:
                assert body["slice_epoch"] == service.slice_epoch
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_admin_rebalance_on_plain_tenant_is_501(self):
        service = make_service()
        server = create_server(service, "127.0.0.1", 0, allow_updates=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base_url = f"http://127.0.0.1:{server.server_address[1]}"
            status, body = http_post(f"{base_url}/admin/rebalance", {})
            assert status == 501
            assert body["error"]["type"] == "updates-unsupported"
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_admin_rebalance_gated_by_allow_updates(self):
        service = make_service()
        server = create_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base_url = f"http://127.0.0.1:{server.server_address[1]}"
            status, body = http_post(f"{base_url}/admin/rebalance", {})
            assert status == 403
            assert body["error"]["type"] == "updates-disabled"
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestSnapshotEpochIdentity:
    def test_post_update_snapshot_refused_by_fresh_service(self, tmp_path):
        path = tmp_path / "snap.json"
        first = make_service()
        try:
            first.apply_updates([("s", "go", "later")])
            first.query("s", "later", ["go"], CONSTRAINT)
            first.save_snapshot(path)
        finally:
            first.close()
        fresh = make_service()  # same TSV-equivalent graph, epoch 0
        try:
            with pytest.raises(ServiceConfigError):
                fresh.load_snapshot(path)
        finally:
            fresh.close()

    def test_serve_parser_accepts_allow_updates(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--graph", "g.tsv", "--allow-updates"]
        )
        assert args.allow_updates is True
        args = build_parser().parse_args(["serve", "--graph", "g.tsv"])
        assert args.allow_updates is False
