"""TenantRegistry unit + concurrency tests, and cache contention tests.

Three layers of evidence that multi-tenancy is safe to run hot:

* registry semantics — add/remove/lookup, the default-tenant alias,
  name validation, 404/409 error statuses, lazy file registration;
* lazy warm start under contention — many threads requesting an
  unloaded tenant at once build its service exactly once;
* sustained mixed traffic — worker threads hammering two tenants while
  a churn thread registers and removes a third, with every answer
  checked against a serially computed expectation; plus deterministic
  injected-clock proofs that :class:`ResultCache` TTL expiry and LRU
  eviction counters stay exact, and an invariant check that they stay
  *consistent* when many threads race on one cache.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datasets.toy import figure3_graph
from repro.exceptions import (
    BadRequestError,
    ServiceConfigError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.graph.io import dump_tsv
from repro.service.app import QueryService
from repro.service.cache import ConstraintCache, ResultCache
from repro.service.registry import TenantRegistry, valid_tenant_name
from tests.helpers import graph_from_edges

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
LABELS = ["likes", "follows"]


class FakeClock:
    """A thread-safe, manually stepped monotonic clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


def toy_service(**kwargs):
    return QueryService(figure3_graph(), seed=0, **kwargs)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------


class TestRegistryBasics:
    def test_add_get_remove(self):
        registry = TenantRegistry()
        service = toy_service()
        registry.add("default", service)
        assert registry.get("default") is service
        assert registry.get() is service           # default-tenant alias
        assert "default" in registry and len(registry) == 1
        registry.remove("default")
        assert len(registry) == 0
        with pytest.raises(UnknownTenantError):
            registry.get("default")

    def test_removed_service_keeps_answering_for_stragglers(self):
        # A request that resolved the service just before removal must
        # still complete — remove() closes the batch pool but the
        # service object stays fully functional.
        registry = TenantRegistry.for_service(toy_service())
        service = registry.get()
        registry.remove("default")
        assert service.query("v0", "v4", LABELS, S0)[0].answer is True
        batch = service.query_batch(
            [{"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}]
        )
        assert batch[0][0].answer is True

    def test_unknown_tenant_is_404(self):
        registry = TenantRegistry()
        with pytest.raises(UnknownTenantError) as info:
            registry.get("nope")
        assert info.value.status == 404
        assert info.value.tenant == "nope"
        with pytest.raises(UnknownTenantError):
            registry.remove("nope")

    def test_duplicate_registration_is_409(self):
        registry = TenantRegistry()
        registry.add("a", toy_service())
        with pytest.raises(TenantExistsError) as info:
            registry.add("a", toy_service())
        assert info.value.status == 409

    @pytest.mark.parametrize(
        "name", ["", "has space", "a/b", ".hidden", "..", "é", "x" * 129, 7]
    )
    def test_invalid_names_rejected(self, name):
        assert not valid_tenant_name(name)
        registry = TenantRegistry()
        with pytest.raises(BadRequestError):
            registry.add(name, toy_service())

    @pytest.mark.parametrize("name", ["a", "prod-eu_1", "v2.graph", "X" * 128])
    def test_valid_names_accepted(self, name):
        assert valid_tenant_name(name)

    def test_for_service_wraps_default(self):
        service = toy_service()
        registry = TenantRegistry.for_service(service)
        assert registry.get() is service
        assert registry.names() == ["default"]

    def test_custom_default_tenant(self):
        registry = TenantRegistry(default_tenant="primary")
        service = toy_service()
        registry.add("primary", service)
        assert registry.get() is service

    def test_describe_and_health_shapes(self):
        registry = TenantRegistry.for_service(toy_service())
        description = registry.describe()
        assert description["count"] == 1
        assert description["tenants"]["default"]["loaded"] is True
        assert description["tenants"]["default"]["vertices"] == 5
        health = registry.health()
        assert health["status"] == "ok"
        assert health["tenant_count"] == 1
        assert health["totals"]["vertices"] == 5
        # PR 1 single-graph keys survive for the loaded default tenant.
        assert health["graph"] == figure3_graph().name

    def test_stats_snapshot_aggregates(self):
        registry = TenantRegistry(default_tenant="a")
        registry.add("a", toy_service())
        registry.add("b", toy_service())
        registry.get("a").query("v0", "v4", LABELS, S0)
        registry.get("b").query("v0", "v4", LABELS, S0)
        registry.get("b").query("v0", "v3", LABELS, S0)
        document = registry.stats_snapshot()
        assert document["service"]["queries"]["total"] == 1      # default=a
        assert document["totals"]["queries"]["total"] == 3       # a + b
        assert document["tenants"]["b"]["queries"]["total"] == 2
        assert document["registry"]["tenant_count"] == 2

    def test_registry_level_errors_counted(self):
        registry = TenantRegistry.for_service(toy_service())
        registry.record_error("unknown-tenant")
        registry.record_error("unknown-tenant")
        document = registry.stats_snapshot()
        assert document["registry"]["errors"] == {"unknown-tenant": 2}


# ----------------------------------------------------------------------
# lazy warm start
# ----------------------------------------------------------------------


class TestLazyRegistration:
    @pytest.fixture()
    def graph_path(self, tmp_path):
        path = tmp_path / "g0.tsv"
        dump_tsv(figure3_graph(), path)
        return path

    def test_register_files_loads_on_first_get(self, graph_path):
        registry = TenantRegistry()
        registry.register_files("lazy", graph_path, seed=0)
        assert registry.describe()["tenants"]["lazy"]["loaded"] is False
        service = registry.get("lazy")
        assert service.query("v0", "v4", LABELS, S0)[0].answer is True
        assert registry.get("lazy") is service      # loaded exactly once
        assert registry.describe()["tenants"]["lazy"]["loaded"] is True

    def test_missing_graph_rejected_at_registration(self, tmp_path):
        registry = TenantRegistry()
        with pytest.raises(ServiceConfigError, match="graph file not found"):
            registry.register_files("lazy", tmp_path / "missing.tsv")
        assert len(registry) == 0

    def test_tenant_health_never_forces_load(self, graph_path):
        registry = TenantRegistry()
        registry.register_files("lazy", graph_path)
        health = registry.tenant_health("lazy")
        assert health["loaded"] is False
        stats = registry.tenant_stats("lazy")
        assert stats["loaded"] is False
        assert registry.describe()["tenants"]["lazy"]["loaded"] is False

    def test_concurrent_first_requests_build_once(self, graph_path, monkeypatch):
        builds = []
        real = QueryService.from_files.__func__

        def counted(cls, *args, **kwargs):
            builds.append(threading.current_thread().name)
            time.sleep(0.05)                 # widen the race window
            return real(cls, *args, **kwargs)

        monkeypatch.setattr(QueryService, "from_files", classmethod(counted))
        registry = TenantRegistry()
        registry.register_files("lazy", graph_path, seed=0)

        barrier = threading.Barrier(8)
        services = []
        errors = []

        def hit():
            barrier.wait()
            try:
                services.append(registry.get("lazy"))
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(builds) == 1
        assert len(services) == 8
        assert all(service is services[0] for service in services)

    def test_lazy_build_does_not_block_other_tenants(self, graph_path, monkeypatch):
        # While one thread is stuck warm-starting "slow", a query to the
        # already-loaded "fast" tenant must complete — the build happens
        # off the registry lock.
        release = threading.Event()
        real = QueryService.from_files.__func__

        def stalled(cls, *args, **kwargs):
            assert release.wait(timeout=10)
            return real(cls, *args, **kwargs)

        monkeypatch.setattr(QueryService, "from_files", classmethod(stalled))
        registry = TenantRegistry()
        registry.add("fast", toy_service())
        registry.register_files("slow", graph_path, seed=0)

        loader = threading.Thread(target=registry.get, args=("slow",))
        loader.start()
        try:
            time.sleep(0.02)                 # let the loader grab its lock
            answer = registry.get("fast").query("v0", "v4", LABELS, S0)[0].answer
            assert answer is True            # not deadlocked behind the build
            assert registry.names() == ["fast", "slow"]
        finally:
            release.set()
            loader.join(timeout=10)
        assert registry.describe()["tenants"]["slow"]["loaded"] is True


# ----------------------------------------------------------------------
# mixed-tenant traffic under churn
# ----------------------------------------------------------------------


class TestRegistryConcurrency:
    WORKERS = 8
    OPS_PER_WORKER = 60

    def test_traffic_during_register_remove_churn(self, tmp_path):
        graph_path = tmp_path / "g0.tsv"
        dump_tsv(figure3_graph(), graph_path)

        registry = TenantRegistry(default_tenant="a")
        registry.add("a", toy_service())
        registry.add("b", toy_service(cache_size=4))

        # Expected answers, computed serially before any contention.
        cases = [("v0", "v4"), ("v0", "v3"), ("v3", "v4"), ("v1", "v4"),
                 ("v0", "v0"), ("v4", "v0")]
        expected = {
            (s, t): registry.get("a").query(s, t, LABELS, S0, use_cache=False)[0].answer
            for s, t in cases
        }

        stop_churn = threading.Event()
        failures: list[str] = []

        def churn():
            while not stop_churn.is_set():
                try:
                    registry.register_files("c", graph_path, seed=0)
                except TenantExistsError:
                    pass
                try:
                    registry.remove("c")
                except UnknownTenantError:
                    pass

        def worker(worker_id: int):
            for position in range(self.OPS_PER_WORKER):
                source, target = cases[(worker_id + position) % len(cases)]
                tenant = ("a", "b")[position % 2]
                try:
                    result, _ = registry.get(tenant).query(source, target, LABELS, S0)
                    if result.answer != expected[(source, target)]:
                        failures.append(
                            f"{tenant}:{source}->{target} gave {result.answer}"
                        )
                    if position % 10 == 0:
                        # Tenant "c" flickers in and out; both outcomes
                        # are legal, anything else is a bug.
                        try:
                            registry.get("c").query(source, target, LABELS, S0)
                        except UnknownTenantError:
                            pass
                except Exception as error:  # noqa: BLE001 — collected
                    failures.append(f"{tenant}:{source}->{target} raised {error!r}")

        churner = threading.Thread(target=churn)
        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.WORKERS)
        ]
        churner.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        stop_churn.set()
        churner.join(timeout=60)

        assert not failures, failures[:5]
        # Ledgers stayed coherent: tenants a+b saw every worker query.
        totals = registry.stats_snapshot()["totals"]["queries"]
        assert totals["total"] >= self.WORKERS * self.OPS_PER_WORKER
        snapshot_a = registry.get("a").results.stats()
        assert snapshot_a.hits + snapshot_a.misses >= 1
        assert snapshot_a.size <= snapshot_a.max_size


# ----------------------------------------------------------------------
# ResultCache: deterministic clock + contention invariants
# ----------------------------------------------------------------------


class TestResultCacheDeterministicClock:
    def test_ttl_expiry_counters_exact(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        clock.advance(9.999)
        assert cache.get("k") == "v"                 # just inside the TTL
        clock.advance(0.001)
        assert cache.get("k") is None                # deadline is inclusive
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.expirations == 1
        assert stats.evictions == 0
        assert stats.size == 0

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = ResultCache(max_size=8, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(9.0)
        cache.put("k", "v2")                         # deadline restarts
        clock.advance(9.0)
        assert cache.get("k") == "v2"
        assert cache.stats().expirations == 0

    def test_lru_eviction_counters_exact(self):
        cache = ResultCache(max_size=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        assert cache.get("a") == "A"                 # promote a over b
        cache.put("d", "D")                          # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.misses == 1
        assert stats.hits == 3
        assert stats.size == 3

    def test_expired_entries_do_not_count_as_evictions(self):
        clock = FakeClock()
        cache = ResultCache(max_size=2, ttl_seconds=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        assert "a" not in cache                      # membership: non-counting
        cache.put("b", 2)
        cache.put("c", 3)                            # "a" is stale, LRU drops it
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.hits == 0 and stats.misses == 0


class TestCacheContention:
    THREADS = 8
    OPS = 400

    def test_result_cache_counters_consistent_under_contention(self):
        clock = FakeClock()
        cache = ResultCache(max_size=16, ttl_seconds=50.0, clock=clock)
        gets = [0] * self.THREADS
        errors: list[Exception] = []
        barrier = threading.Barrier(self.THREADS + 1)

        def worker(worker_id: int):
            # 8 workers x 5-key windows stepped by 3 cover k0..k23 — more
            # distinct hot keys than the 16-entry capacity, forcing LRU
            # overflow while threads race.  The window length is coprime
            # with the put-every-3rd-op rhythm, so every key sees both
            # puts and gets.
            keys = [f"k{(worker_id * 3 + offset) % 24}" for offset in range(5)]
            barrier.wait()
            try:
                for position in range(self.OPS):
                    key = keys[position % len(keys)]
                    if position % 3 == 0:
                        cache.put(key, (worker_id, position))
                    else:
                        cache.get(key)
                        gets[worker_id] += 1
            except Exception as error:  # noqa: BLE001 — collected
                errors.append(error)

        def ticker():
            barrier.wait()
            for _ in range(40):
                clock.advance(1.0)                   # ages entries toward TTL
                time.sleep(0.001)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.THREADS)
        ] + [threading.Thread(target=ticker)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == sum(gets)
        assert stats.size <= stats.max_size
        assert 0 <= len(cache) <= stats.max_size
        # 24 distinct keys were put into 16 slots: overflow must have
        # evicted, whatever the interleaving.
        assert stats.evictions > 0

        # Deterministic epilogue on the contended cache: step past the
        # TTL and sweep — every surviving entry must expire exactly once,
        # and the counters must keep adding up.
        survivors = len(cache)
        clock.advance(60.0)
        swept = [cache.get(f"k{i}") for i in range(24)]
        assert all(value is None for value in swept)
        final = cache.stats()
        assert final.expirations == stats.expirations + survivors
        assert final.hits == stats.hits
        assert final.misses == stats.misses + 24
        assert len(cache) == 0

    def test_constraint_cache_identity_under_contention(self):
        cache = ConstraintCache(max_size=64)
        texts = [
            "SELECT ?x WHERE { ?x <likes> ?y . }",
            "SELECT ?x WHERE {   ?x <likes> ?y .   }",   # same canonical form
            "SELECT ?x WHERE { ?x <friendOf> v3 . }",
        ]
        results: list[list] = [[] for _ in range(self.THREADS)]
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id: int):
            barrier.wait()
            for position in range(100):
                results[worker_id].append(cache.get(texts[position % len(texts)]))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        # Every spelling of the first constraint resolved to one object,
        # on every thread — the parse-once guarantee under contention.
        # (cache[text] is the non-counting accessor, so the counter
        # arithmetic below stays exact.)
        canonical = cache[texts[0]].to_sparql()
        likes = {
            id(parsed)
            for per_thread in results
            for parsed in per_thread
            if parsed.to_sparql() == canonical
        }
        assert len(likes) == 1
        stats = cache.stats()
        lookups = self.THREADS * 100
        assert stats.hits + stats.misses == lookups
        assert stats.misses <= len(texts)            # at most one parse per text
