"""Tests for QueryService (dict-level API, caching, batching, warm start)."""

import pytest

from repro.datasets.toy import figure3_graph
from repro.exceptions import BadRequestError, ServiceConfigError
from repro.graph.io import dump_tsv
from repro.index.local_index import build_local_index
from repro.index.storage import save_local_index
from repro.service.app import QueryService
from repro.session import LSCRSession

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
S0_REFORMATTED = "SELECT ?x WHERE {   ?x <friendOf> v3 . v3 <likes> ?y .   }"
LABELS = ["likes", "follows"]


@pytest.fixture()
def graph():
    return figure3_graph()


@pytest.fixture()
def service(graph):
    return QueryService(graph, build_local_index(graph, k=2, rng=0), seed=0)


@pytest.fixture()
def plain_service(graph):
    return QueryService(graph, seed=0)


class TestQuery:
    def test_basic_true_false(self, service):
        result, meta = service.query("v0", "v4", LABELS, S0)
        assert result.answer is True
        assert result.algorithm == "INS"
        assert meta == {
            "cached": False,
            "trivial": False,
            "reason": "local index loaded",
            "epoch": 0,
            "source": "evaluated",
            "tier": "exact",
        }
        result, _ = service.query("v0", "v3", LABELS, S0)
        assert result.answer is False

    def test_repeat_query_hits_cache(self, service):
        first, meta1 = service.query("v0", "v4", LABELS, S0)
        second, meta2 = service.query("v0", "v4", LABELS, S0)
        assert not meta1["cached"] and meta2["cached"]
        assert second is first                      # the very object
        assert service.results.stats().hits == 1

    def test_reformatted_query_hits_cache(self, service):
        service.query("v0", "v4", ["likes", "follows"], S0)
        _, meta = service.query("v0", "v4", ["follows", "likes"], S0_REFORMATTED)
        assert meta["cached"]

    def test_use_cache_false_bypasses(self, service):
        service.query("v0", "v4", LABELS, S0, use_cache=False)
        _, meta = service.query("v0", "v4", LABELS, S0, use_cache=False)
        assert not meta["cached"]
        assert len(service.results) == 0

    def test_trivial_not_cached(self, service):
        _, meta = service.query("v0", "missing", LABELS, S0)
        assert meta["trivial"]
        assert len(service.results) == 0

    def test_fallback_without_index(self, plain_service):
        result, _ = plain_service.query("v0", "v4", LABELS, S0)
        assert result.algorithm == "UIS*"

    def test_algorithm_override(self, service):
        result, meta = service.query("v0", "v4", LABELS, S0, algorithm="uis")
        assert result.algorithm == "UIS"
        assert "requested" in meta["reason"]

    def test_forced_algorithm_config(self, graph):
        forced = QueryService(graph, build_local_index(graph, k=2, rng=0),
                              algorithm="uis", seed=0)
        assert forced.default_algorithm == "uis"
        result, _ = forced.query("v0", "v4", LABELS, S0)
        assert result.algorithm == "UIS"

    def test_sessions_share_index_and_constraints(self, service):
        service.query("v0", "v4", LABELS, S0)
        session = service._session("ins")
        assert session.index is service.index
        assert session._constraint_cache is service.constraints


class TestBatch:
    def test_order_preserved_and_matches_serial(self, service):
        pairs = [("v0", "v4"), ("v0", "v3"), ("v3", "v4"), ("v0", "v0")] * 16
        specs = [
            {"source": s, "target": t, "labels": LABELS, "constraint": S0}
            for s, t in pairs
        ]
        session = LSCRSession(service.graph, algorithm="ins", index=service.index, seed=0)
        serial = [
            session.answer(session.make_query(s, t, LABELS, S0)).answer
            for s, t in pairs
        ]
        answered = service.query_batch(specs, use_cache=False)
        assert [result.answer for result, _ in answered] == serial

    def test_batch_counts_in_stats(self, service):
        specs = [
            {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}
        ] * 3
        service.query_batch(specs)
        snapshot = service.stats.snapshot()
        assert snapshot["batches"]["requests"] == 1
        assert snapshot["batches"]["queries"] == 3

    def test_per_spec_use_cache_override(self, service):
        base = {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}
        service.query_batch([base])                          # populate the cache
        answered = service.query_batch([base, {**base, "use_cache": False}])
        metas = [meta for _, meta in answered]
        assert metas[0]["cached"] is True
        assert metas[1]["cached"] is False

    def test_oversized_batch_rejected(self, graph):
        small = QueryService(graph, max_batch=2, seed=0)
        specs = [
            {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}
        ] * 3
        with pytest.raises(BadRequestError, match="exceeds the limit"):
            small.query_batch(specs)


class TestJsonApi:
    def test_handle_query_round_trip(self, service):
        payload = {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}
        document = service.handle_query(payload)
        assert document["answer"] is True
        assert document["algorithm"] == "INS"
        assert document["cached"] is False

    def test_handle_query_accepts_comma_labels(self, service):
        payload = {
            "source": "v0", "target": "v4",
            "labels": "likes,follows", "constraint": S0,
        }
        assert service.handle_query(payload)["answer"] is True

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "expected a JSON object"),
            ({}, "missing field"),
            ({"source": 1, "target": "v4", "labels": LABELS, "constraint": S0},
             "must be strings"),
            ({"source": "v0", "target": "v4", "labels": [], "constraint": S0},
             "labels"),
            ({"source": "v0", "target": "v4", "labels": [1], "constraint": S0},
             "labels"),
            ({"source": "v0", "target": "v4", "labels": LABELS, "constraint": ""},
             "constraint"),
            ({"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0,
              "use_cache": "yes"}, "use_cache"),
        ],
    )
    def test_handle_query_validation(self, service, payload, match):
        with pytest.raises(BadRequestError, match=match):
            service.handle_query(payload)

    def test_handle_query_bad_sparql_is_bad_request(self, service):
        payload = {
            "source": "v0", "target": "v4",
            "labels": LABELS, "constraint": "SELECT garbage",
        }
        with pytest.raises(BadRequestError, match="invalid query"):
            service.handle_query(payload)

    def test_handle_batch_round_trip(self, service):
        payload = {
            "queries": [
                {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0},
                {"source": "v0", "target": "v3", "labels": LABELS, "constraint": S0},
            ]
        }
        document = service.handle_batch(payload)
        assert document["count"] == 2
        assert [entry["answer"] for entry in document["results"]] == [True, False]

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({}, "'queries' array"),
            ({"queries": []}, "non-empty"),
            ({"queries": "nope"}, "non-empty"),
            ({"queries": [{}]}, r"queries\[0\]"),
            ({"queries": [{"source": "v0", "target": "v4", "labels": LABELS,
                           "constraint": S0}], "use_cache": 1}, "use_cache"),
        ],
    )
    def test_handle_batch_validation(self, service, payload, match):
        with pytest.raises(BadRequestError, match=match):
            service.handle_batch(payload)

    def test_health(self, service):
        document = service.health()
        assert document["status"] == "ok"
        assert document["vertices"] == 5
        assert document["index_loaded"] is True

    def test_stats_snapshot_shape(self, service):
        service.query("v0", "v4", LABELS, S0)
        service.query("v0", "v4", LABELS, S0)
        document = service.stats_snapshot()
        assert document["service"]["queries"]["total"] == 2
        assert document["result_cache"]["hits"] == 1
        assert document["constraint_cache"]["misses"] == 1
        assert document["index"]["loaded"] is True
        assert document["config"]["default_algorithm"] == "ins"


class TestFromFiles:
    def test_warm_start_builds_then_loads(self, tmp_path, graph):
        graph_path = tmp_path / "g0.tsv"
        index_path = tmp_path / "g0.index.json"
        dump_tsv(graph, graph_path)

        cold = QueryService.from_files(graph_path, index_path, seed=0)
        assert index_path.is_file()                 # built and persisted
        warm = QueryService.from_files(graph_path, index_path, seed=0)
        query = ("v0", "v4", LABELS, S0)
        assert cold.query(*query)[0].answer == warm.query(*query)[0].answer
        assert (
            warm.index.partition.landmarks == cold.index.partition.landmarks
        )

    def test_prebuilt_index_loaded(self, tmp_path, graph):
        graph_path = tmp_path / "g0.tsv"
        index_path = tmp_path / "g0.index.json"
        dump_tsv(graph, graph_path)
        save_local_index(build_local_index(graph, k=2, rng=0), index_path)
        service = QueryService.from_files(graph_path, index_path, seed=0)
        assert service.index is not None
        assert service.default_algorithm == "ins"

    def test_no_index_path_serves_index_free(self, tmp_path, graph):
        graph_path = tmp_path / "g0.tsv"
        dump_tsv(graph, graph_path)
        service = QueryService.from_files(graph_path, seed=0)
        assert service.index is None
        assert service.default_algorithm == "uis*"

    def test_missing_graph_rejected(self, tmp_path):
        with pytest.raises(ServiceConfigError, match="graph file not found"):
            QueryService.from_files(tmp_path / "missing.tsv")

    def test_bad_config_rejected(self, graph):
        with pytest.raises(ServiceConfigError, match="max_batch"):
            QueryService(graph, max_batch=0)
