"""Multi-tenant HTTP integration: /t/<tenant> routes over real sockets.

Covers the tenancy acceptance criteria end to end: two graphs with
different label alphabets served from one process, un-prefixed PR 1
routes still answering for the default tenant, runtime registration via
``POST /tenants`` with lazy warm start, structured 404s for unknown
tenant ids, aggregate ``/healthz``/``/stats`` documents, tenant removal
over ``DELETE``, and `python -m repro serve --tenant` from the CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.datasets.toy import figure3_graph
from repro.graph.io import dump_tsv
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.service.registry import TenantRegistry
from tests.helpers import graph_from_edges

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
LABELS = ["likes", "follows"]

#: Tenant "beta"'s graph: a different shape and label alphabet entirely.
BETA_EDGES = [
    ("s", "hop", "m"),
    ("m", "hop", "t"),
    ("m", "flag", "m"),
]
BETA_SPEC = {
    "source": "s", "target": "t", "labels": ["hop"],
    "constraint": "SELECT ?x WHERE { ?x <flag> ?y . }",
}


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_request(url, payload, method="POST"):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def spec(source, target, labels=LABELS, constraint=S0, **extra):
    return {"source": source, "target": target, "labels": labels,
            "constraint": constraint, **extra}


@pytest.fixture()
def registry():
    alpha = figure3_graph()
    registry = TenantRegistry(default_tenant="alpha")
    registry.add(
        "alpha", QueryService(alpha, build_local_index(alpha, k=2, rng=0), seed=0)
    )
    registry.add(
        "beta", QueryService(graph_from_edges(BETA_EDGES, name="beta"), seed=0)
    )
    return registry


@pytest.fixture()
def base_url(registry):
    server = create_server(registry, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


class TestTenantRoutes:
    def test_two_tenants_answer_from_their_own_graphs(self, base_url):
        status, document = http_request(f"{base_url}/t/alpha/query", spec("v0", "v4"))
        assert status == 200
        assert document["answer"] is True
        assert document["algorithm"] == "INS"
        status, document = http_request(f"{base_url}/t/beta/query", BETA_SPEC)
        assert status == 200
        assert document["answer"] is True
        assert document["algorithm"] == "UIS*"       # beta has no index
        # alpha's vertices mean nothing to beta: trivially false there.
        status, document = http_request(
            f"{base_url}/t/beta/query", spec("v0", "v4")
        )
        assert status == 200
        assert document["answer"] is False
        assert document["trivial"] is True

    def test_unprefixed_routes_alias_default_tenant(self, base_url, registry):
        status, document = http_request(f"{base_url}/query", spec("v0", "v4"))
        assert status == 200
        assert document["answer"] is True
        # The alias hit the same cache the /t/alpha/ route uses.
        status, document = http_request(f"{base_url}/t/alpha/query", spec("v0", "v4"))
        assert document["cached"] is True
        assert registry.get("beta").results.stats().hits == 0

    def test_tenant_batch(self, base_url):
        payload = {"queries": [BETA_SPEC, {**BETA_SPEC, "labels": ["flag"]}]}
        status, document = http_request(f"{base_url}/t/beta/batch", payload)
        assert status == 200
        assert document["count"] == 2
        assert [entry["answer"] for entry in document["results"]] == [True, False]

    def test_tenant_stats_and_healthz(self, base_url):
        http_request(f"{base_url}/t/beta/query", BETA_SPEC)
        status, document = http_get(f"{base_url}/t/beta/stats")
        assert status == 200
        assert document["tenant"] == "beta"
        assert document["service"]["queries"]["total"] == 1
        status, document = http_get(f"{base_url}/t/beta/healthz")
        assert status == 200
        assert document["tenant"] == "beta"
        assert document["loaded"] is True
        assert document["vertices"] == 3

    def test_unknown_tenant_404_structured(self, base_url):
        for method, url, payload in (
            ("POST", f"{base_url}/t/nope/query", spec("v0", "v4")),
            ("POST", f"{base_url}/t/nope/batch", {"queries": [spec("v0", "v4")]}),
            ("GET", f"{base_url}/t/nope/stats", None),
            ("GET", f"{base_url}/t/nope/healthz", None),
            ("DELETE", f"{base_url}/t/nope", None),
        ):
            if method == "GET":
                status, document = http_get(url)
            else:
                status, document = http_request(url, payload, method=method)
            assert status == 404, url
            assert document["error"]["type"] == "unknown-tenant"
            assert "nope" in document["error"]["message"]

    def test_unknown_tenant_errors_counted_in_registry(self, base_url):
        http_request(f"{base_url}/t/nope/query", spec("v0", "v4"))
        _, stats = http_get(f"{base_url}/stats")
        assert stats["registry"]["errors"].get("unknown-tenant", 0) >= 1

    def test_malformed_tenant_paths_404(self, base_url):
        for path in ("/t/alpha", "/t//query", "/t/alpha/query/extra",
                     "/t/bad%20name/query"):
            status, document = http_request(f"{base_url}{path}", spec("v0", "v4"))
            assert status == 404, path
            assert document["error"]["type"] in ("not-found", "unknown-tenant")


class TestAggregateEndpoints:
    def test_healthz_reports_per_tenant_state(self, base_url):
        status, document = http_get(f"{base_url}/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["tenant_count"] == 2
        assert document["tenants_loaded"] == 2
        tenants = document["tenants"]
        assert tenants["alpha"]["loaded"] and tenants["beta"]["loaded"]
        assert tenants["alpha"]["vertices"] == 5
        assert tenants["beta"]["vertices"] == 3
        assert document["totals"]["vertices"] == 8
        # Default-tenant (alpha) keys are still at top level for PR 1
        # monitoring.
        assert document["index_loaded"] is True

    def test_stats_aggregates_across_tenants(self, base_url):
        http_request(f"{base_url}/t/alpha/query", spec("v0", "v4"))
        http_request(f"{base_url}/t/beta/query", BETA_SPEC)
        http_request(f"{base_url}/t/beta/query", BETA_SPEC)
        status, document = http_get(f"{base_url}/stats")
        assert status == 200
        assert document["service"]["queries"]["total"] == 1          # alpha
        assert document["tenants"]["beta"]["queries"]["total"] == 2
        assert document["totals"]["queries"]["total"] == 3
        assert document["totals"]["queries"]["cached"] == 1
        algorithms = document["totals"]["algorithms"]
        assert algorithms["INS"]["count"] == 1
        assert algorithms["UIS*"]["count"] == 1

    def test_tenants_listing(self, base_url):
        status, document = http_get(f"{base_url}/tenants")
        assert status == 200
        assert document["count"] == 2
        assert document["default_tenant"] == "alpha"
        assert set(document["tenants"]) == {"alpha", "beta"}


class TestTenantAdmin:
    def test_register_then_query_lazy_tenant(self, base_url, tmp_path):
        graph_path = tmp_path / "gamma.tsv"
        dump_tsv(figure3_graph(), graph_path)
        status, document = http_request(
            f"{base_url}/tenants",
            {"name": "gamma", "graph": str(graph_path), "seed": 0},
        )
        assert status == 201
        assert document == {"registered": "gamma", "loaded": False}
        _, listing = http_get(f"{base_url}/tenants")
        assert listing["tenants"]["gamma"]["loaded"] is False
        # First query triggers the warm start.
        status, document = http_request(f"{base_url}/t/gamma/query", spec("v0", "v4"))
        assert status == 200
        assert document["answer"] is True
        _, listing = http_get(f"{base_url}/tenants")
        assert listing["tenants"]["gamma"]["loaded"] is True

    def test_duplicate_registration_409(self, base_url, tmp_path):
        graph_path = tmp_path / "g.tsv"
        dump_tsv(figure3_graph(), graph_path)
        status, document = http_request(
            f"{base_url}/tenants", {"name": "alpha", "graph": str(graph_path)}
        )
        assert status == 409
        assert "already registered" in document["error"]["message"]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ("not a dict", "JSON object"),
            ({}, "'name'"),
            ({"name": "bad name", "graph": "g.tsv"}, "'name'"),
            ({"name": "ok"}, "'graph'"),
            ({"name": "ok", "graph": 7}, "'graph'"),
            ({"name": "ok", "graph": "g.tsv", "index": 7}, "'index'"),
        ],
    )
    def test_bad_registration_payloads_400(self, base_url, payload, fragment):
        status, document = http_request(f"{base_url}/tenants", payload)
        assert status == 400
        assert fragment in document["error"]["message"]

    @pytest.mark.parametrize(
        "field, value",
        [
            ("seed", "zero"), ("seed", True), ("algorithm", "dijkstra"),
            ("cache_size", -1), ("cache_ttl", 0), ("max_workers", 0),
            ("max_batch", "lots"), ("landmark_count", -3),
        ],
    )
    def test_bad_option_values_fail_registration_not_queries(
        self, base_url, tmp_path, field, value
    ):
        # Option values are validated at POST /tenants time: a bad one
        # must 400 here, never register a tenant that 500s on first use.
        graph_path = tmp_path / "g.tsv"
        dump_tsv(figure3_graph(), graph_path)
        status, document = http_request(
            f"{base_url}/tenants",
            {"name": "opts", "graph": str(graph_path), field: value},
        )
        assert status == 400
        assert field in document["error"]["message"]
        _, listing = http_get(f"{base_url}/tenants")
        assert "opts" not in listing["tenants"]

    def test_registration_with_missing_graph_file_400(self, base_url, tmp_path):
        status, document = http_request(
            f"{base_url}/tenants",
            {"name": "ok", "graph": str(tmp_path / "absent.tsv")},
        )
        assert status == 400
        assert "not found" in document["error"]["message"]

    def test_delete_tenant(self, base_url):
        status, document = http_request(
            f"{base_url}/t/beta", None, method="DELETE"
        )
        assert status == 200
        assert document == {"removed": "beta"}
        status, document = http_request(f"{base_url}/t/beta/query", BETA_SPEC)
        assert status == 404
        _, listing = http_get(f"{base_url}/tenants")
        assert listing["count"] == 1

    def test_put_still_405(self, base_url):
        status, document = http_request(
            f"{base_url}/t/alpha/query", spec("v0", "v4"), method="PUT"
        )
        assert status == 405

    def test_delete_with_body_keeps_connection_in_sync(self, base_url):
        # DELETE must drain an unexpected request body, or the next
        # request on the same keep-alive connection reads garbage.
        import http.client

        host_port = base_url.removeprefix("http://")
        connection = http.client.HTTPConnection(host_port, timeout=10)
        try:
            connection.request(
                "DELETE", "/t/beta", body=b'{"why": "not"}',
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == {"removed": "beta"}
            # Same socket, second request: still a clean HTTP exchange.
            connection.request("GET", "/tenants")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["count"] == 1
        finally:
            connection.close()


class TestCliServeTenants:
    def test_serve_tenant_flags_subprocess(self, tmp_path):
        alpha_path = tmp_path / "alpha.tsv"
        beta_path = tmp_path / "beta.tsv"
        dump_tsv(figure3_graph(), alpha_path)
        dump_tsv(graph_from_edges(BETA_EDGES, name="beta"), beta_path)

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--tenant", f"alpha={alpha_path}",
             "--tenant", f"beta={beta_path}",
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            port = _await_ready_line(process)
            base = f"http://127.0.0.1:{port}"
            # First --tenant backs the un-prefixed routes when --graph
            # is absent.
            status, document = http_request(f"{base}/query", spec("v0", "v4"))
            assert status == 200
            assert document["answer"] is True
            status, document = http_request(f"{base}/t/beta/query", BETA_SPEC)
            assert status == 200
            assert document["answer"] is True
            status, document = http_get(f"{base}/tenants")
            assert status == 200
            assert set(document["tenants"]) == {"alpha", "beta"}
            assert document["default_tenant"] == "alpha"
        finally:
            process.terminate()
            process.wait(timeout=10)


def _await_ready_line(process, timeout=30.0):
    """Read stdout until the 'listening on' line; return the port."""
    lines: list[str] = []
    found: list[int] = []

    def reader():
        for line in process.stdout:
            lines.append(line)
            if "listening on" in line:
                found.append(int(line.rsplit(":", 1)[1]))
                return

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if found:
            return found[0]
        if process.poll() is not None:
            break
        time.sleep(0.05)
    raise AssertionError(
        f"server never became ready; exit={process.poll()} output={lines!r}"
    )
