"""Planner edge cases: short-circuit answers, and what must NOT be cached.

Each degenerate request has two contracts: the planner's verdict (a
trivial answer with the right Boolean and reason, or a clean
``BadRequestError``) *and* the cache discipline around it — trivial
answers cost nothing to recompute so they are never stored, and error
paths must leave both the result cache and the constraint cache exactly
as they found them, so a flood of garbage requests cannot evict real
entries.
"""

from __future__ import annotations

import pytest

from repro.datasets.toy import figure3_graph
from repro.exceptions import BadRequestError, SparqlError
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.planner import TRIVIAL, QueryPlanner

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
LABELS = ["likes", "follows"]


@pytest.fixture()
def graph():
    return figure3_graph()


@pytest.fixture()
def service(graph):
    return QueryService(graph, build_local_index(graph, k=2, rng=0), seed=0)


@pytest.fixture()
def planner(graph):
    return QueryPlanner(graph)


class TestSourceEqualsTarget:
    def test_satisfying_source_is_trivially_true(self, service):
        # v1 has a friendOf edge to v3 and v3 likes v4, so v1 satisfies
        # S0: the trivial path <v1> answers true without a search.
        result, meta = service.query("v1", "v1", LABELS, S0)
        assert result.answer is True
        assert meta["trivial"]
        assert result.algorithm == "planner"
        assert result.passed_vertices == 0

    def test_non_satisfying_source_still_searches(self, service, planner):
        # s == t alone is NOT trivial: a cycle through a satisfying
        # vertex may exist, so the planner must emit an execution plan.
        plan = planner.plan("v0", "v0", LABELS, S0)
        assert not plan.is_trivial
        assert plan.algorithm != TRIVIAL
        result, meta = service.query("v0", "v0", LABELS, S0)
        assert not meta["trivial"]
        assert result.answer is False        # figure 3 has no such cycle

    def test_trivially_true_answer_not_cached(self, service):
        service.query("v1", "v1", LABELS, S0)
        assert len(service.results) == 0
        _, meta = service.query("v1", "v1", LABELS, S0)
        assert meta["trivial"] and not meta["cached"]


class TestAbsentLabels:
    def test_labels_outside_alphabet_trivially_false(self, service):
        result, meta = service.query("v0", "v4", ["no-such-label"], S0)
        assert result.answer is False
        assert meta["trivial"]
        assert "no requested label" in meta["reason"]
        assert len(service.results) == 0

    def test_mixed_known_unknown_labels_still_search(self, service):
        # One real label keeps the mask non-empty: not trivial.
        result, meta = service.query("v0", "v4", ["likes", "follows", "bogus"], S0)
        assert not meta["trivial"]
        assert result.answer is True

    def test_s_equals_t_beats_empty_mask(self, planner):
        # Precedence: s == t with a satisfying source answers TRUE even
        # when no requested label exists — the trivial path needs no edge.
        plan = planner.plan("v1", "v1", ["no-such-label"], S0)
        assert plan.is_trivial and plan.trivial_answer is True


class TestConstraintText:
    @pytest.mark.parametrize("text", ["", "   ", "\n\t  \n"])
    def test_empty_or_whitespace_rejected_uncached(self, service, text):
        before_results = len(service.results)
        before_constraints = len(service.constraints)
        with pytest.raises(BadRequestError, match="non-empty SPARQL"):
            service.query("v0", "v4", LABELS, text)
        assert len(service.results) == before_results
        assert len(service.constraints) == before_constraints

    def test_invalid_sparql_rejected_uncached(self, service):
        with pytest.raises(SparqlError):
            service.query("v0", "v4", LABELS, "SELECT garbage ?!")
        assert len(service.results) == 0
        assert len(service.constraints) == 0
        assert service.stats.snapshot()["queries"]["total"] == 0

    def test_unsatisfiable_constraint_trivially_false(self, service):
        unsatisfiable = "SELECT ?x WHERE { ?x <no-such-predicate> ?y . }"
        result, meta = service.query("v0", "v4", LABELS, unsatisfiable)
        assert result.answer is False
        assert meta["trivial"]
        assert "satisfy" in meta["reason"]
        # The constraint text itself *is* cached (it parsed fine); the
        # trivial result is not.
        assert len(service.results) == 0
        assert unsatisfiable in service.constraints


class TestUnknownVertices:
    @pytest.mark.parametrize(
        "source, target", [("ghost", "v4"), ("v0", "ghost"), ("ghost", "phantom")]
    )
    def test_unknown_vertices_trivially_false(self, service, source, target):
        result, meta = service.query(source, target, LABELS, S0)
        assert result.answer is False
        assert meta["trivial"]
        assert "not in the graph" in meta["reason"]
        assert len(service.results) == 0

    def test_unknown_vertex_s_equals_t(self, service):
        # Same unknown name on both ends: still false — there is no
        # vertex for the trivial path to stand on.
        result, meta = service.query("ghost", "ghost", LABELS, S0)
        assert result.answer is False
        assert meta["trivial"]


class TestErrorPathsLeaveNoTrace:
    def test_unknown_algorithm_rejected_uncached(self, service):
        with pytest.raises(BadRequestError, match="unknown algorithm"):
            service.query("v0", "v4", LABELS, S0, algorithm="dijkstra")
        assert len(service.results) == 0
        assert service.stats.snapshot()["queries"]["total"] == 0

    def test_ins_without_index_rejected(self, graph):
        bare = QueryService(graph, seed=0)
        with pytest.raises(BadRequestError, match="requires a loaded index"):
            bare.query("v0", "v4", LABELS, S0, algorithm="ins")

    def test_batch_error_poisons_nothing(self, service):
        specs = [
            {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0},
            {"source": "v0", "target": "v4", "labels": LABELS, "constraint": ""},
        ]
        with pytest.raises(BadRequestError):
            service.handle_batch({"queries": specs})
        # Validation failed before any execution: nothing cached, nothing
        # counted as answered.
        assert len(service.results) == 0
        assert service.stats.snapshot()["queries"]["total"] == 0

    def test_good_query_after_errors_unaffected(self, service):
        for _ in range(3):
            with pytest.raises(BadRequestError):
                service.query("v0", "v4", LABELS, "")
        result, meta = service.query("v0", "v4", LABELS, S0)
        assert result.answer is True
        assert not meta["cached"]
        _, meta = service.query("v0", "v4", LABELS, S0)
        assert meta["cached"]
