"""Randomized agreement for live updates: epoch swaps vs a naive oracle.

The epoch-swap subsystem layers graph copying, per-region index repair,
re-freezing, cache namespacing and atomic publication on top of the
paper's algorithms — none of which may change a single Boolean answer.
This suite interleaves random edge batches and query workloads on ~30
seeded graphs: after every ``apply_updates`` the service's answers must
equal :class:`NaiveTwoProcedure` run on an independently mutated mirror
graph (the oracle shares no code with the update path — it rebuilds
nothing, it just owns a second copy of the data).

The concurrency group runs readers *during* the swaps: every response
carries the epoch it was answered on, and each recorded
``(answer, epoch)`` pair must match the oracle for exactly that epoch —
the precise statement of "queries running during apply_updates all
return answers valid for some published epoch".
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from tests.helpers import graph_from_edges

SEEDS = list(range(30))
UPDATE_ROUNDS = 3
QUERIES_PER_ROUND = 6
NUM_LABELS = 3
NUM_VERTICES = 9


def make_graph(seed):
    return random_labeled_graph(
        NUM_VERTICES, 1.6, NUM_LABELS, rng=seed, name=f"live-{seed}"
    )


def make_service(graph, seed):
    """Alternate indexed (INS + per-region repair) and index-free services."""
    index = build_local_index(graph, k=3, rng=seed) if seed % 2 == 0 else None
    return QueryService(graph, index, seed=seed)


def constraint_pool(rng):
    label = f"l{rng.randrange(NUM_LABELS)}"
    anchor = f"n{rng.randrange(NUM_VERTICES)}"
    pool = [
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> {anchor} . }}",
        f"SELECT ?x WHERE {{ {anchor} <{label}> ?x . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . ?y <l0> ?z . }}",
    ]
    return rng.choice(pool)


def random_batch(rng, round_number, oracle):
    """2-5 random edge additions: existing vertices, fresh vertices and
    the occasional deliberate duplicate of an existing edge."""
    known = [f"n{i}" for i in range(NUM_VERTICES)]
    fresh = [f"u{round_number}_{i}" for i in range(2)]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    batch = []
    for _ in range(rng.randint(2, 5)):
        roll = rng.random()
        if roll < 0.15 and oracle.num_edges:
            edge = rng.choice(sorted(oracle._edge_set))
            batch.append(
                (
                    oracle.name_of(edge[0]),
                    oracle.label_name(edge[1]),
                    oracle.name_of(edge[2]),
                )
            )
        else:
            source = rng.choice(known if roll < 0.8 else known + fresh)
            target = rng.choice(known if rng.random() < 0.8 else known + fresh)
            batch.append((source, rng.choice(labels), target))
    return batch


def random_mixed_batch(rng, round_number, oracle):
    """Like :func:`random_batch` but with explicit ops: additions mixed
    with removals of real edges and removals of absent ones."""
    known = [str(name) for name in oracle.vertex_names()]
    fresh = [f"m{round_number}_{i}" for i in range(2)]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    batch = []
    for _ in range(rng.randint(2, 5)):
        roll = rng.random()
        if roll < 0.35 and oracle.num_edges:
            edge = rng.choice(sorted(oracle._edge_set))
            batch.append(
                (
                    oracle.name_of(edge[0]),
                    oracle.label_name(edge[1]),
                    oracle.name_of(edge[2]),
                    "remove",
                )
            )
        elif roll < 0.45:
            batch.append(
                (rng.choice(known), rng.choice(labels), "never-added", "remove")
            )
        else:
            source = rng.choice(known if roll < 0.85 else known + fresh)
            target = rng.choice(known if rng.random() < 0.85 else known + fresh)
            batch.append((source, rng.choice(labels), target, "add"))
    return batch


def apply_mixed_to_oracle(oracle, batch):
    """Mutate the mirror; returns (added, removed, missing) counts."""
    added = removed = missing = 0
    for source, label, target, op in batch:
        if op == "add":
            added += bool(oracle.add_edge(source, label, target))
        elif oracle.remove_edge(source, label, target):
            removed += 1
        else:
            missing += 1
    return added, removed, missing


def random_specs(rng, oracle, count=QUERIES_PER_ROUND):
    """Random specs over every vertex the mutated graph currently has."""
    vertices = [str(name) for name in oracle.vertex_names()]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    return [
        (
            rng.choice(vertices),
            rng.choice(vertices),
            rng.sample(labels, rng.randint(1, NUM_LABELS)),
            constraint_pool(rng),
        )
        for _ in range(count)
    ]


def naive_answer(graph, source, target, labels, constraint_text, cache):
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        return False  # the planner's trivial verdict, mirrored
    if constraint_text not in cache:
        cache[constraint_text] = SubstructureConstraint.from_sparql(constraint_text)
    query = LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=cache[constraint_text],
    )
    return NaiveTwoProcedure(graph).decide(query)


class TestUpdateAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_answers_after_each_swap_match_the_mutated_oracle(self, seed):
        graph = make_graph(seed)
        oracle = graph.copy()  # mutated in lockstep, queried by the oracle
        service = make_service(graph, seed)
        rng = random.Random(seed * 52361 + 7)
        parsed = {}
        expected_epoch = 0
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_batch(rng, round_number, oracle)
                summary = service.apply_updates(batch)
                applied = sum(oracle.add_edge(s, l, t) for s, l, t in batch)
                if applied:  # an all-duplicate batch publishes nothing
                    expected_epoch += 1
                assert summary["epoch"] == expected_epoch
                assert summary["edges_added"] == applied
                assert summary["edges_duplicate"] == len(batch) - applied
                assert service.graph.num_edges == oracle.num_edges
                assert service.graph.num_vertices == oracle.num_vertices
                for source, target, labels, text in random_specs(rng, oracle):
                    expected = naive_answer(
                        oracle, source, target, labels, text, parsed
                    )
                    result, meta = service.query(source, target, labels, text)
                    assert result.answer == expected, (
                        f"seed={seed} round={round_number} {source}->{target} "
                        f"L={labels} S={text!r}: service={result.answer} "
                        f"naive={expected} ({meta['reason']})"
                    )
                    assert meta["epoch"] == expected_epoch
                    # Second pass: the epoch's own cache must serve the
                    # same answer (and executed ones must actually hit).
                    second, meta2 = service.query(source, target, labels, text)
                    assert second.answer == expected
                    if not meta["trivial"]:
                        assert meta2["cached"]
        finally:
            service.close()

    @pytest.mark.parametrize("seed", SEEDS[::6])
    def test_fresh_service_on_mutated_graph_agrees(self, seed):
        # The acceptance criterion verbatim: after updates, the serving
        # service must be indistinguishable from one freshly built on
        # the mutated graph.
        graph = make_graph(seed)
        oracle = graph.copy()
        service = make_service(graph, seed)
        rng = random.Random(seed * 7 + 3)
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_batch(rng, round_number, oracle)
                service.apply_updates(batch)
                for s, l, t in batch:
                    oracle.add_edge(s, l, t)
            reference = make_service(oracle.copy(), seed)
            try:
                for source, target, labels, text in random_specs(
                    rng, oracle, count=10
                ):
                    live, _ = service.query(source, target, labels, text)
                    fresh, _ = reference.query(source, target, labels, text)
                    assert live.answer == fresh.answer, (
                        f"seed={seed} {source}->{target} L={labels} S={text!r}"
                    )
            finally:
                reference.close()
        finally:
            service.close()


class TestMixedUpdateAgreement:
    """Insertions *and* retractions through the same epoch machinery.

    The regression this guards: ``op: "remove"`` batches used to
    validate and then silently vanish — ``apply_updates`` only routed
    additions, so acknowledged retractions never left the graph and the
    index was never repaired for them.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    def test_answers_after_mixed_batches_match_the_oracle(self, seed):
        graph = make_graph(seed)
        oracle = graph.copy()
        service = make_service(graph, seed)
        rng = random.Random(seed * 8191 + 13)
        parsed = {}
        expected_epoch = 0
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_mixed_batch(rng, round_number, oracle)
                summary = service.apply_updates(batch)
                added, removed, missing = apply_mixed_to_oracle(oracle, batch)
                if added or removed:
                    expected_epoch += 1
                assert summary["epoch"] == expected_epoch
                assert summary["edges_added"] == added
                assert summary["edges_removed"] == removed
                assert summary["edges_missing"] == missing
                assert service.graph.num_edges == oracle.num_edges
                for source, target, labels, text in random_specs(rng, oracle):
                    expected = naive_answer(
                        oracle, source, target, labels, text, parsed
                    )
                    result, meta = service.query(source, target, labels, text)
                    assert result.answer == expected, (
                        f"seed={seed} round={round_number} {source}->{target} "
                        f"L={labels} S={text!r}: service={result.answer} "
                        f"naive={expected} ({meta['reason']})"
                    )
                    assert meta["epoch"] == expected_epoch
        finally:
            service.close()

    @pytest.mark.parametrize("seed", SEEDS[::6])
    def test_fresh_service_on_retracted_graph_agrees(self, seed):
        graph = make_graph(seed)
        oracle = graph.copy()
        service = make_service(graph, seed)
        rng = random.Random(seed * 131 + 1)
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_mixed_batch(rng, round_number, oracle)
                service.apply_updates(batch)
                apply_mixed_to_oracle(oracle, batch)
            reference = make_service(oracle.copy(), seed)
            try:
                for source, target, labels, text in random_specs(
                    rng, oracle, count=10
                ):
                    live, _ = service.query(source, target, labels, text)
                    fresh, _ = reference.query(source, target, labels, text)
                    assert live.answer == fresh.answer, (
                        f"seed={seed} {source}->{target} L={labels} S={text!r}"
                    )
            finally:
                reference.close()
        finally:
            service.close()


class TestConcurrentReadersDuringSwaps:
    def test_every_answer_is_valid_for_its_reported_epoch(self):
        # A chain that grows one link per update: s -> c0 -> c1 -> ...
        # The probe "s reaches ck" flips from False to True exactly when
        # epoch k is published, so any mixed-version answer is caught.
        chain_length = 6
        base = graph_from_edges(
            [("s", "go", "c0"), ("s", "mark", "s")], name="concurrent"
        )
        oracles = [base.copy()]
        for k in range(chain_length):
            mutated = oracles[-1].copy()
            mutated.add_edge(f"c{k}", "go", f"c{k + 1}")
            oracles.append(mutated)
        probes = [
            ("s", f"c{k + 1}", ["go"], "SELECT ?x WHERE { ?x <mark> ?y . }")
            for k in range(chain_length)
        ]
        parsed = {}
        expected = [
            [naive_answer(oracle, *probe, parsed) for probe in probes]
            for oracle in oracles
        ]
        # Sanity: each probe flips exactly at its epoch.
        for k in range(chain_length):
            assert expected[k][k] is False and expected[k + 1][k] is True

        service = QueryService(base, seed=0)
        records = []
        failures = []
        stop = threading.Event()

        def reader(reader_seed):
            rng = random.Random(reader_seed)
            while not stop.is_set():
                probe = rng.choice(probes)
                try:
                    result, meta = service.query(
                        *probe, use_cache=rng.random() < 0.5
                    )
                except Exception as error:  # noqa: BLE001 — reported below
                    failures.append(repr(error))
                    return
                records.append((probes.index(probe), result.answer,
                                meta["epoch"]))

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for k in range(chain_length):
                service.apply_updates([(f"c{k}", "go", f"c{k + 1}")])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            service.close()

        assert not failures, failures
        assert records
        published = set(range(chain_length + 1))
        for probe_index, answer, epoch in records:
            assert epoch in published
            assert answer == expected[epoch][probe_index], (
                f"probe {probe_index} answered {answer} on epoch {epoch}, "
                f"oracle says {expected[epoch][probe_index]}"
            )
        # After the last swap every probe must answer with the final
        # graph (a straggler service would still be on an older epoch).
        for probe_index, probe in enumerate(probes):
            result, meta = service.query(*probe)
            assert meta["epoch"] == chain_length
            assert result.answer is expected[chain_length][probe_index]
