"""Randomized agreement: the full service path vs. the naive oracle.

The service stack adds planning, canonical cache keys, result caching,
``V(S, G)`` candidate caching, frozen CSR graph snapshots, session
pooling and batch fan-out on top of the paper's algorithms — none of
which may change a single Boolean answer.  QueryService freezes its
graph at construction, so every run of this suite exercises the
frozen-graph serving path (asserted in ``make_service``), including the
two-tenant interleaved group.  This suite generates
many random small graphs and query workloads from fixed seeds and
answers every query twice through the full service path (planner →
cache → session; the second pass exercises the cache-hit path) and once
with :class:`NaiveTwoProcedure`, whose correctness is immediate from
Theorem 2.1 and which shares no code with the planner or caches.

A second group runs the same property with *two* tenants sharing one
process behind a :class:`TenantRegistry` — different graphs, different
label alphabets — interleaving their queries to prove the per-tenant
caches, stats and session pools don't bleed into each other.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.graph import FrozenGraph
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.registry import TenantRegistry

#: ~50 generated graphs, every seed fixed for reproducibility.
SEEDS = list(range(50))
QUERIES_PER_GRAPH = 8


def make_graph(seed, num_labels=3, num_vertices=9, density=1.8):
    return random_labeled_graph(
        num_vertices, density, num_labels, rng=seed, name=f"agree-{seed}"
    )


def make_service(graph, seed):
    """Alternate indexed (INS) and index-free (UIS*) services by seed.

    The index is deliberately built on the *dict-backed* graph while the
    service freezes at construction, so every agreement run also covers
    the frozen-CSR serving path against an index bound to the source.
    """
    index = build_local_index(graph, k=3, rng=seed) if seed % 2 == 0 else None
    service = QueryService(graph, index, seed=seed)
    assert isinstance(service.graph, FrozenGraph)  # the suite runs frozen
    return service


def constraint_pool(rng, num_labels, num_vertices):
    """Random anchored SPARQL texts over the graph's l0..l{k-1} alphabet."""
    label = f"l{rng.randrange(num_labels)}"
    anchor = f"n{rng.randrange(num_vertices)}"
    pool = [
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> {anchor} . }}",
        f"SELECT ?x WHERE {{ {anchor} <{label}> ?x . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . ?y <l0> ?z . }}",
    ]
    return rng.choice(pool)


def random_specs(rng, num_labels, num_vertices, count=QUERIES_PER_GRAPH):
    """``count`` random (source, target, labels, constraint) specs."""
    vertices = [f"n{i}" for i in range(num_vertices)]
    labels = [f"l{i}" for i in range(num_labels)]
    specs = []
    for _ in range(count):
        specs.append(
            (
                rng.choice(vertices),
                rng.choice(vertices),
                rng.sample(labels, rng.randint(1, num_labels)),
                constraint_pool(rng, num_labels, num_vertices),
            )
        )
    return specs


def naive_answer(graph, source, target, labels, constraint_text, cache):
    if constraint_text not in cache:
        cache[constraint_text] = SubstructureConstraint.from_sparql(constraint_text)
    query = LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=cache[constraint_text],
    )
    return NaiveTwoProcedure(graph).decide(query)


class TestServicePathAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_service_agrees_with_naive_oracle(self, seed):
        graph = make_graph(seed)
        service = make_service(graph, seed)
        rng = random.Random(seed * 7919 + 1)
        parsed = {}
        for source, target, labels, text in random_specs(rng, 3, 9):
            expected = naive_answer(graph, source, target, labels, text, parsed)
            first, meta1 = service.query(source, target, labels, text)
            assert first.answer == expected, (
                f"seed={seed} {source}->{target} L={labels} S={text!r}: "
                f"service={first.answer} naive={expected} ({meta1['reason']})"
            )
            # Second pass: same answer off the cache-hit (or re-planned
            # trivial) path.  Executed answers must be served from cache.
            second, meta2 = service.query(source, target, labels, text)
            assert second.answer == expected
            if meta1["trivial"]:
                assert meta2["trivial"]
            else:
                assert meta2["cached"]

    @pytest.mark.parametrize("seed", SEEDS[::5])
    def test_batch_path_agrees_with_naive_oracle(self, seed):
        graph = make_graph(seed)
        service = make_service(graph, seed)
        rng = random.Random(seed * 104729 + 3)
        parsed = {}
        raw = random_specs(rng, 3, 9, count=12)
        expected = [
            naive_answer(graph, s, t, labels, text, parsed)
            for s, t, labels, text in raw
        ]
        specs = [
            {"source": s, "target": t, "labels": labels, "constraint": text}
            for s, t, labels, text in raw
        ]
        answered = service.query_batch(specs)
        assert [result.answer for result, _ in answered] == expected
        # Once more: every non-trivial answer now comes from the cache.
        again = service.query_batch(specs)
        assert [result.answer for result, _ in again] == expected
        assert all(meta["cached"] or meta["trivial"] for _, meta in again)


class TestTwoTenantAgreement:
    """Two graphs, one process: answers correct and non-interfering."""

    @pytest.mark.parametrize("seed", SEEDS[::5])
    def test_interleaved_tenants_agree_with_their_oracles(self, seed):
        graph_a = make_graph(seed, num_labels=3, num_vertices=9)
        graph_b = make_graph(seed + 1000, num_labels=4, num_vertices=11)
        registry = TenantRegistry(default_tenant="a")
        registry.add("a", make_service(graph_a, seed))
        registry.add("b", QueryService(graph_b, seed=seed))

        rng = random.Random(seed * 31337 + 5)
        specs_a = random_specs(rng, 3, 9)
        specs_b = random_specs(rng, 4, 11)
        parsed_a, parsed_b = {}, {}
        # Interleave: a, b, a, b, ... each answered twice via the JSON
        # API, checked against the oracle for its *own* graph.
        for (sa, ta, la, ca), (sb, tb, lb, cb) in zip(specs_a, specs_b):
            expected_a = naive_answer(graph_a, sa, ta, la, ca, parsed_a)
            expected_b = naive_answer(graph_b, sb, tb, lb, cb, parsed_b)
            for tenant, spec, expected in (
                ("a", {"source": sa, "target": ta, "labels": la, "constraint": ca},
                 expected_a),
                ("b", {"source": sb, "target": tb, "labels": lb, "constraint": cb},
                 expected_b),
            ):
                document = registry.get(tenant).handle_query(spec)
                assert document["answer"] == expected, (
                    f"seed={seed} tenant={tenant} {spec}: "
                    f"service={document['answer']} naive={expected}"
                )
                repeat = registry.get(tenant).handle_query(spec)
                assert repeat["answer"] == expected
                assert repeat["cached"] or repeat["trivial"]

        # Isolation: each tenant cached only its own results and counted
        # only its own traffic.
        service_a, service_b = registry.get("a"), registry.get("b")
        assert service_a.results is not service_b.results
        assert service_a.constraints is not service_b.constraints
        total = QUERIES_PER_GRAPH * 2
        assert service_a.stats.snapshot()["queries"]["total"] == total
        assert service_b.stats.snapshot()["queries"]["total"] == total

    def test_same_query_text_different_graphs_different_answers(self):
        # The sharpest cross-tenant check: one identical spec, two graphs
        # engineered so the answers differ; the shared process must not
        # leak one tenant's cached answer to the other.
        from tests.helpers import graph_from_edges

        graph_yes = graph_from_edges(
            [("s", "go", "m"), ("m", "go", "t"), ("m", "mark", "m")], name="yes"
        )
        graph_no = graph_from_edges(
            [("s", "go", "t"), ("x", "mark", "x")], name="no", vertices=["m"]
        )
        registry = TenantRegistry(default_tenant="yes")
        registry.add("yes", QueryService(graph_yes, seed=0))
        registry.add("no", QueryService(graph_no, seed=0))
        spec = {
            "source": "s", "target": "t", "labels": ["go"],
            "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
        }
        assert registry.get("yes").handle_query(spec)["answer"] is True
        assert registry.get("no").handle_query(spec)["answer"] is False
        # Repeat in the opposite order, now against warm caches.
        assert registry.get("no").handle_query(spec)["answer"] is False
        assert registry.get("yes").handle_query(spec)["answer"] is True
