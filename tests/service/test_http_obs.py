"""HTTP observability routes: /metrics, /debug/slow, ?trace=1."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro._version import __version__
from repro.datasets.toy import figure3_graph
from repro.index.local_index import build_local_index
from repro.obs.prometheus import parse_prometheus_text
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.service.registry import TenantRegistry

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
LABELS = ["likes", "follows"]
SPEC = {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}


@pytest.fixture()
def service():
    graph = figure3_graph()
    return QueryService(
        graph, build_local_index(graph, k=2, rng=0), seed=0, slow_ms=0.0
    )


@pytest.fixture()
def base_url(service):
    server = create_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


def get_json(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_text(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode()


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestMetricsRoute:
    def test_metrics_is_valid_prometheus_text(self, base_url):
        post(f"{base_url}/query", SPEC)
        post(f"{base_url}/query", SPEC)
        status, headers, text = get_text(f"{base_url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        samples = parse_prometheus_text(text)   # strict: raises on bad shape
        tenant = (("tenant", "default"),)
        assert samples[("repro_build_info", (("version", __version__),))] == 1
        assert samples[("repro_queries_total", tenant)] == 2.0
        assert samples[("repro_queries_cached_total", tenant)] == 1.0
        assert samples[("repro_tenants", ())] == 1.0
        assert samples[("repro_tenants_loaded", ())] == 1.0

    def test_every_stats_counter_has_a_sample(self, base_url):
        post(f"{base_url}/query", SPEC)
        _, stats = get_json(f"{base_url}/stats")
        _, _, text = get_text(f"{base_url}/metrics")
        samples = parse_prometheus_text(text)
        names = {name for name, _ in samples}
        # Each /stats service counter group surfaces as a family.
        for family in (
            "repro_queries_total", "repro_queries_executed_total",
            "repro_queries_cached_total", "repro_queries_trivial_total",
            "repro_queries_true_answers_total", "repro_batches_total",
            "repro_batch_queries_total", "repro_update_batches_total",
            "repro_uptime_seconds", "repro_started_at_seconds",
            "repro_cache_hits_total", "repro_cache_size",
            "repro_graph_vertices", "repro_index_loaded",
            "repro_epoch_id", "repro_epoch_age_seconds",
            "repro_slow_queries_seen_total", "repro_slow_queries_kept",
            "repro_request_latency_seconds_bucket",
            "repro_request_latency_seconds_sum",
            "repro_request_latency_seconds_count",
        ):
            assert family in names, family
        # And the numbers agree with the JSON document.
        tenant = (("tenant", "default"),)
        assert samples[("repro_queries_total", tenant)] == (
            stats["service"]["queries"]["total"]
        )
        assert samples[("repro_epoch_id", tenant)] == stats["epoch"]["epoch_id"]

    def test_tenant_metrics_route(self, base_url):
        post(f"{base_url}/query", SPEC)
        status, headers, text = get_text(f"{base_url}/t/default/metrics")
        assert status == 200
        samples = parse_prometheus_text(text)
        assert samples[
            ("repro_queries_total", (("tenant", "default"),))
        ] == 1.0
        # Single-tenant view: no registry-level tenant gauges.
        assert ("repro_tenants", ()) not in samples

    def test_unknown_tenant_metrics_404(self, base_url):
        status, body = get_json(f"{base_url}/t/ghost/metrics")
        assert status == 404
        assert body["error"]["type"] == "unknown-tenant"

    def test_unloaded_tenant_contributes_nothing(self, service, tmp_path):
        from repro.graph.io import dump_tsv

        graph_path = tmp_path / "lazy.tsv"
        dump_tsv(figure3_graph(), graph_path)
        registry = TenantRegistry.for_service(service)
        registry.register_files("lazy", graph_path)
        text = registry.metrics_text()
        samples = parse_prometheus_text(text)
        assert samples[("repro_tenants", ())] == 2.0
        assert samples[("repro_tenants_loaded", ())] == 1.0
        assert ("repro_queries_total", (("tenant", "lazy"),)) not in samples
        # The scrape itself must not have warmed the tenant.
        assert samples_after_scrape_unloaded(registry)


def samples_after_scrape_unloaded(registry) -> bool:
    return registry.describe()["tenants"]["lazy"]["loaded"] is False


class TestDebugSlowRoute:
    def test_debug_slow_shapes(self, base_url):
        post(f"{base_url}/query?trace=1", SPEC)
        status, document = get_json(f"{base_url}/debug/slow")
        assert status == 200
        tenant_doc = document["tenants"]["default"]
        assert tenant_doc["loaded"] is True
        assert tenant_doc["summary"]["kept"] == 1
        entry = tenant_doc["entries"][0]
        assert entry["query"]["source"] == "v0"
        assert entry["trace"]["trace_id"] == entry["trace_id"]

        status, single = get_json(f"{base_url}/t/default/debug/slow")
        assert status == 200
        assert single["summary"] == tenant_doc["summary"]
        assert len(single["entries"]) == 1

    def test_slow_summary_in_stats(self, base_url):
        post(f"{base_url}/query", SPEC)
        _, stats = get_json(f"{base_url}/stats")
        assert stats["slow_queries"]["kept"] == 1
        assert stats["slow_queries"]["threshold_ms"] == 0.0


class TestTraceQueryString:
    def test_query_trace_echo(self, base_url):
        status, document = post(f"{base_url}/query?trace=1", SPEC)
        assert status == 200
        trace = document["trace"]
        assert trace["name"] == "query"
        child_names = [child["name"] for child in trace["children"]]
        assert "plan" in child_names and "execute" in child_names

    def test_batch_trace_echo(self, base_url):
        status, document = post(
            f"{base_url}/batch?trace=1", {"queries": [SPEC]}
        )
        assert status == 200
        assert document["trace"]["name"] == "batch"

    def test_trace_zero_means_off(self, base_url):
        _, document = post(f"{base_url}/query?trace=0", SPEC)
        assert "trace" not in document

    def test_tenant_route_accepts_trace(self, base_url):
        status, document = post(f"{base_url}/t/default/query?trace=1", SPEC)
        assert status == 200
        assert document["trace"]["name"] == "query"

    def test_health_carries_build_info(self, base_url):
        _, document = get_json(f"{base_url}/healthz")
        assert document["version"] == __version__
        assert document["uptime_seconds"] >= 0.0
        assert document["started_at"] > 0
