"""Result-cache + stats persistence: save_snapshot / load_snapshot."""

from __future__ import annotations

import json

import pytest

from repro.core.result import QueryResult
from repro.exceptions import ServiceConfigError
from repro.service.app import QueryService
from repro.service.cache import ResultCache
from tests.helpers import graph_from_edges


def make_graph(name="snap"):
    return graph_from_edges(
        [("a", "l", "b"), ("b", "l", "c"), ("b", "m", "b")], name=name
    )


CONSTRAINT = "SELECT ?x WHERE { ?x <m> ?y . }"


class TestResultCacheExport:
    def test_export_import_preserves_values_and_lru_order(self):
        cache = ResultCache(max_size=8)
        for position in range(3):
            cache.put(("k", position), position * 10)
        cache.get(("k", 0))  # refresh: 0 becomes most recent
        exported = cache.export_entries()
        assert [key for key, _ in exported] == [("k", 1), ("k", 2), ("k", 0)]
        warmed = ResultCache(max_size=8)
        assert warmed.import_entries(exported) == 3
        assert warmed.export_entries() == exported

    def test_import_reports_actual_retention_not_input_length(self):
        disabled = ResultCache(max_size=0)
        assert disabled.import_entries([("a", 1), ("b", 2)]) == 0
        tiny = ResultCache(max_size=2)
        assert tiny.import_entries([("a", 1), ("b", 2), ("c", 3)]) == 2

    def test_export_skips_expired_entries(self):
        clock = [0.0]
        cache = ResultCache(max_size=8, ttl_seconds=5.0, clock=lambda: clock[0])
        cache.put("old", 1)
        clock[0] = 3.0
        cache.put("fresh", 2)
        clock[0] = 6.0  # "old" expired, "fresh" still alive
        assert [key for key, _ in cache.export_entries()] == ["fresh"]


class TestServiceSnapshot:
    def test_roundtrip_warms_cache_and_stats(self, tmp_path):
        path = tmp_path / "service.snapshot.json"
        first = QueryService(make_graph(), seed=0)
        try:
            result, meta = first.query("a", "c", ["l"], CONSTRAINT)
            assert result.answer is True and not meta["cached"]
            first.query("a", "a", ["zzz"], CONSTRAINT)  # trivial: not cached
            size = first.save_snapshot(path)
            assert size > 0
        finally:
            first.close()

        second = QueryService(make_graph(), seed=0)
        try:
            warmed = second.load_snapshot(path)
            assert warmed["results"] == 1
            result, meta = second.query("a", "c", ["l"], CONSTRAINT)
            assert result.answer is True
            assert meta["cached"]  # no search ran
            snapshot = second.stats.snapshot()
            # 2 restored + 1 cached-hit just answered.
            assert snapshot["queries"]["total"] == 3
            assert snapshot["queries"]["cached"] == 1
        finally:
            second.close()

    def test_snapshot_file_is_valid_json_with_graph_identity(self, tmp_path):
        path = tmp_path / "snap.json"
        service = QueryService(make_graph(), seed=0)
        try:
            service.query("a", "b", ["l"], CONSTRAINT)
            service.save_snapshot(path)
        finally:
            service.close()
        document = json.loads(path.read_text())
        assert document["format_version"] == 2
        assert document["graph"]["name"] == "snap"
        assert document["graph"]["vertices"] == 3
        assert document["graph"]["epoch"] == 0
        assert isinstance(document["graph"]["fingerprint"], str)
        entry = document["results"][0]
        assert entry["key"][0] == "a"
        restored = QueryResult(**entry["result"])
        assert restored.answer is True

    def test_mismatched_graph_refused(self, tmp_path):
        path = tmp_path / "snap.json"
        service = QueryService(make_graph(), seed=0)
        try:
            service.query("a", "b", ["l"], CONSTRAINT)
            service.save_snapshot(path)
        finally:
            service.close()
        other = QueryService(
            graph_from_edges([("x", "l", "y")], name="other"), seed=0
        )
        try:
            with pytest.raises(ServiceConfigError):
                other.load_snapshot(path)
        finally:
            other.close()

    def test_same_size_different_graph_refused(self, tmp_path):
        # The staleness regression: identical name and (|V|, |E|) but a
        # different adjacency.  The size-only identity check accepted
        # this file and silently served the other graph's answers; the
        # content fingerprint must refuse it.
        path = tmp_path / "snap.json"
        service = QueryService(make_graph(), seed=0)
        try:
            service.query("a", "b", ["l"], CONSTRAINT)
            service.save_snapshot(path)
        finally:
            service.close()
        imposter = graph_from_edges(
            [("a", "l", "b"), ("b", "l", "c"), ("a", "m", "a")], name="snap"
        )
        other = QueryService(imposter, seed=0)
        try:
            ours, theirs = other.graph, service.graph
            assert (ours.name, ours.num_vertices, ours.num_edges) == (
                theirs.name, theirs.num_vertices, theirs.num_edges
            )
            with pytest.raises(ServiceConfigError):
                other.load_snapshot(path)
        finally:
            other.close()

    def test_verified_ancestor_snapshot_restores_stats_only(self, tmp_path):
        # The warm-cache / WAL ordering bug: a snapshot saved at epoch N
        # used to be refused outright after a restart replayed the WAL
        # to epoch M > N — or worse, before the fingerprint identity
        # check existed, warmed with stale pre-tip entries.  With the
        # log's epoch→fingerprint history the load now recognises the
        # file as a *verified ancestor*: stats carry over, every result
        # entry is dropped as pre-tip.
        path = tmp_path / "snap.json"
        first = QueryService(make_graph(), seed=0)
        try:
            first.query("a", "c", ["l"], CONSTRAINT)
            history = {0: first.epoch.fingerprint}
            first.save_snapshot(path)  # saved at epoch 0
        finally:
            first.close()
        replayed = QueryService(make_graph(), seed=0)
        try:
            replayed.apply_updates([("c", "l", "d")])  # now at epoch 1
            history[1] = replayed.epoch.fingerprint
            warmed = replayed.load_snapshot(path, epoch_fingerprints=history)
            assert warmed == {"results": 0, "stale_results": 1}
            _, meta = replayed.query("a", "c", ["l"], CONSTRAINT)
            assert not meta["cached"]  # the stale entry was not warmed
            assert replayed.stats.snapshot()["queries"]["total"] >= 2
        finally:
            replayed.close()

    def test_unrecognised_ancestor_still_refused(self, tmp_path):
        # Same shape of mismatch, but the fingerprint history does not
        # vouch for the file (e.g. a snapshot from a different lineage).
        path = tmp_path / "snap.json"
        first = QueryService(make_graph(), seed=0)
        try:
            first.query("a", "c", ["l"], CONSTRAINT)
            first.save_snapshot(path)
        finally:
            first.close()
        replayed = QueryService(make_graph(), seed=0)
        try:
            replayed.apply_updates([("c", "l", "d")])
            history = {0: "0" * 16, 1: replayed.epoch.fingerprint}
            with pytest.raises(ServiceConfigError):
                replayed.load_snapshot(path, epoch_fingerprints=history)
            with pytest.raises(ServiceConfigError):
                replayed.load_snapshot(path)  # no history at all
        finally:
            replayed.close()

    def test_missing_or_corrupt_file_refused(self, tmp_path):
        service = QueryService(make_graph(), seed=0)
        try:
            with pytest.raises(ServiceConfigError):
                service.load_snapshot(tmp_path / "nope.json")
            bad = tmp_path / "bad.json"
            bad.write_text("{not json")
            with pytest.raises(ServiceConfigError):
                service.load_snapshot(bad)
            wrong_version = tmp_path / "v9.json"
            wrong_version.write_text(json.dumps({"format_version": 9}))
            with pytest.raises(ServiceConfigError):
                service.load_snapshot(wrong_version)
        finally:
            service.close()


class TestServeWarmCacheFlag:
    def test_serve_parser_accepts_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--graph", "g.tsv", "--shards", "2",
             "--warm-cache", "warm.json"]
        )
        assert args.shards == 2
        assert args.warm_cache == "warm.json"

    def test_shards_without_graph_rejected(self, capsys):
        from repro.cli import main

        code = main(["serve", "--tenant", "t=g.tsv", "--shards", "2"])
        assert code == 2
        assert "--shards requires --graph" in capsys.readouterr().err
