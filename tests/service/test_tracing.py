"""Service-layer tracing: span trees, sampling, the flight recorder."""

from __future__ import annotations

import pytest

from repro.datasets.toy import figure3_graph
from repro.index.local_index import build_local_index
from repro.obs.trace import current_trace
from repro.service.app import QueryService

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
LABELS = ["likes", "follows"]
SPEC = {"source": "v0", "target": "v4", "labels": LABELS, "constraint": S0}


@pytest.fixture()
def graph():
    return figure3_graph()


@pytest.fixture()
def service(graph):
    return QueryService(
        graph, build_local_index(graph, k=2, rng=0), seed=0, slow_ms=0.0
    )


def _names(node: dict) -> list[str]:
    return [child["name"] for child in node["children"]]


def _child(node: dict, name: str) -> dict:
    for child in node["children"]:
        if child["name"] == name:
            return child
    raise AssertionError(f"no {name!r} span under {node['name']!r}")


class TestQueryTrace:
    def test_trace_echoed_when_requested(self, service):
        document = service.handle_query(SPEC, trace=True)
        trace = document["trace"]
        assert trace["name"] == "query"
        assert trace["sampled"] is False
        assert trace["seconds"] >= 0.0
        assert _names(trace) == ["plan", "result-cache", "execute"]
        plan = _child(trace, "plan")
        assert plan["attrs"]["algorithm"] == "ins"
        assert plan["attrs"]["trivial"] is False
        assert _child(trace, "result-cache")["attrs"] == {"hit": False}
        execute = _child(trace, "execute")
        assert execute["attrs"]["answer"] is True
        assert execute["attrs"]["passed_vertices"] >= 1
        # The candidate cache probe happens inside the evaluation.
        cache = _child(execute, "candidate-cache")
        assert cache["attrs"]["hit"] is False
        assert cache["attrs"]["candidates"] >= 1

    def test_no_trace_key_by_default(self, service):
        assert "trace" not in service.handle_query(SPEC)

    def test_source_field(self, service):
        first = service.handle_query(SPEC)
        assert first["source"] == "evaluated"
        second = service.handle_query(SPEC)
        assert second["source"] == "result-cache"
        trivial = service.handle_query({**SPEC, "target": "missing"})
        assert trivial["source"] == "planner"

    def test_cache_hit_trace_has_no_execute_span(self, service):
        service.handle_query(SPEC)
        document = service.handle_query(SPEC, trace=True)
        trace = document["trace"]
        assert _names(trace) == ["plan", "result-cache"]
        assert _child(trace, "result-cache")["attrs"] == {"hit": True}
        assert trace["attrs"]["source"] == "result-cache"

    def test_tracing_leaves_no_active_context(self, service):
        service.handle_query(SPEC, trace=True)
        assert current_trace() is None


class TestBatchTrace:
    def test_batch_trace_has_per_query_spans(self, service):
        payload = {"queries": [SPEC, {**SPEC, "target": "v3"}]}
        document = service.handle_batch(payload, trace=True)
        trace = document["trace"]
        assert trace["name"] == "batch"
        assert "plan-batch" in _names(trace)
        query_spans = [c for c in trace["children"] if c["name"] == "query"]
        assert len(query_spans) == 2
        assert sorted(span["attrs"]["index"] for span in query_spans) == [0, 1]
        for span in query_spans:
            assert "execute" in [c["name"] for c in span["children"]]
        executor = _child(trace, "executor")
        assert executor["attrs"]["items"] == 2

    def test_untraced_batch_unchanged(self, service):
        document = service.handle_batch({"queries": [SPEC]})
        assert "trace" not in document
        assert document["results"][0]["source"] == "evaluated"


class TestUpdateTrace:
    def test_update_trace_stages(self, graph):
        service = QueryService(
            graph, build_local_index(graph, k=2, rng=0), seed=0
        )
        payload = {"edges": [
            {"source": "v0", "label": "likes", "target": "new-vertex"},
        ]}
        summary = service.handle_updates(payload, trace=True)
        trace = summary["trace"]
        assert trace["name"] == "updates"
        names = _names(trace)
        for stage in ("copy", "apply", "freeze", "index-repair", "publish"):
            assert stage in names, stage
        apply_span = _child(trace, "apply")
        assert apply_span["attrs"]["added"] == 1
        assert apply_span["attrs"]["vertices_added"] == 1
        publish = _child(trace, "publish")
        assert publish["attrs"]["epoch"] == summary["epoch"]


class TestSampling:
    def test_sampled_trace_feeds_flight_recorder_not_client(self, graph):
        service = QueryService(
            graph, seed=0, trace_sample=1.0, slow_ms=0.0
        )
        document = service.handle_query(SPEC)
        assert "trace" not in document          # sampled, never echoed
        entries = service.flight.snapshot()
        assert len(entries) == 1
        assert entries[0]["trace"] is not None
        assert entries[0]["trace_id"]
        assert entries[0]["trace"]["sampled"] is True

    def test_zero_rate_never_traces(self, graph):
        service = QueryService(graph, seed=0, trace_sample=0.0, slow_ms=0.0)
        for _ in range(5):
            service.handle_query(SPEC)
        assert all(
            entry["trace"] is None for entry in service.flight.snapshot()
        )

    def test_bad_sample_rate_is_config_error(self, graph):
        from repro.exceptions import ServiceConfigError

        with pytest.raises(ServiceConfigError, match="sample rate"):
            QueryService(graph, seed=0, trace_sample=1.5)

    def test_bad_slow_config_is_config_error(self, graph):
        from repro.exceptions import ServiceConfigError

        with pytest.raises(ServiceConfigError, match="max_entries"):
            QueryService(graph, seed=0, slow_log_size=0)


class TestFlightRecorderIntegration:
    def test_untraced_slow_query_recorded_without_tree(self, service):
        service.handle_query(SPEC)
        entries = service.flight.snapshot()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["query"]["source"] == "v0"
        assert entry["query"]["target"] == "v4"
        assert entry["algorithm"] == "INS"
        assert entry["answer"] is True
        assert entry["trace"] is None and entry["trace_id"] is None
        assert entry["meta"]["source"] == "evaluated"

    def test_threshold_filters(self, graph):
        service = QueryService(graph, seed=0, slow_ms=1e6)
        service.handle_query(SPEC)
        assert service.flight.snapshot() == []
        # `interested` pre-filters before the entry dict is even built,
        # so sub-threshold traffic never reaches the recorder's lock.
        assert service.flight.summary()["seen"] == 0

    def test_entries_survive_epoch_swap(self, graph):
        service = QueryService(graph, seed=0, slow_ms=0.0)
        service.handle_query(SPEC)
        before = service.flight.snapshot()
        assert len(before) == 1
        epoch_before = service.epoch.epoch_id
        service.handle_updates({"edges": [
            {"source": "v0", "label": "likes", "target": "vZ"},
        ]})
        assert service.epoch.epoch_id == epoch_before + 1
        after = service.flight.snapshot()
        assert after == before                  # the swap kept every entry
        assert after[0]["meta"]["epoch"] == epoch_before

    def test_summary_in_stats_snapshot(self, service):
        service.handle_query(SPEC)
        document = service.stats_snapshot()
        slow = document["slow_queries"]
        assert slow["kept"] == 1
        assert slow["seen"] == 1
        assert document["config"]["slow_ms"] == 0.0
        assert document["config"]["slow_log_size"] == 16
        assert document["config"]["trace_sample"] == 0.0


class TestHealthBuildInfo:
    def test_health_carries_version_and_uptime(self, service):
        from repro._version import __version__

        document = service.health()
        assert document["version"] == __version__
        assert document["started_at"] > 0
        assert document["uptime_seconds"] >= 0.0
