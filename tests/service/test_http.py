"""Integration tests: the service over real HTTP on an ephemeral port.

These exercise the acceptance criteria end to end: /query, /batch,
/stats and /healthz over actual sockets, structured JSON errors with
4xx statuses, cache hits visible in /stats, a 64-query batch identical
to serial execution, a threaded stress run identical to serial
execution, and `python -m repro serve --port 0` starting from the CLI.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.datasets.toy import figure3_graph
from repro.graph.io import dump_tsv
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.session import LSCRSession

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
S1 = "SELECT ?x WHERE { ?x <likes> ?y . }"
LABELS = ["likes", "follows"]


@pytest.fixture()
def service():
    graph = figure3_graph()
    return QueryService(graph, build_local_index(graph, k=2, rng=0), seed=0)


@pytest.fixture()
def base_url(service):
    server = create_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_post(url, payload, raw_body=None):
    body = raw_body if raw_body is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def spec(source, target, labels=LABELS, constraint=S0, **extra):
    return {"source": source, "target": target, "labels": labels,
            "constraint": constraint, **extra}


class TestEndpoints:
    def test_healthz(self, base_url):
        status, document = http_get(f"{base_url}/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["index_loaded"] is True

    def test_query_true_and_false(self, base_url):
        status, document = http_post(f"{base_url}/query", spec("v0", "v4"))
        assert status == 200
        assert document["answer"] is True
        assert document["algorithm"] == "INS"
        status, document = http_post(f"{base_url}/query", spec("v0", "v3"))
        assert status == 200
        assert document["answer"] is False

    def test_trivial_answer_over_http(self, base_url):
        status, document = http_post(f"{base_url}/query", spec("v0", "no-such"))
        assert status == 200
        assert document["answer"] is False
        assert document["trivial"] is True

    def test_cached_repeat_visible_in_stats(self, base_url):
        http_post(f"{base_url}/query", spec("v0", "v4"))
        status, document = http_post(f"{base_url}/query", spec("v0", "v4"))
        assert status == 200
        assert document["cached"] is True
        status, stats = http_get(f"{base_url}/stats")
        assert status == 200
        assert stats["service"]["queries"]["cached"] >= 1
        assert stats["result_cache"]["hits"] >= 1

    def test_batch_64_matches_serial(self, base_url, service):
        # The acceptance batch: 64 mixed queries, answers must come back
        # in input order and agree with serial execution on one session.
        pairs = [("v0", "v4"), ("v0", "v3"), ("v3", "v4"), ("v1", "v4"),
                 ("v0", "v0"), ("v2", "v2"), ("v4", "v0"), ("v1", "v3")] * 8
        payload = {"queries": [spec(s, t) for s, t in pairs], "use_cache": False}
        status, document = http_post(f"{base_url}/batch", payload)
        assert status == 200
        assert document["count"] == 64
        session = LSCRSession(service.graph, "ins", index=service.index, seed=0)
        expected = [
            session.answer(session.make_query(s, t, LABELS, S0)).answer
            for s, t in pairs
        ]
        assert [entry["answer"] for entry in document["results"]] == expected

    def test_stats_shape(self, base_url):
        status, stats = http_get(f"{base_url}/stats")
        assert status == 200
        assert {"service", "result_cache", "constraint_cache", "graph",
                "index", "config"} <= set(stats)
        assert stats["service"]["uptime_seconds"] >= 0


class TestErrors:
    def test_missing_fields_400(self, base_url):
        status, document = http_post(f"{base_url}/query", {"source": "v0"})
        assert status == 400
        assert document["error"]["type"] == "bad-request"
        assert "missing field" in document["error"]["message"]

    def test_invalid_json_400(self, base_url):
        status, document = http_post(
            f"{base_url}/query", None, raw_body=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in document["error"]["message"]

    def test_empty_body_400(self, base_url):
        status, document = http_post(f"{base_url}/query", None, raw_body=b"")
        assert status == 400
        assert "empty" in document["error"]["message"]

    def test_bad_sparql_400(self, base_url):
        status, document = http_post(
            f"{base_url}/query", spec("v0", "v4", constraint="SELECT garbage")
        )
        assert status == 400

    def test_unknown_algorithm_400(self, base_url):
        status, document = http_post(
            f"{base_url}/query", spec("v0", "v4", algorithm="dijkstra")
        )
        assert status == 400
        assert "unknown algorithm" in document["error"]["message"]

    def test_unknown_endpoint_404(self, base_url):
        status, document = http_get(f"{base_url}/nope")
        assert status == 404
        assert document["error"]["type"] == "not-found"
        status, document = http_post(f"{base_url}/nope", {})
        assert status == 404

    def test_errors_counted_in_stats(self, base_url):
        http_post(f"{base_url}/query", {"source": "v0"})
        _, stats = http_get(f"{base_url}/stats")
        assert stats["service"]["errors"].get("bad-request", 0) >= 1


class TestConcurrency:
    def test_threaded_stress_matches_serial(self, base_url, service):
        # >= 8 workers x >= 50 mixed queries (two constraints, varying
        # label sets and endpoints), every HTTP answer must equal the
        # serial in-process answer for the same query.
        vertices = ["v0", "v1", "v2", "v3", "v4"]
        cases = []
        for i in range(64):
            source = vertices[i % 5]
            target = vertices[(i * 3 + 1) % 5]
            labels = (LABELS, ["likes", "follows", "friendOf"], ["hates"])[i % 3]
            constraint = (S0, S1)[i % 2]
            cases.append((source, target, list(labels), constraint))

        session = LSCRSession(service.graph, "ins", index=service.index, seed=0)
        expected = [
            session.answer(session.make_query(s, t, labels, c)).answer
            for s, t, labels, c in cases
        ]

        def ask(case):
            source, target, labels, constraint = case
            status, document = http_post(
                f"{base_url}/query",
                spec(source, target, labels, constraint, use_cache=False),
            )
            assert status == 200
            return document["answer"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(pool.map(ask, cases))
        assert answers == expected

        _, stats = http_get(f"{base_url}/stats")
        assert stats["service"]["queries"]["total"] >= 64


class TestCliServe:
    def test_serve_subprocess_ephemeral_port(self, tmp_path):
        graph_path = tmp_path / "g0.tsv"
        index_path = tmp_path / "g0.index.json"
        dump_tsv(figure3_graph(), graph_path)

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--graph", str(graph_path), "--index", str(index_path),
             "--port", "0", "--k", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            port = self._await_ready_line(process)
            status, document = http_get(f"http://127.0.0.1:{port}/healthz")
            assert status == 200
            assert document["status"] == "ok"
            status, document = http_post(
                f"http://127.0.0.1:{port}/query", spec("v0", "v4")
            )
            assert status == 200
            assert document["answer"] is True
            assert index_path.is_file()        # built and persisted at startup
        finally:
            process.terminate()
            process.wait(timeout=10)

    @staticmethod
    def _await_ready_line(process, timeout=30.0):
        """Read stdout until the 'listening on' line; return the port."""
        lines: list[str] = []
        found: list[int] = []

        def reader():
            for line in process.stdout:
                lines.append(line)
                if "listening on" in line:
                    found.append(int(line.rsplit(":", 1)[1]))
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if found:
                return found[0]
            if process.poll() is not None:
                break
            time.sleep(0.05)
        raise AssertionError(
            f"server never became ready; exit={process.poll()} output={lines!r}"
        )
