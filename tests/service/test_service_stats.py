"""Tests for service telemetry and the ResultAggregate extensions."""

import threading

from repro.core.result import QueryResult, ResultAggregate
from repro.service.stats import ServiceStats


def result(answer=True, algorithm="UIS", seconds=0.5, passed=10):
    return QueryResult(
        answer=answer, algorithm=algorithm, seconds=seconds, passed_vertices=passed
    )


class TestResultAggregateExtensions:
    def test_merge_folds_counters(self):
        left = ResultAggregate()
        right = ResultAggregate()
        left.add(result(answer=True, seconds=1.0, passed=4))
        right.add(result(answer=False, seconds=3.0, passed=8))
        right.add(result(answer=True, seconds=2.0, passed=0))
        left.merge(right)
        assert left.count == 3
        assert left.total_seconds == 6.0
        assert left.total_passed == 12
        assert left.true_answers == 2
        assert left.algorithm == "UIS"

    def test_merge_into_empty_takes_algorithm(self):
        empty = ResultAggregate()
        other = ResultAggregate()
        other.add(result(algorithm="INS"))
        empty.merge(other)
        assert empty.algorithm == "INS"
        assert empty.count == 1

    def test_merge_keeps_results_when_requested(self):
        keeper = ResultAggregate(keep_results=True)
        other = ResultAggregate(keep_results=True)
        other.add(result())
        keeper.merge(other)
        assert len(keeper.results) == 1

    def test_as_dict_is_json_ready(self):
        aggregate = ResultAggregate()
        aggregate.add(result(seconds=0.002, passed=7))
        document = aggregate.as_dict()
        assert document["count"] == 1
        assert document["mean_milliseconds"] == 2.0
        assert document["mean_passed_vertices"] == 7.0


class TestServiceStats:
    def test_counters_split_by_outcome(self):
        stats = ServiceStats()
        stats.record_query(result(answer=True))
        stats.record_query(result(answer=False), cached=True)
        stats.record_query(result(answer=False), trivial=True)
        stats.record_query(result(answer=True, algorithm="INS"), batch=True)
        snapshot = stats.snapshot()
        assert snapshot["queries"]["total"] == 4
        assert snapshot["queries"]["executed"] == 2
        assert snapshot["queries"]["cached"] == 1
        assert snapshot["queries"]["trivial"] == 1
        assert snapshot["queries"]["true_answers"] == 2
        assert snapshot["batches"]["queries"] == 1

    def test_aggregates_track_work_only(self):
        stats = ServiceStats()
        stats.record_query(result(algorithm="UIS"))
        stats.record_query(result(algorithm="UIS"), cached=True)
        stats.record_query(result(algorithm="INS"))
        snapshot = stats.snapshot()
        assert snapshot["algorithms"]["UIS"]["count"] == 1       # cached not folded
        assert snapshot["algorithms"]["INS"]["count"] == 1

    def test_errors_and_batches(self):
        stats = ServiceStats()
        stats.record_batch()
        stats.record_error("bad-request")
        stats.record_error("bad-request")
        snapshot = stats.snapshot()
        assert snapshot["batches"]["requests"] == 1
        assert snapshot["errors"] == {"bad-request": 2}

    def test_uptime_advances(self):
        ticks = iter([100.0, 100.0, 107.5])
        stats = ServiceStats(clock=lambda: next(ticks))
        assert stats.uptime_seconds == 0.0
        assert stats.snapshot()["uptime_seconds"] == 7.5

    def test_thread_safety_totals(self):
        stats = ServiceStats()

        def worker():
            for _ in range(500):
                stats.record_query(result())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.snapshot()
        assert snapshot["queries"]["total"] == 4000
        assert snapshot["algorithms"]["UIS"]["count"] == 4000
