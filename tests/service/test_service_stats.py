"""Tests for service telemetry and the ResultAggregate extensions."""

import threading

import pytest

from repro.core.result import QueryResult, ResultAggregate
from repro.service.stats import ServiceStats


def result(answer=True, algorithm="UIS", seconds=0.5, passed=10):
    return QueryResult(
        answer=answer, algorithm=algorithm, seconds=seconds, passed_vertices=passed
    )


class TestResultAggregateExtensions:
    def test_merge_folds_counters(self):
        left = ResultAggregate()
        right = ResultAggregate()
        left.add(result(answer=True, seconds=1.0, passed=4))
        right.add(result(answer=False, seconds=3.0, passed=8))
        right.add(result(answer=True, seconds=2.0, passed=0))
        left.merge(right)
        assert left.count == 3
        assert left.total_seconds == 6.0
        assert left.total_passed == 12
        assert left.true_answers == 2
        assert left.algorithm == "UIS"

    def test_merge_into_empty_takes_algorithm(self):
        empty = ResultAggregate()
        other = ResultAggregate()
        other.add(result(algorithm="INS"))
        empty.merge(other)
        assert empty.algorithm == "INS"
        assert empty.count == 1

    def test_merge_keeps_results_when_requested(self):
        keeper = ResultAggregate(keep_results=True)
        other = ResultAggregate(keep_results=True)
        other.add(result())
        keeper.merge(other)
        assert len(keeper.results) == 1

    def test_as_dict_is_json_ready(self):
        aggregate = ResultAggregate()
        aggregate.add(result(seconds=0.002, passed=7))
        document = aggregate.as_dict()
        assert document["count"] == 1
        assert document["mean_milliseconds"] == 2.0
        assert document["mean_passed_vertices"] == 7.0


class TestServiceStats:
    def test_counters_split_by_outcome(self):
        stats = ServiceStats()
        stats.record_query(result(answer=True))
        stats.record_query(result(answer=False), cached=True)
        stats.record_query(result(answer=False), trivial=True)
        stats.record_query(result(answer=True, algorithm="INS"), batch=True)
        snapshot = stats.snapshot()
        assert snapshot["queries"]["total"] == 4
        assert snapshot["queries"]["executed"] == 2
        assert snapshot["queries"]["cached"] == 1
        assert snapshot["queries"]["trivial"] == 1
        assert snapshot["queries"]["true_answers"] == 2
        assert snapshot["batches"]["queries"] == 1

    def test_aggregates_track_work_only(self):
        stats = ServiceStats()
        stats.record_query(result(algorithm="UIS"))
        stats.record_query(result(algorithm="UIS"), cached=True)
        stats.record_query(result(algorithm="INS"))
        snapshot = stats.snapshot()
        assert snapshot["algorithms"]["UIS"]["count"] == 1       # cached not folded
        assert snapshot["algorithms"]["INS"]["count"] == 1

    def test_errors_and_batches(self):
        stats = ServiceStats()
        stats.record_batch()
        stats.record_error("bad-request")
        stats.record_error("bad-request")
        snapshot = stats.snapshot()
        assert snapshot["batches"]["requests"] == 1
        assert snapshot["errors"] == {"bad-request": 2}

    def test_uptime_advances(self):
        ticks = iter([100.0, 100.0, 107.5])
        stats = ServiceStats(clock=lambda: next(ticks))
        assert stats.uptime_seconds == 0.0
        assert stats.snapshot()["uptime_seconds"] == 7.5

    def test_thread_safety_totals(self):
        stats = ServiceStats()

        def worker():
            for _ in range(500):
                stats.record_query(result())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.snapshot()
        assert snapshot["queries"]["total"] == 4000
        assert snapshot["algorithms"]["UIS"]["count"] == 4000


class TestMergeSnapshots:
    def test_empty_iterable(self):
        from repro.service.stats import merge_snapshots

        merged = merge_snapshots([])
        assert merged["queries"]["total"] == 0
        assert merged["algorithms"] == {}
        assert merged["errors"] == {}

    def test_counters_sum_and_means_reweight(self):
        from repro.service.stats import merge_snapshots

        a, b = ServiceStats(), ServiceStats()
        a.record_query(result(algorithm="UIS", seconds=1.0, passed=10))
        a.record_query(result(algorithm="UIS", seconds=1.0, passed=10))
        a.record_query(result(algorithm="INS", seconds=0.5, passed=4))
        a.record_query(result(), cached=True)
        a.record_error("bad-request")
        b.record_query(result(algorithm="UIS", seconds=4.0, passed=40,
                              answer=False))
        b.record_batch()
        b.record_error("bad-request")
        b.record_error("unknown-tenant")

        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["queries"]["total"] == 5
        assert merged["queries"]["executed"] == 4
        assert merged["queries"]["cached"] == 1
        assert merged["batches"]["requests"] == 1
        assert merged["errors"] == {"bad-request": 2, "unknown-tenant": 1}
        uis = merged["algorithms"]["UIS"]
        assert uis["count"] == 3
        assert uis["true_answers"] == 2
        # Means are re-weighted over the merged population, not averaged
        # per tenant: (1 + 1 + 4) / 3 seconds, (10 + 10 + 40) / 3 vertices.
        assert uis["mean_milliseconds"] == pytest.approx(2000.0)
        assert uis["mean_passed_vertices"] == pytest.approx(20.0)
        assert merged["algorithms"]["INS"]["count"] == 1

    def test_merge_matches_single_ledger(self):
        # Splitting traffic across two ledgers and merging must agree
        # with recording everything on one ledger.
        from repro.service.stats import merge_snapshots

        combined, left, right = ServiceStats(), ServiceStats(), ServiceStats()
        for position in range(20):
            item = result(seconds=0.1 * position, passed=position,
                          answer=position % 3 == 0)
            combined.record_query(item)
            (left if position % 2 == 0 else right).record_query(item)
        merged = merge_snapshots([left.snapshot(), right.snapshot()])
        single = combined.snapshot()
        assert merged["queries"] == single["queries"]
        uis_merged = merged["algorithms"]["UIS"]
        uis_single = single["algorithms"]["UIS"]
        for key in ("count", "true_answers"):
            assert uis_merged[key] == uis_single[key]
        for key in ("total_seconds", "mean_milliseconds", "mean_passed_vertices"):
            assert uis_merged[key] == pytest.approx(uis_single[key])
