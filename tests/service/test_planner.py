"""Tests for query planning: canonical keys, trivial answers, algorithm pick."""

import pytest

from repro.datasets.toy import figure3_graph
from repro.exceptions import BadRequestError, ConstraintError, ServiceConfigError
from repro.service.cache import ConstraintCache
from repro.service.planner import TRIVIAL, QueryPlanner

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
S0_REFORMATTED = "SELECT ?x WHERE {\n  ?x <friendOf> v3 .   v3 <likes> ?y . }"
LABELS = ["likes", "follows"]


@pytest.fixture()
def planner():
    return QueryPlanner(figure3_graph(), ConstraintCache(), has_index=False)


@pytest.fixture()
def indexed_planner():
    return QueryPlanner(figure3_graph(), ConstraintCache(), has_index=True)


class TestCanonicalisation:
    def test_key_shape(self, planner):
        plan = planner.plan("v0", "v4", LABELS, S0)
        source, target, labels, constraint = plan.key
        assert (source, target) == ("v0", "v4")
        assert labels == ("follows", "likes")           # sorted
        assert constraint.startswith("SELECT")

    def test_label_order_irrelevant(self, planner):
        a = planner.plan("v0", "v4", ["likes", "follows"], S0)
        b = planner.plan("v0", "v4", ["follows", "likes"], S0)
        assert a.key == b.key

    def test_constraint_formatting_irrelevant(self, planner):
        a = planner.plan("v0", "v4", LABELS, S0)
        b = planner.plan("v0", "v4", LABELS, S0_REFORMATTED)
        assert a.key == b.key

    def test_different_queries_different_keys(self, planner):
        a = planner.plan("v0", "v4", LABELS, S0)
        b = planner.plan("v0", "v3", LABELS, S0)
        assert a.key != b.key


class TestTrivialAnswers:
    def test_unknown_vertex_is_false(self, planner):
        for source, target in (("nope", "v4"), ("v0", "nope")):
            plan = planner.plan(source, target, LABELS, S0)
            assert plan.is_trivial
            assert plan.trivial_answer is False
            assert plan.algorithm == TRIVIAL
            assert plan.query is None

    def test_absent_labels_are_false(self, planner):
        plan = planner.plan("v0", "v4", ["no-such-label"], S0)
        assert plan.trivial_answer is False
        assert "label" in plan.reason

    def test_unsatisfiable_constraint_is_false(self, planner):
        # A pattern over a label the graph lacks can match nothing, so
        # V(S, G) is empty and every query under it is false.
        plan = planner.plan(
            "v0", "v4", LABELS, "SELECT ?x WHERE { ?x <no-such-label> ?y . }"
        )
        assert plan.trivial_answer is False
        assert "constraint" in plan.reason

    def test_self_loop_satisfying_source_is_true(self, planner):
        # v2 satisfies S0 in Figure 3, so Q=(v2, v2, L, S0) answers via
        # the trivial path without any search.
        plan = planner.plan("v2", "v2", LABELS, S0)
        assert plan.trivial_answer is True

    def test_self_loop_non_satisfying_source_not_trivial(self, planner):
        # v0 does not satisfy S0: a cycle through a satisfying vertex
        # could still answer true, so the planner must not short-circuit.
        plan = planner.plan("v0", "v0", LABELS, S0)
        assert not plan.is_trivial

    def test_normal_query_not_trivial(self, planner):
        plan = planner.plan("v0", "v4", LABELS, S0)
        assert not plan.is_trivial
        assert plan.query is not None
        assert plan.trivial_answer is None


class TestAlgorithmChoice:
    def test_fallback_without_index(self, planner):
        plan = planner.plan("v0", "v4", LABELS, S0)
        assert plan.algorithm == "uis*"
        assert "falling back" in plan.reason

    def test_ins_with_index(self, indexed_planner):
        plan = indexed_planner.plan("v0", "v4", LABELS, S0)
        assert plan.algorithm == "ins"

    def test_explicit_override_wins(self, indexed_planner):
        plan = indexed_planner.plan("v0", "v4", LABELS, S0, algorithm="naive")
        assert plan.algorithm == "naive"
        assert "requested" in plan.reason

    def test_unknown_algorithm_rejected(self, planner):
        with pytest.raises(BadRequestError, match="unknown algorithm"):
            planner.plan("v0", "v4", LABELS, S0, algorithm="dijkstra")

    def test_ins_without_index_rejected(self, planner):
        with pytest.raises(BadRequestError, match="requires a loaded index"):
            planner.plan("v0", "v4", LABELS, S0, algorithm="ins")

    def test_bad_request_raised_even_for_trivial_query(self, planner):
        with pytest.raises(BadRequestError):
            planner.plan("nope", "v4", LABELS, S0, algorithm="dijkstra")

    def test_config_errors(self):
        with pytest.raises(ServiceConfigError, match="unknown fallback"):
            QueryPlanner(figure3_graph(), fallback_algorithm="bogus")
        with pytest.raises(ServiceConfigError, match="requires a loaded index"):
            QueryPlanner(figure3_graph(), fallback_algorithm="ins", has_index=False)

    def test_empty_labels_rejected(self, planner):
        with pytest.raises(ConstraintError):
            planner.plan("v0", "v4", [], S0)
