"""Tests for the service caches (LRU/TTL result cache, constraint cache)."""

import threading

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.service.cache import ConstraintCache, ResultCache

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"
S0_REFORMATTED = "SELECT ?x WHERE {  ?x <friendOf> v3 .\n\tv3 <likes> ?y . }"


class FakeClock:
    """A manually stepped monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestResultCacheLRU:
    def test_miss_then_hit(self):
        cache = ResultCache(max_size=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                  # refresh, no growth
        cache.put("c", 3)                   # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_size_zero_disables_storage(self):
        cache = ResultCache(max_size=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="max_size"):
            ResultCache(max_size=-1)
        with pytest.raises(ValueError, match="ttl_seconds"):
            ResultCache(ttl_seconds=0)

    def test_clear_keeps_counters(self):
        cache = ResultCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestResultCacheTTL:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(max_size=4, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1

    def test_hit_rate(self):
        cache = ResultCache(max_size=4)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats().hit_rate == pytest.approx(0.5)


class TestResultCacheThreading:
    def test_concurrent_mixed_access(self):
        cache = ResultCache(max_size=64)

        def worker(offset):
            for i in range(300):
                key = (offset + i) % 100
                cache.put(key, key)
                got = cache.get(key)
                assert got is None or got == key

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64


class TestConstraintCache:
    def test_parse_once_identity(self):
        cache = ConstraintCache()
        first = cache.get(S0)
        second = cache.get(S0)
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_reformatted_text_shares_object(self):
        cache = ConstraintCache()
        # Both spellings canonicalise to the same SPARQL, so after the
        # first parse the second spelling resolves to the same object.
        first = cache.get(S0)
        assert cache.get(first.to_sparql()) is first
        assert cache.get(S0_REFORMATTED) is first

    def test_getitem_never_parses(self):
        cache = ConstraintCache()
        with pytest.raises(KeyError):
            cache[S0]
        parsed = cache.get(S0)
        assert cache[S0] is parsed
        assert S0 in cache

    def test_invalid_text_not_cached(self):
        cache = ConstraintCache()
        with pytest.raises(SparqlSyntaxError):
            cache.get("SELECT nonsense")
        assert "SELECT nonsense" not in cache

    def test_lru_bound(self):
        cache = ConstraintCache(max_size=4)
        texts = [
            f"SELECT ?x WHERE {{ ?x <p{i}> ?y . }}" for i in range(6)
        ]
        for text in texts:
            cache.get(text)
        assert len(cache) <= 4
        assert cache.stats().evictions > 0
