"""Per-endpoint latency histograms: buckets, quantiles, merge, restore."""

from __future__ import annotations

import random

from repro.service.stats import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    ServiceStats,
    merge_snapshots,
)


class TestLatencyHistogram:
    def test_counts_and_sums(self):
        histogram = LatencyHistogram()
        for value in (0.0001, 0.001, 0.01, 5.0):
            histogram.record(value)
        assert histogram.count == 4
        assert abs(histogram.sum_seconds - 5.0111) < 1e-9
        assert histogram.max_seconds == 5.0
        assert sum(histogram.counts) == 4

    def test_quantile_is_conservative_upper_bound(self):
        # The estimate is the bucket's upper bound: never below the true
        # quantile, never above it by more than one bucket (2x) width.
        rng = random.Random(7)
        values = [rng.uniform(0.0001, 0.5) for _ in range(500)]
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        ordered = sorted(values)
        for fraction in (0.5, 0.9, 0.99):
            true_quantile = ordered[int(fraction * len(ordered)) - 1]
            estimate = histogram.quantile(fraction)
            assert estimate >= true_quantile * 0.999
            assert estimate <= true_quantile * 2.0 + 1e-9

    def test_quantile_capped_at_max(self):
        histogram = LatencyHistogram()
        histogram.record(0.00042)
        assert histogram.quantile(0.99) == 0.00042

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99_ms"] == 0.0

    def test_snapshot_merge_roundtrip(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            left.record(value)
        for value in (0.1, 0.2):
            right.record(value)
        merged = LatencyHistogram()
        merged.merge_snapshot(left.snapshot())
        merged.merge_snapshot(right.snapshot())
        assert merged.count == 5
        assert merged.max_seconds == 0.2
        combined = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.1, 0.2):
            combined.record(value)
        assert merged.counts == combined.counts

    def test_merge_rejects_mismatched_bucket_layout_entirely(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        # A snapshot with a different bucket count must be skipped whole:
        # folding its totals without its buckets would corrupt quantiles.
        histogram.merge_snapshot({"count": 100, "sum_seconds": 50.0,
                                  "max_seconds": 9.0, "bucket_counts": [100]})
        assert histogram.count == 1
        assert histogram.max_seconds == 0.001

    def test_empty_histogram_every_quantile_is_zero(self):
        histogram = LatencyHistogram()
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.quantile(fraction) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["p50_ms"] == snapshot["p90_ms"] == snapshot["p99_ms"] == 0.0
        assert snapshot["mean_ms"] == 0.0
        assert snapshot["max_seconds"] == 0.0

    def test_overflow_bucket_observation(self):
        # Beyond the last bound (~84s) lands in the implicit +Inf bucket;
        # its quantile must report the observed max, not a finite bound.
        histogram = LatencyHistogram()
        huge = LATENCY_BUCKET_BOUNDS[-1] * 3.0
        histogram.record(huge)
        assert histogram.counts[-1] == 1
        assert sum(histogram.counts[:-1]) == 0
        assert histogram.quantile(0.99) == huge
        snapshot = histogram.snapshot()
        assert snapshot["bucket_counts"][-1] == 1
        assert snapshot["p99_ms"] == huge * 1000.0

    def test_merge_rejects_moved_bucket_boundaries(self):
        # Same bucket *count*, different *bounds*: folding would silently
        # re-bin — the document must be skipped whole.
        histogram = LatencyHistogram()
        histogram.record(0.001)
        foreign = LatencyHistogram()
        foreign.record(0.5)
        document = foreign.snapshot()
        document["bucket_bounds_seconds"] = [
            bound * 3.0 for bound in LATENCY_BUCKET_BOUNDS
        ]
        histogram.merge_snapshot(document)
        assert histogram.count == 1
        assert histogram.max_seconds == 0.001

    def test_merge_without_bounds_still_accepted(self):
        # Older snapshots carry only bucket_counts; a matching length is
        # the best compatibility signal available and must keep working.
        histogram = LatencyHistogram()
        source = LatencyHistogram()
        source.record(0.02)
        document = source.snapshot()
        del document["bucket_bounds_seconds"]
        histogram.merge_snapshot(document)
        assert histogram.count == 1
        assert histogram.max_seconds == 0.02

    def test_merge_without_max_seconds_keeps_quantiles_alive(self):
        # Regression: a document missing max_seconds used to leave the
        # merged max at 0.0, and quantile()'s min(bound, max) clamp then
        # reported every quantile as 0.  The fallback derives a max from
        # the highest occupied bucket's upper bound.
        histogram = LatencyHistogram()
        source = LatencyHistogram()
        source.record(0.02)
        source.record(0.04)
        document = source.snapshot()
        del document["max_seconds"]
        histogram.merge_snapshot(document)
        assert histogram.count == 2
        assert histogram.quantile(0.5) > 0.0
        assert histogram.max_seconds >= 0.04

    def test_merge_without_max_seconds_overflow_bucket(self):
        # The fallback must not index past the bounds table when the
        # only occupied bucket is the +Inf overflow cell.
        histogram = LatencyHistogram()
        source = LatencyHistogram()
        source.record(LATENCY_BUCKET_BOUNDS[-1] * 2.0)
        document = source.snapshot()
        del document["max_seconds"]
        histogram.merge_snapshot(document)
        assert histogram.max_seconds == LATENCY_BUCKET_BOUNDS[-1]
        assert histogram.quantile(0.99) == LATENCY_BUCKET_BOUNDS[-1]

    def test_bounds_are_log_scale(self):
        ratios = {
            round(b / a, 6)
            for a, b in zip(LATENCY_BUCKET_BOUNDS, LATENCY_BUCKET_BOUNDS[1:])
        }
        assert ratios == {2.0}


class TestServiceStatsLatency:
    def test_record_latency_creates_endpoint_histograms(self):
        stats = ServiceStats()
        stats.record_latency("query", 0.002)
        stats.record_latency("query", 0.004)
        stats.record_latency("batch", 0.1)
        snapshot = stats.snapshot()
        assert snapshot["latency"]["query"]["count"] == 2
        assert snapshot["latency"]["batch"]["count"] == 1
        assert snapshot["latency"]["query"]["p50_ms"] > 0

    def test_merge_snapshots_folds_histograms(self):
        a, b = ServiceStats(), ServiceStats()
        a.record_latency("query", 0.001)
        a.record_latency("query", 0.002)
        b.record_latency("query", 0.5)
        b.record_latency("batch", 0.05)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["latency"]["query"]["count"] == 3
        assert merged["latency"]["batch"]["count"] == 1
        assert merged["latency"]["query"]["max_seconds"] == 0.5

    def test_merge_tolerates_missing_latency_section(self):
        # Snapshots from older services (or hand-built ones) lack the key.
        stats = ServiceStats()
        stats.record_latency("query", 0.001)
        old = stats.snapshot()
        del old["latency"]
        merged = merge_snapshots([old, ServiceStats().snapshot()])
        assert merged["latency"] == {}

    def test_restore_carries_everything(self):
        from repro.core.result import QueryResult

        first = ServiceStats()
        first.record_query(
            QueryResult(answer=True, algorithm="UIS", seconds=0.01,
                        passed_vertices=7)
        )
        first.record_query(
            QueryResult(answer=False, algorithm="UIS", seconds=0.03,
                        passed_vertices=9)
        )
        first.record_batch()
        first.record_error("bad-request")
        first.record_latency("query", 0.02)
        document = first.snapshot()

        second = ServiceStats()
        second.restore(document)
        restored = second.snapshot()
        assert restored["queries"] == document["queries"]
        assert restored["batches"] == document["batches"]
        assert restored["errors"] == document["errors"]
        assert restored["algorithms"]["UIS"]["count"] == 2
        assert restored["algorithms"]["UIS"]["mean_passed_vertices"] == 8.0
        assert restored["latency"]["query"]["count"] == 1

    def test_restore_adds_to_existing_counters(self):
        from repro.core.result import QueryResult

        stats = ServiceStats()
        stats.record_query(
            QueryResult(answer=True, algorithm="INS", seconds=0.01,
                        passed_vertices=3)
        )
        stats.restore(stats.snapshot())
        snapshot = stats.snapshot()
        assert snapshot["queries"]["total"] == 2
        assert snapshot["algorithms"]["INS"]["count"] == 2


class TestServicePathLatency:
    def test_query_and_batch_paths_record(self):
        from repro.service.app import QueryService
        from tests.helpers import graph_from_edges

        graph = graph_from_edges([("a", "l", "b"), ("b", "m", "b")])
        service = QueryService(graph, seed=0)
        constraint = "SELECT ?x WHERE { ?x <m> ?y . }"
        try:
            service.query("a", "b", ["l"], constraint)
            service.query("a", "b", ["l"], constraint)  # cached: still recorded
            service.query_batch(
                [
                    {"source": "a", "target": "b", "labels": ["l"],
                     "constraint": constraint},
                    {"source": "b", "target": "a", "labels": ["l"],
                     "constraint": constraint},
                ]
            )
            latency = service.stats.snapshot()["latency"]
            assert latency["query"]["count"] == 4  # singles + batch members
            assert latency["batch"]["count"] == 1
        finally:
            service.close()
