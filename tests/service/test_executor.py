"""Tests for the concurrent batch executor."""

import threading

import pytest

from repro.datasets.toy import figure3_graph
from repro.service.executor import BatchExecutor
from repro.session import LSCRSession

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"


@pytest.fixture()
def session():
    return LSCRSession(figure3_graph(), algorithm="uis")


def mixed_queries(session, repeats=8):
    pairs = [("v0", "v4"), ("v0", "v3"), ("v3", "v4"), ("v1", "v4"), ("v0", "v0")]
    return [
        session.make_query(s, t, ["likes", "follows", "friendOf"], S0)
        for _ in range(repeats)
        for s, t in pairs
    ]


class TestMap:
    def test_order_preserved(self):
        items = list(range(100))
        results = BatchExecutor(max_workers=8).map(lambda x: x * x, items)
        assert results == [x * x for x in items]

    def test_empty_and_single(self):
        executor = BatchExecutor(max_workers=4)
        assert executor.map(lambda x: x, []) == []
        assert executor.map(lambda x: x + 1, [41]) == [42]

    def test_actually_concurrent(self):
        # Two tasks that each block until the other has started can only
        # finish if they run on distinct threads.
        barrier = threading.Barrier(2, timeout=5)
        results = BatchExecutor(max_workers=2).map(
            lambda _: barrier.wait() is not None, [0, 1]
        )
        assert results == [True, True]

    def test_serial_with_one_worker(self):
        thread_names = BatchExecutor(max_workers=1).map(
            lambda _: threading.current_thread().name, range(8)
        )
        assert len(set(thread_names)) == 1

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError(f"boom {x}")

        with pytest.raises(RuntimeError, match="boom"):
            BatchExecutor(max_workers=4).map(boom, range(8))

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            BatchExecutor(max_workers=0)

    def test_persistent_pool_reused_across_calls(self):
        executor = BatchExecutor(max_workers=2, persistent=True)
        try:
            assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
            pool = executor._pool
            assert pool is not None
            assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
            assert executor._pool is pool            # same pool, no churn
        finally:
            executor.shutdown()
        assert executor._pool is None
        executor.shutdown()                          # idempotent


class TestRun:
    def test_matches_serial_execution(self, session):
        queries = mixed_queries(session)
        serial = [session.answer(query).answer for query in queries]
        concurrent = BatchExecutor(max_workers=8).run(session, queries)
        assert [result.answer for result in concurrent] == serial

    def test_accepts_raw_specs(self, session):
        specs = [
            ("v0", "v4", ["likes", "follows"], S0),
            ("v0", "v3", ["likes", "follows"], S0),
        ]
        results = BatchExecutor(max_workers=2).run(session, specs)
        assert [result.answer for result in results] == [True, False]

    def test_specs_amortise_constraint_parsing(self, session):
        specs = [("v0", "v4", ["likes", "follows"], S0)] * 16
        BatchExecutor(max_workers=4).run(session, specs)
        stats = session._constraint_cache.stats()
        assert stats.misses == 1          # parsed exactly once
        assert stats.hits == 15
