"""Tests for the SPARQL parser."""

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.sparql.ast import AskQuery, SelectQuery, TriplePattern, Var
from repro.sparql.parser import parse_patterns, parse_query, parse_select


class TestSelect:
    def test_simple_select(self):
        query = parse_query("SELECT ?x WHERE { ?x <likes> ?y . }")
        assert isinstance(query, SelectQuery)
        assert query.projection == (Var("x"),)
        assert query.patterns == (TriplePattern(Var("x"), "likes", Var("y")),)

    def test_select_distinct(self):
        query = parse_select("SELECT DISTINCT ?x WHERE { ?x <p> ?y }")
        assert query.distinct

    def test_select_star(self):
        query = parse_select("SELECT * WHERE { ?a <p> ?b . }")
        assert query.projection == ()
        assert query.effective_projection() == (Var("a"), Var("b"))

    def test_where_optional(self):
        query = parse_select("SELECT ?x { ?x <p> ?y }")
        assert len(query.patterns) == 1

    def test_multiple_patterns(self):
        query = parse_select(
            "SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?x . }"
        )
        assert len(query.patterns) == 3

    def test_final_dot_optional(self):
        with_dot = parse_select("SELECT ?x WHERE { ?x <p> ?y . }")
        without = parse_select("SELECT ?x WHERE { ?x <p> ?y }")
        assert with_dot.patterns == without.patterns

    def test_string_literals_as_constants(self):
        query = parse_select("SELECT ?x WHERE { ?x <ub:name> 'GraduateStudent4' . }")
        assert query.patterns[0].object == "GraduateStudent4"

    def test_full_iri_shortened_to_prefixed_name(self):
        query = parse_select(
            "SELECT ?x WHERE { ?x "
            "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <ub:Course> . }"
        )
        assert query.patterns[0].predicate == "rdf:type"

    def test_multi_variable_projection(self):
        query = parse_select("SELECT ?a ?b WHERE { ?a <p> ?b }")
        assert query.projection == (Var("a"), Var("b"))

    def test_table3_constraints_parse(self):
        from repro.datasets.lubm.queries import ALL_CONSTRAINTS

        for name, text in ALL_CONSTRAINTS.items():
            query = parse_select(text)
            assert query.projection == (Var("x"),), name


class TestAsk:
    def test_ask(self):
        query = parse_query("ASK WHERE { ?x <p> ?y . }")
        assert isinstance(query, AskQuery)
        assert len(query.patterns) == 1

    def test_ask_without_where(self):
        query = parse_query("ASK { ?x <p> ?y }")
        assert isinstance(query, AskQuery)


class TestParsePatterns:
    def test_bare_patterns(self):
        patterns = parse_patterns("?x <p> ?y . ?y <q> v3")
        assert len(patterns) == 2

    def test_braced_patterns(self):
        patterns = parse_patterns("{ ?x <p> ?y }")
        assert len(patterns) == 1


class TestErrors:
    def test_not_a_query(self):
        with pytest.raises(SparqlSyntaxError, match="SELECT or ASK"):
            parse_query("{ ?x <p> ?y }")

    def test_missing_projection(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT WHERE { ?x <p> ?y }")

    def test_empty_pattern_group(self):
        with pytest.raises(SparqlSyntaxError, match="empty graph pattern"):
            parse_query("SELECT ?x WHERE { }")

    def test_unclosed_group(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x <p> ?y")

    def test_incomplete_triple(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x <p> }")

    def test_projected_variable_not_in_pattern(self):
        with pytest.raises(SparqlSyntaxError, match="not used"):
            parse_query("SELECT ?zz WHERE { ?x <p> ?y }")

    def test_trailing_garbage(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x <p> ?y } extra")

    def test_select_must_be_select(self):
        with pytest.raises(SparqlSyntaxError, match="expected a SELECT"):
            parse_select("ASK { ?x <p> ?y }")


class TestAstRendering:
    def test_select_str_roundtrips_through_parser(self):
        text = "SELECT DISTINCT ?x WHERE { ?x <friendOf> <v3> . <v3> <likes> ?y . }"
        query = parse_select(text)
        assert parse_select(str(query)) == query

    def test_pattern_str(self):
        pattern = TriplePattern(Var("x"), "p", "v")
        assert str(pattern) == "?x <p> <v> ."

    def test_var_str(self):
        assert str(Var("x")) == "?x"
