"""Tests for the SPARQL tokeniser."""

import pytest

from repro.exceptions import SparqlSyntaxError
from repro.sparql.lexer import Token, tokenize


def kinds(text: str) -> list[str]:
    return [t.kind for t in tokenize(text)]


def values(text: str) -> list[str]:
    return [t.value for t in tokenize(text) if t.kind != "EOF"]


class TestTokenKinds:
    def test_keywords_case_insensitive(self):
        for text in ("SELECT", "select", "Select"):
            token = tokenize(text)[0]
            assert token.kind == "KEYWORD"
            assert token.value == "SELECT"

    def test_variable(self):
        token = tokenize("?x")[0]
        assert (token.kind, token.value) == ("VAR", "x")

    def test_dollar_variable(self):
        token = tokenize("$y1")[0]
        assert (token.kind, token.value) == ("VAR", "y1")

    def test_iri(self):
        token = tokenize("<http://example.org/x>")[0]
        assert (token.kind, token.value) == ("IRI", "http://example.org/x")

    def test_pname(self):
        token = tokenize("ub:Course")[0]
        assert (token.kind, token.value) == ("PNAME", "ub:Course")

    def test_bare_identifier_is_pname(self):
        token = tokenize("Research12")[0]
        assert (token.kind, token.value) == ("PNAME", "Research12")

    def test_string_single_and_double_quotes(self):
        assert tokenize("'abc'")[0].value == "abc"
        assert tokenize('"a b"')[0].value == "a b"

    def test_punctuation(self):
        assert kinds("{ } . *")[:4] == ["LBRACE", "RBRACE", "DOT", "STAR"]

    def test_eof_always_last(self):
        assert kinds("")[-1] == "EOF"
        assert kinds("?x")[-1] == "EOF"


class TestTrickyInputs:
    def test_trailing_dot_not_part_of_name(self):
        tokens = tokenize("v3.")
        assert [t.kind for t in tokens] == ["PNAME", "DOT", "EOF"]
        assert tokens[0].value == "v3"

    def test_dotted_name_inside_kept(self):
        # LUBM names contain dots: Department0.University0
        tokens = tokenize("Department0.University0 .")
        assert tokens[0].value == "Department0.University0"
        assert tokens[1].kind == "DOT"

    def test_comment_skipped(self):
        assert values("?x # comment here\n?y") == ["x", "y"]

    def test_whitespace_and_newlines(self):
        assert values("  ?x\n\t?y  ") == ["x", "y"]

    def test_positions_recorded(self):
        tokens = tokenize("?x ?y")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestErrors:
    def test_empty_variable(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("? x")

    def test_unterminated_iri(self):
        with pytest.raises(SparqlSyntaxError, match="unterminated IRI"):
            tokenize("<http://x.org")

    def test_unterminated_string(self):
        with pytest.raises(SparqlSyntaxError, match="unterminated string"):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SparqlSyntaxError, match="unexpected character"):
            tokenize("@@@")

    def test_error_carries_position(self):
        try:
            tokenize("?x @")
        except SparqlSyntaxError as error:
            assert error.position == 3
        else:  # pragma: no cover
            pytest.fail("expected SparqlSyntaxError")
