"""Tests for the BGP evaluator."""

import pytest

from repro.exceptions import SparqlEvaluationError
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.evaluator import bgp_is_satisfiable, compile_patterns, evaluate_bgp
from tests.helpers import graph_from_edges


@pytest.fixture()
def g():
    return graph_from_edges(
        [
            ("alice", "knows", "bob"),
            ("bob", "knows", "carol"),
            ("carol", "knows", "alice"),
            ("alice", "likes", "pizza"),
            ("bob", "likes", "pizza"),
            ("carol", "likes", "pasta"),
            ("dave", "selfie", "dave"),
        ]
    )


def solutions(graph, patterns, bindings=None):
    return sorted(
        tuple(sorted(s.items())) for s in evaluate_bgp(graph, patterns, bindings)
    )


class TestSinglePattern:
    def test_fully_bound_existing(self, g):
        patterns = [TriplePattern("alice", "knows", "bob")]
        assert len(solutions(g, patterns)) == 1

    def test_fully_bound_missing(self, g):
        patterns = [TriplePattern("alice", "knows", "carol")]
        assert solutions(g, patterns) == []

    def test_subject_var(self, g):
        patterns = [TriplePattern(Var("who"), "likes", "pizza")]
        names = {g.name_of(dict(s)["who"]) for s in evaluate_bgp(g, patterns)}
        assert names == {"alice", "bob"}

    def test_object_var(self, g):
        patterns = [TriplePattern("alice", "likes", Var("what"))]
        names = {g.name_of(dict(s)["what"]) for s in evaluate_bgp(g, patterns)}
        assert names == {"pizza"}

    def test_predicate_var(self, g):
        patterns = [TriplePattern("alice", Var("p"), "pizza")]
        labels = {g.label_name(dict(s)["p"]) for s in evaluate_bgp(g, patterns)}
        assert labels == {"likes"}

    def test_subject_object_vars(self, g):
        patterns = [TriplePattern(Var("a"), "knows", Var("b"))]
        assert len(solutions(g, patterns)) == 3

    def test_all_vars(self, g):
        patterns = [TriplePattern(Var("a"), Var("p"), Var("b"))]
        assert len(solutions(g, patterns)) == g.num_edges

    def test_repeated_var_matches_self_loop_only(self, g):
        patterns = [TriplePattern(Var("v"), Var("p"), Var("v"))]
        results = list(evaluate_bgp(g, patterns))
        assert len(results) == 1
        assert g.name_of(results[0]["v"]) == "dave"

    def test_repeated_var_with_constant_label(self, g):
        patterns = [TriplePattern(Var("v"), "selfie", Var("v"))]
        assert len(solutions(g, patterns)) == 1
        patterns = [TriplePattern(Var("v"), "knows", Var("v"))]
        assert solutions(g, patterns) == []


class TestJoins:
    def test_chain_join(self, g):
        patterns = [
            TriplePattern(Var("a"), "knows", Var("b")),
            TriplePattern(Var("b"), "knows", Var("c")),
        ]
        assert len(solutions(g, patterns)) == 3  # the triangle rotates

    def test_star_join(self, g):
        patterns = [
            TriplePattern(Var("a"), "knows", Var("b")),
            TriplePattern(Var("a"), "likes", "pizza"),
        ]
        names = {g.name_of(dict(s)["a"]) for s in evaluate_bgp(g, patterns)}
        assert names == {"alice", "bob"}

    def test_cycle_join(self, g):
        patterns = [
            TriplePattern(Var("a"), "knows", Var("b")),
            TriplePattern(Var("b"), "knows", Var("c")),
            TriplePattern(Var("c"), "knows", Var("a")),
        ]
        assert len(solutions(g, patterns)) == 3

    def test_unsatisfiable_join(self, g):
        patterns = [
            TriplePattern(Var("a"), "likes", "pasta"),
            TriplePattern(Var("a"), "likes", "pizza"),
        ]
        assert solutions(g, patterns) == []


class TestBindingsAndLimits:
    def test_pre_bound_variable(self, g):
        patterns = [TriplePattern(Var("who"), "likes", Var("what"))]
        bound = {"who": g.vid("carol")}
        results = list(evaluate_bgp(g, patterns, bound))
        assert len(results) == 1
        assert g.name_of(results[0]["what"]) == "pasta"

    def test_limit(self, g):
        patterns = [TriplePattern(Var("a"), Var("p"), Var("b"))]
        assert len(list(evaluate_bgp(g, patterns, limit=2))) == 2

    def test_satisfiable_short_circuits(self, g):
        assert bgp_is_satisfiable(g, [TriplePattern(Var("a"), "knows", Var("b"))])
        assert not bgp_is_satisfiable(g, [TriplePattern("pizza", "knows", Var("b"))])

    def test_yielded_bindings_are_copies(self, g):
        patterns = [TriplePattern(Var("a"), "knows", Var("b"))]
        results = list(evaluate_bgp(g, patterns))
        assert len({id(r) for r in results}) == len(results)


class TestCompilation:
    def test_missing_constant_vertex_is_unsatisfiable(self, g):
        patterns = [TriplePattern("nobody", "knows", Var("b"))]
        assert compile_patterns(g, patterns) is None
        assert solutions(g, patterns) == []

    def test_missing_label_is_unsatisfiable(self, g):
        patterns = [TriplePattern(Var("a"), "hates", Var("b"))]
        assert compile_patterns(g, patterns) is None

    def test_variable_in_both_roles_rejected(self, g):
        patterns = [
            TriplePattern(Var("v"), "knows", Var("b")),
            TriplePattern(Var("a"), Var("v"), Var("c")),
        ]
        with pytest.raises(SparqlEvaluationError, match="vertex and as a label"):
            compile_patterns(g, patterns)
