"""Property-based agreement: evaluator vs brute-force matcher.

The real evaluator (dynamic join ordering, adjacency indexes) and the
brute-force cross-product matcher share no code; hypothesis drives both
over random graphs and random BGPs and demands identical solution sets.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.evaluator import evaluate_bgp
from repro.sparql.naive import bruteforce_bgp

VERTICES = [f"v{i}" for i in range(6)]
LABELS = ["a", "b", "c"]
VERTEX_VARS = [Var("x"), Var("y"), Var("z")]
LABEL_VARS = [Var("p"), Var("q")]


@st.composite
def graphs(draw) -> KnowledgeGraph:
    graph = KnowledgeGraph("prop")
    for vertex in VERTICES:
        graph.add_vertex(vertex)
    for label in LABELS:
        graph.labels.intern(label)
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(VERTICES),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
            ),
            max_size=14,
        )
    )
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    return graph


@st.composite
def patterns(draw) -> list[TriplePattern]:
    count = draw(st.integers(min_value=1, max_value=3))
    result = []
    for _ in range(count):
        subject = draw(st.sampled_from(VERTICES + VERTEX_VARS))
        predicate = draw(st.sampled_from(LABELS + LABEL_VARS))
        obj = draw(st.sampled_from(VERTICES + VERTEX_VARS))
        result.append(TriplePattern(subject, predicate, obj))
    return result


def canonical(solutions) -> set[tuple]:
    return {tuple(sorted(s.items())) for s in solutions}


class TestEvaluatorAgreesWithBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(graphs(), patterns())
    def test_same_solution_sets(self, graph, bgp):
        fast = canonical(evaluate_bgp(graph, bgp))
        slow = canonical(bruteforce_bgp(graph, bgp))
        assert fast == slow

    @settings(max_examples=60, deadline=None)
    @given(graphs(), patterns(), st.sampled_from(VERTICES))
    def test_same_solutions_with_binding(self, graph, bgp, bound_vertex):
        assume(any(Var("x") in p.variables() for p in bgp))
        binding = {"x": graph.vid(bound_vertex)}
        fast = canonical(evaluate_bgp(graph, bgp, binding))
        slow = canonical(bruteforce_bgp(graph, bgp, binding))
        assert fast == slow

    @settings(max_examples=60, deadline=None)
    @given(graphs(), patterns())
    def test_no_duplicate_full_bindings(self, graph, bgp):
        all_solutions = [tuple(sorted(s.items())) for s in evaluate_bgp(graph, bgp)]
        assert len(all_solutions) == len(set(all_solutions))
