"""Tests for the SPARQL engine facade."""

import pytest

from repro.exceptions import SparqlEvaluationError
from repro.sparql.engine import SparqlEngine
from tests.helpers import graph_from_edges


@pytest.fixture()
def engine():
    graph = graph_from_edges(
        [
            ("v0", "friendOf", "v1"),
            ("v1", "friendOf", "v3"),
            ("v2", "friendOf", "v3"),
            ("v3", "likes", "v4"),
            ("v3", "likes", "v5"),
        ]
    )
    return SparqlEngine(graph)


class TestSelect:
    def test_select_names(self, engine):
        rows = engine.select("SELECT ?x WHERE { ?x <friendOf> v3 . }")
        assert sorted(r["x"] for r in rows) == ["v1", "v2"]

    def test_select_ids(self, engine):
        rows = engine.select_ids("SELECT ?x WHERE { ?x <friendOf> v3 . }")
        names = sorted(engine.graph.name_of(r["x"]) for r in rows)
        assert names == ["v1", "v2"]

    def test_select_distinct_deduplicates(self, engine):
        # without DISTINCT, v3's two likes-edges produce two ?x rows
        plain = engine.select("SELECT ?x WHERE { ?x <likes> ?y . }")
        distinct = engine.select("SELECT DISTINCT ?x WHERE { ?x <likes> ?y . }")
        assert len(plain) == 2
        assert len(distinct) == 1

    def test_select_projects_multiple_variables(self, engine):
        rows = engine.select("SELECT ?a ?b WHERE { ?a <likes> ?b . }")
        assert {tuple(sorted(r.items())) for r in rows} == {
            (("a", "v3"), ("b", "v4")),
            (("a", "v3"), ("b", "v5")),
        }

    def test_select_with_limit(self, engine):
        rows = engine.select("SELECT ?x WHERE { ?x <likes> ?y . }", limit=1)
        assert len(rows) == 1

    def test_label_variable_decoded_through_label_table(self, engine):
        rows = engine.select("SELECT ?p WHERE { v3 ?p v4 . }")
        assert rows == [{"p": "likes"}]

    def test_select_rejects_ask(self, engine):
        with pytest.raises(SparqlEvaluationError):
            engine.select("ASK { ?x <likes> ?y }")

    def test_parse_cache_reuses_ast(self, engine):
        text = "SELECT ?x WHERE { ?x <friendOf> v3 . }"
        engine.select(text)
        cached = engine._parse_cache[text]
        engine.select(text)
        assert engine._parse_cache[text] is cached


class TestAsk:
    def test_ask_query_text(self, engine):
        assert engine.ask("ASK { v0 <friendOf> v1 . }")
        assert not engine.ask("ASK { v1 <friendOf> v0 . }")

    def test_ask_select_text(self, engine):
        assert engine.ask("SELECT ?x WHERE { ?x <likes> ?y . }")

    def test_ask_pattern_list_with_bindings(self, engine):
        from repro.sparql.ast import TriplePattern, Var

        patterns = [TriplePattern(Var("x"), "friendOf", "v3")]
        v1 = engine.graph.vid("v1")
        v0 = engine.graph.vid("v0")
        assert engine.ask(patterns, {"x": v1})
        assert not engine.ask(patterns, {"x": v0})


class TestSatisfyingVertices:
    def test_returns_distinct_ids(self, engine):
        ids = engine.satisfying_vertices("SELECT ?x WHERE { ?x <likes> ?y . }")
        assert [engine.graph.name_of(v) for v in ids] == ["v3"]

    def test_order_is_first_seen(self, engine):
        ids = engine.satisfying_vertices("SELECT ?x WHERE { ?x <friendOf> ?y . }")
        assert len(ids) == len(set(ids))

    def test_missing_variable_raises(self, engine):
        with pytest.raises(SparqlEvaluationError, match="not projected"):
            engine.satisfying_vertices(
                "SELECT ?y WHERE { ?y <likes> ?z . }", variable="x"
            )

    def test_needs_select(self, engine):
        with pytest.raises(SparqlEvaluationError):
            engine.satisfying_vertices("ASK { ?x <likes> ?y }")
