"""Shared test utilities: independent oracles and tiny graph builders.

Everything here is deliberately *simple and slow* and shares no code
with the implementations under test, so agreement between the two is
meaningful evidence:

* :func:`ground_truth_cms` enumerates simple paths by DFS (any path's
  label set contains a simple path's label set, so minimal sets are
  preserved) and reduces to the minimal antichain — the oracle for
  Definition 2.3 / Definition 5.1 used against the index builders;
* :func:`graph_from_edges` builds graphs from edge triples concisely.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["graph_from_edges", "ground_truth_cms", "minimal_masks"]


def graph_from_edges(
    edges: Iterable[tuple[str, str, str]],
    name: str = "test",
    vertices: Iterable[str] = (),
) -> KnowledgeGraph:
    """Build a graph from ``(source, label, target)`` triples."""
    graph = KnowledgeGraph(name)
    for vertex in vertices:
        graph.add_vertex(vertex)
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    return graph


def minimal_masks(masks: Iterable[int]) -> set[int]:
    """Reduce a collection of label masks to its minimal antichain."""
    unique = set(masks)
    return {
        m
        for m in unique
        if not any(other != m and other & ~m == 0 for other in unique)
    }


def ground_truth_cms(
    graph: KnowledgeGraph,
    source: int,
    allowed: set[int] | None = None,
) -> dict[int, set[int]]:
    """CMS from ``source`` to every vertex, by simple-path enumeration.

    ``allowed`` restricts paths to a vertex subset (the region-limited
    ``M(u, v | F(u))`` of Definition 5.1).  The result maps each
    reachable target (including ``source`` with ``{∅}``) to its set of
    minimal label masks.  Exponential — only call on tiny graphs.
    """
    collected: dict[int, set[int]] = {source: {0}}
    on_path = {source}

    def dfs(vertex: int, mask: int) -> None:
        for label_id, target in graph.out_edges(vertex):
            if allowed is not None and target not in allowed:
                continue
            if target in on_path:
                continue
            new_mask = mask | (1 << label_id)
            collected.setdefault(target, set()).add(new_mask)
            on_path.add(target)
            dfs(target, new_mask)
            on_path.remove(target)

    dfs(source, 0)
    return {target: minimal_masks(masks) for target, masks in collected.items()}
