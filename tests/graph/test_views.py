"""Tests for graph views (reverse, induced subgraph, copy)."""

from repro.graph.builder import GraphBuilder
from repro.graph.views import copy_graph, induced_subgraph, reverse
from tests.helpers import graph_from_edges


class TestReverse:
    def test_edges_flipped(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "y", "c")])
        r = reverse(g)
        assert r.has_edge_named("b", "x", "a")
        assert r.has_edge_named("c", "y", "b")
        assert r.num_edges == 2

    def test_vertex_and_label_ids_preserved(self):
        g = graph_from_edges([("a", "x", "b"), ("c", "y", "a"), ("b", "z", "c")])
        r = reverse(g)
        for name in ("a", "b", "c"):
            assert r.vid(name) == g.vid(name)
        for label in ("x", "y", "z"):
            assert r.label_id(label) == g.label_id(label)

    def test_masks_transfer(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "y", "c")])
        mask = g.label_mask(["y"])
        r = reverse(g)
        c = g.vid("c")
        assert [s for _l, s in r.out_masked(c, mask)] == [g.vid("b")]

    def test_double_reverse_restores(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "y", "c"), ("c", "z", "a")])
        rr = reverse(reverse(g))
        assert set(rr.edges_named()) == set(g.edges_named())


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "x", "c"), ("c", "x", "a")])
        sub = induced_subgraph(g, [g.vid("a"), g.vid("b")])
        assert sub.has_edge_named("a", "x", "b")
        assert sub.num_edges == 1
        assert sub.num_vertices == 2

    def test_edge_filter(self):
        g = graph_from_edges([("a", "x", "b"), ("a", "y", "b")])
        y = g.label_id("y")
        sub = induced_subgraph(
            g, g.vertices(), edge_filter=lambda s, l, t: l != y
        )
        assert sub.has_edge_named("a", "x", "b")
        assert not sub.has_edge_named("a", "y", "b")

    def test_empty_selection(self):
        g = graph_from_edges([("a", "x", "b")])
        sub = induced_subgraph(g, [])
        assert sub.num_vertices == 0
        assert sub.num_edges == 0


class TestCopy:
    def test_structure_copied(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "y", "c")])
        c = copy_graph(g)
        assert set(c.edges_named()) == set(g.edges_named())
        assert c.vid("b") == g.vid("b")
        assert c.label_id("y") == g.label_id("y")

    def test_copy_is_independent(self):
        g = graph_from_edges([("a", "x", "b")])
        c = copy_graph(g)
        c.add_edge("a", "x", "zz")
        assert not g.has_vertex("zz")

    def test_schema_deep_copied(self):
        g = GraphBuilder().typed("alice", "Person").build()
        c = copy_graph(g)
        c.schema.add_instance("bob", "Person")
        assert not g.schema.is_instance("bob", "Person")
        assert c.schema.is_instance("alice", "Person")
