"""Tests for RDF vocabulary helpers."""

from repro.graph.rdf import (
    PREFIXES,
    RDF_TYPE,
    RDF_VOCABULARY,
    expand,
    is_rdf_vocabulary,
    shorten,
)


class TestVocabulary:
    def test_core_terms_are_vocabulary(self):
        assert is_rdf_vocabulary(RDF_TYPE)
        assert is_rdf_vocabulary("rdfs:subClassOf")

    def test_domain_labels_are_not_vocabulary(self):
        assert not is_rdf_vocabulary("ub:takesCourse")
        assert not is_rdf_vocabulary("likes")

    def test_vocabulary_is_consistent(self):
        for term in RDF_VOCABULARY:
            assert is_rdf_vocabulary(term)


class TestExpandShorten:
    def test_expand_known_prefix(self):
        assert expand("rdf:type") == PREFIXES["rdf"] + "type"
        assert expand("ub:Course") == PREFIXES["ub"] + "Course"

    def test_expand_unknown_prefix_unchanged(self):
        assert expand("foo:bar") == "foo:bar"

    def test_expand_plain_name_unchanged(self):
        assert expand("Research12") == "Research12"

    def test_shorten_inverts_expand(self):
        for name in ("rdf:type", "rdfs:range", "ub:advisor", "eg:Person"):
            assert shorten(expand(name)) == name

    def test_shorten_unknown_iri_unchanged(self):
        assert shorten("http://unknown.org/x") == "http://unknown.org/x"

    def test_shorten_prefers_longest_namespace(self):
        prefixes = {"a": "http://x.org/", "b": "http://x.org/deep/"}
        assert shorten("http://x.org/deep/name", prefixes) == "b:name"

    def test_custom_prefix_table(self):
        table = {"z": "http://z.example/"}
        assert expand("z:item", table) == "http://z.example/item"
        assert shorten("http://z.example/item", table) == "z:item"
