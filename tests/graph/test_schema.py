"""Tests for the RDFS schema registry."""

import random

import pytest

from repro.exceptions import SchemaError
from repro.graph.rdf import RDF_TYPE, RDFS_CLASS, RDFS_SUBCLASS_OF
from repro.graph.schema import RDFSchema


@pytest.fixture()
def schema() -> RDFSchema:
    s = RDFSchema()
    s.add_subclass("FullProfessor", "Professor")
    s.add_subclass("AssociateProfessor", "Professor")
    s.add_subclass("Professor", "Faculty")
    s.add_subclass("Faculty", "Person")
    s.add_instance("alice", "FullProfessor")
    s.add_instance("bob", "AssociateProfessor")
    s.add_instance("carol", "Faculty")
    return s


class TestClasses:
    def test_declared_classes_sorted(self, schema):
        assert "Professor" in schema.classes()
        assert list(schema.classes()) == sorted(schema.classes())

    def test_has_class(self, schema):
        assert schema.has_class("Faculty")
        assert not schema.has_class("Student")

    def test_superclasses_transitive(self, schema):
        assert schema.superclasses("FullProfessor") == {"Professor", "Faculty", "Person"}

    def test_superclasses_direct_only(self, schema):
        assert schema.superclasses("FullProfessor", transitive=False) == {"Professor"}

    def test_subclasses_transitive(self, schema):
        assert schema.subclasses("Faculty") == {
            "Professor",
            "FullProfessor",
            "AssociateProfessor",
        }

    def test_closure_of_unknown_class_is_empty(self, schema):
        assert schema.superclasses("Nope") == set()

    def test_cyclic_hierarchy_terminates(self):
        s = RDFSchema()
        s.add_subclass("A", "B")
        s.add_subclass("B", "A")
        assert s.superclasses("A") == {"A", "B"}


class TestInstances:
    def test_direct_instances(self, schema):
        assert schema.instances_of("FullProfessor", transitive=False) == ["alice"]

    def test_transitive_instances(self, schema):
        assert set(schema.instances_of("Faculty")) == {"alice", "bob", "carol"}

    def test_instances_deduplicated(self, schema):
        schema.add_instance("alice", "FullProfessor")
        assert schema.instances_of("FullProfessor", transitive=False) == ["alice"]

    def test_is_instance_direct_and_transitive(self, schema):
        assert schema.is_instance("alice", "FullProfessor")
        assert schema.is_instance("alice", "Person")
        assert not schema.is_instance("alice", "AssociateProfessor")
        assert not schema.is_instance("nobody", "Person")

    def test_classes_of(self, schema):
        assert schema.classes_of("bob") == {"AssociateProfessor"}
        assert schema.classes_of("nobody") == set()

    def test_typed_instances(self, schema):
        assert set(schema.typed_instances()) == {"alice", "bob", "carol"}


class TestDomainsRanges:
    def test_set_and_get(self):
        s = RDFSchema()
        s.set_domain("teaches", "Faculty")
        s.set_range("teaches", "Course")
        assert s.domain_of("teaches") == "Faculty"
        assert s.range_of("teaches") == "Course"
        assert s.properties() == ("teaches",)

    def test_missing_returns_none(self):
        s = RDFSchema()
        assert s.domain_of("x") is None
        assert s.range_of("x") is None


class TestSampling:
    def test_sample_classes_with_instances_only(self, schema):
        rng = random.Random(0)
        sampled = schema.sample_classes(rng, 2)
        for cls in sampled:
            assert schema.instances_of(cls, transitive=False)

    def test_sample_classes_empty_schema_raises(self):
        with pytest.raises(SchemaError):
            RDFSchema().sample_classes(random.Random(0), 1)

    def test_sample_count_clamped(self, schema):
        rng = random.Random(0)
        assert len(schema.sample_classes(rng, 100)) == 3  # only 3 have instances


class TestMergeAndTriples:
    def test_merge_unions_everything(self, schema):
        other = RDFSchema()
        other.add_instance("dave", "Student")
        other.add_subclass("Student", "Person")
        other.set_domain("takes", "Student")
        schema.merge(other)
        assert schema.is_instance("dave", "Person")
        assert schema.domain_of("takes") == "Student"

    def test_triples_contains_all_statement_kinds(self, schema):
        schema_with_props = schema
        schema_with_props.set_domain("teaches", "Faculty")
        triples = list(schema_with_props.triples())
        assert ("FullProfessor", RDF_TYPE, RDFS_CLASS) in triples
        assert ("FullProfessor", RDFS_SUBCLASS_OF, "Professor") in triples
        assert ("alice", RDF_TYPE, "FullProfessor") in triples
        assert ("teaches", "rdfs:domain", "Faculty") in triples
