"""Tests for descriptive graph statistics."""

import pytest

from repro.datasets.synthetic import star_graph
from repro.graph.stats import degree_histogram, graph_stats, label_histogram
from tests.helpers import graph_from_edges


@pytest.fixture()
def triangle():
    return graph_from_edges([("a", "x", "b"), ("b", "x", "c"), ("c", "y", "a")])


class TestGraphStats:
    def test_basic_counts(self, triangle):
        stats = graph_stats(triangle)
        assert stats.num_vertices == 3
        assert stats.num_edges == 3
        assert stats.num_labels == 2
        assert stats.density == pytest.approx(1.0)
        assert stats.mean_degree == pytest.approx(2.0)

    def test_max_degrees(self):
        g = star_graph(5)
        stats = graph_stats(g)
        assert stats.max_out_degree == 5
        assert stats.max_in_degree == 1

    def test_gini_zero_for_regular_graph(self, triangle):
        assert graph_stats(triangle).degree_gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_positive_for_star(self):
        # hub degree 10 vs ten degree-1 leaves: clearly skewed
        assert graph_stats(star_graph(10)).degree_gini > 0.3

    def test_empty_graph(self):
        from repro.graph.labeled_graph import KnowledgeGraph

        stats = graph_stats(KnowledgeGraph())
        assert stats.num_vertices == 0
        assert stats.mean_degree == 0.0
        assert stats.degree_gini == 0.0

    def test_describe_mentions_name(self, triangle):
        assert "test" in graph_stats(triangle).describe()


class TestHistograms:
    def test_degree_histogram_total(self, triangle):
        assert degree_histogram(triangle) == {2: 3}

    def test_degree_histogram_directions(self):
        g = star_graph(3)
        assert degree_histogram(g, "out") == {3: 1, 0: 3}
        assert degree_histogram(g, "in") == {0: 1, 1: 3}

    def test_degree_histogram_bad_direction(self, triangle):
        with pytest.raises(ValueError):
            degree_histogram(triangle, "sideways")

    def test_label_histogram_sorted_by_count(self, triangle):
        histogram = label_histogram(triangle)
        assert list(histogram.items()) == [("x", 2), ("y", 1)]
