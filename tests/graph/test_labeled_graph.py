"""Tests for the core knowledge-graph structure."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import KnowledgeGraph
from tests.helpers import graph_from_edges


@pytest.fixture()
def small() -> KnowledgeGraph:
    return graph_from_edges(
        [
            ("a", "x", "b"),
            ("a", "y", "b"),
            ("b", "x", "c"),
            ("c", "z", "a"),
        ]
    )


class TestConstruction:
    def test_add_vertex_is_idempotent(self):
        g = KnowledgeGraph()
        first = g.add_vertex("v")
        assert g.add_vertex("v") == first
        assert g.num_vertices == 1

    def test_vertex_ids_are_dense(self):
        g = KnowledgeGraph()
        ids = [g.add_vertex(f"v{i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_edge_set_semantics(self):
        g = KnowledgeGraph()
        assert g.add_edge("a", "x", "b") is True
        assert g.add_edge("a", "x", "b") is False  # E is a set
        assert g.num_edges == 1

    def test_parallel_edges_with_distinct_labels(self, small):
        assert small.has_edge_named("a", "x", "b")
        assert small.has_edge_named("a", "y", "b")
        assert small.num_edges == 4

    def test_self_loop_allowed(self):
        g = KnowledgeGraph()
        assert g.add_edge("a", "x", "a") is True
        assert g.has_edge_named("a", "x", "a")

    def test_add_edge_interns_vertices_and_labels(self):
        g = KnowledgeGraph()
        g.add_edge("s", "l", "t")
        assert g.num_vertices == 2
        assert g.num_labels == 1

    def test_repr_mentions_sizes(self, small):
        text = repr(small)
        assert "|V|=3" in text
        assert "|E|=4" in text


class TestLookup:
    def test_vid_roundtrip(self, small):
        for name in ("a", "b", "c"):
            assert small.name_of(small.vid(name)) == name

    def test_vid_unknown_raises(self, small):
        with pytest.raises(VertexNotFoundError):
            small.vid("zz")

    def test_name_of_out_of_range_raises(self, small):
        with pytest.raises(VertexNotFoundError):
            small.name_of(99)

    def test_contains(self, small):
        assert "a" in small
        assert "zz" not in small

    def test_label_mask(self, small):
        mask = small.label_mask(["x", "z"])
        assert mask == (1 << small.label_id("x")) | (1 << small.label_id("z"))


class TestIteration:
    def test_edges_cover_everything(self, small):
        edges = set(small.edges_named())
        assert edges == {
            ("a", "x", "b"),
            ("a", "y", "b"),
            ("b", "x", "c"),
            ("c", "z", "a"),
        }

    def test_out_edges(self, small):
        a = small.vid("a")
        targets = sorted(
            (small.label_name(l), small.name_of(t)) for l, t in small.out_edges(a)
        )
        assert targets == [("x", "b"), ("y", "b")]

    def test_in_edges(self, small):
        b = small.vid("b")
        sources = sorted(
            (small.label_name(l), small.name_of(s)) for l, s in small.in_edges(b)
        )
        assert sources == [("x", "a"), ("y", "a")]

    def test_out_masked_filters_labels(self, small):
        a = small.vid("a")
        mask = small.label_mask(["y"])
        edges = [(l, t) for l, t in small.out_masked(a, mask)]
        assert edges == [(small.label_id("y"), small.vid("b"))]

    def test_out_masked_empty_mask(self, small):
        assert list(small.out_masked(small.vid("a"), 0)) == []

    def test_in_masked(self, small):
        a = small.vid("a")
        mask = small.label_mask(["z"])
        assert [s for _l, s in small.in_masked(a, mask)] == [small.vid("c")]

    def test_edges_with_label(self, small):
        x = small.label_id("x")
        pairs = {(small.name_of(s), small.name_of(t)) for s, t in small.edges_with_label(x)}
        assert pairs == {("a", "b"), ("b", "c")}

    def test_out_labels(self, small):
        a = small.vid("a")
        names = {small.label_name(l) for l in small.out_labels(a)}
        assert names == {"x", "y"}


class TestDegreesAndStats:
    def test_degrees(self, small):
        a, b = small.vid("a"), small.vid("b")
        assert small.out_degree(a) == 2
        assert small.in_degree(a) == 1
        assert small.degree(b) == 3

    def test_label_frequency(self, small):
        assert small.label_frequency(small.label_id("x")) == 2
        assert small.label_frequency(small.label_id("z")) == 1

    def test_density(self, small):
        assert small.density() == pytest.approx(4 / 3)

    def test_density_of_empty_graph(self):
        assert KnowledgeGraph().density() == 0.0

    def test_labels_between(self, small):
        a, b = small.vid("a"), small.vid("b")
        mask = small.labels_between(a, b)
        assert set(small.mask_labels(mask)) == {"x", "y"}
        assert small.labels_between(b, a) == 0

    def test_has_edge_named_unknown_parts(self, small):
        assert not small.has_edge_named("zz", "x", "b")
        assert not small.has_edge_named("a", "nope", "b")
        assert not small.has_edge_named("a", "x", "zz")
