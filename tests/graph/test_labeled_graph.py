"""Tests for the core knowledge-graph structure."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import KnowledgeGraph
from tests.helpers import graph_from_edges


@pytest.fixture()
def small() -> KnowledgeGraph:
    return graph_from_edges(
        [
            ("a", "x", "b"),
            ("a", "y", "b"),
            ("b", "x", "c"),
            ("c", "z", "a"),
        ]
    )


class TestConstruction:
    def test_add_vertex_is_idempotent(self):
        g = KnowledgeGraph()
        first = g.add_vertex("v")
        assert g.add_vertex("v") == first
        assert g.num_vertices == 1

    def test_vertex_ids_are_dense(self):
        g = KnowledgeGraph()
        ids = [g.add_vertex(f"v{i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_edge_set_semantics(self):
        g = KnowledgeGraph()
        assert g.add_edge("a", "x", "b") is True
        assert g.add_edge("a", "x", "b") is False  # E is a set
        assert g.num_edges == 1

    def test_parallel_edges_with_distinct_labels(self, small):
        assert small.has_edge_named("a", "x", "b")
        assert small.has_edge_named("a", "y", "b")
        assert small.num_edges == 4

    def test_self_loop_allowed(self):
        g = KnowledgeGraph()
        assert g.add_edge("a", "x", "a") is True
        assert g.has_edge_named("a", "x", "a")

    def test_add_edge_interns_vertices_and_labels(self):
        g = KnowledgeGraph()
        g.add_edge("s", "l", "t")
        assert g.num_vertices == 2
        assert g.num_labels == 1

    def test_repr_mentions_sizes(self, small):
        text = repr(small)
        assert "|V|=3" in text
        assert "|E|=4" in text


class TestLookup:
    def test_vid_roundtrip(self, small):
        for name in ("a", "b", "c"):
            assert small.name_of(small.vid(name)) == name

    def test_vid_unknown_raises(self, small):
        with pytest.raises(VertexNotFoundError):
            small.vid("zz")

    def test_name_of_out_of_range_raises(self, small):
        with pytest.raises(VertexNotFoundError):
            small.name_of(99)

    def test_contains(self, small):
        assert "a" in small
        assert "zz" not in small

    def test_label_mask(self, small):
        mask = small.label_mask(["x", "z"])
        assert mask == (1 << small.label_id("x")) | (1 << small.label_id("z"))


class TestIteration:
    def test_edges_cover_everything(self, small):
        edges = set(small.edges_named())
        assert edges == {
            ("a", "x", "b"),
            ("a", "y", "b"),
            ("b", "x", "c"),
            ("c", "z", "a"),
        }

    def test_out_edges(self, small):
        a = small.vid("a")
        targets = sorted(
            (small.label_name(l), small.name_of(t)) for l, t in small.out_edges(a)
        )
        assert targets == [("x", "b"), ("y", "b")]

    def test_in_edges(self, small):
        b = small.vid("b")
        sources = sorted(
            (small.label_name(l), small.name_of(s)) for l, s in small.in_edges(b)
        )
        assert sources == [("x", "a"), ("y", "a")]

    def test_out_masked_filters_labels(self, small):
        a = small.vid("a")
        mask = small.label_mask(["y"])
        edges = [(l, t) for l, t in small.out_masked(a, mask)]
        assert edges == [(small.label_id("y"), small.vid("b"))]

    def test_out_masked_empty_mask(self, small):
        assert list(small.out_masked(small.vid("a"), 0)) == []

    def test_in_masked(self, small):
        a = small.vid("a")
        mask = small.label_mask(["z"])
        assert [s for _l, s in small.in_masked(a, mask)] == [small.vid("c")]

    def test_edges_with_label(self, small):
        x = small.label_id("x")
        pairs = {(small.name_of(s), small.name_of(t)) for s, t in small.edges_with_label(x)}
        assert pairs == {("a", "b"), ("b", "c")}

    def test_out_labels(self, small):
        a = small.vid("a")
        names = {small.label_name(l) for l in small.out_labels(a)}
        assert names == {"x", "y"}


class TestDegreesAndStats:
    def test_degrees(self, small):
        a, b = small.vid("a"), small.vid("b")
        assert small.out_degree(a) == 2
        assert small.in_degree(a) == 1
        assert small.degree(b) == 3

    def test_label_frequency(self, small):
        assert small.label_frequency(small.label_id("x")) == 2
        assert small.label_frequency(small.label_id("z")) == 1

    def test_density(self, small):
        assert small.density() == pytest.approx(4 / 3)

    def test_density_of_empty_graph(self):
        assert KnowledgeGraph().density() == 0.0

    def test_labels_between(self, small):
        a, b = small.vid("a"), small.vid("b")
        mask = small.labels_between(a, b)
        assert set(small.mask_labels(mask)) == {"x", "y"}
        assert small.labels_between(b, a) == 0

    def test_has_edge_named_unknown_parts(self, small):
        assert not small.has_edge_named("zz", "x", "b")
        assert not small.has_edge_named("a", "nope", "b")
        assert not small.has_edge_named("a", "x", "zz")


class TestEdgeRemoval:
    def test_remove_edge_reverts_all_bookkeeping(self, small):
        a, b = small.vid("a"), small.vid("b")
        x = small.label_id("x")
        assert small.remove_edge("a", "x", "b") is True
        assert not small.has_edge(a, x, b)
        assert small.num_edges == 3
        assert small.out_degree(a) == 1
        assert small.in_degree(b) == 1
        assert b not in small.out_by_label(a, x)
        assert (a, b) not in small.edges_with_label(x)
        assert small.label_frequency(x) == 1
        assert set(small.mask_labels(small.labels_between(a, b))) == {"y"}

    def test_remove_absent_or_unknown_is_false(self, small):
        assert small.remove_edge("a", "x", "c") is False
        assert small.remove_edge("zz", "x", "b") is False
        assert small.remove_edge("a", "nope", "b") is False
        assert small.num_edges == 4

    def test_remove_then_readd_roundtrips(self, small):
        assert small.remove_edge("b", "x", "c")
        assert small.add_edge("b", "x", "c")
        assert small.has_edge_named("b", "x", "c")
        assert small.num_edges == 4

    def test_vertices_survive_removal(self, small):
        small.remove_edge("c", "z", "a")
        assert small.has_vertex("c")
        assert small.label_frequency(small.label_id("z")) == 0
        # Removing a label's last edge drops its per-label bookkeeping
        # entirely (no empty stubs left behind).
        assert small.edges_with_label(small.label_id("z")) == []
        assert small.label_id("z") not in small._by_label


class TestMutationCount:
    def test_effective_mutations_bump_the_counter(self):
        g = KnowledgeGraph()
        assert g.mutation_count == 0
        g.add_edge("a", "x", "b")  # two vertex interns + one edge
        assert g.mutation_count == 3
        before = g.mutation_count
        g.add_edge("a", "x", "b")  # duplicate: no-op
        g.add_vertex("a")  # already interned: no-op
        assert g.mutation_count == before
        g.remove_edge("a", "x", "b")
        assert g.mutation_count == before + 1

    def test_copy_is_independent(self, small):
        clone = small.copy()
        assert clone.num_vertices == small.num_vertices
        assert clone.num_edges == small.num_edges
        assert [clone.vid(n) for n in small.vertex_names()] == list(
            small.vertices()
        )
        clone.add_edge("a", "x", "c")
        clone.add_edge("new", "w", "a")
        assert not small.has_edge_named("a", "x", "c")
        assert not small.has_vertex("new")
        assert "w" not in small.labels
        small.remove_edge("a", "y", "b")
        assert clone.has_edge_named("a", "y", "b")


class TestContentFingerprint:
    def test_equal_graphs_equal_fingerprints(self, small):
        other = graph_from_edges(
            [("a", "x", "b"), ("a", "y", "b"), ("b", "x", "c"), ("c", "z", "a")]
        )
        assert small.content_fingerprint() == other.content_fingerprint()
        assert small.copy().content_fingerprint() == small.content_fingerprint()

    def test_same_sizes_different_edges_differ(self):
        # Identical (|V|, |E|, |L|) but a different adjacency: exactly
        # the case the size-only snapshot identity used to wave through.
        first = graph_from_edges([("a", "x", "b"), ("b", "x", "c")])
        second = graph_from_edges([("a", "x", "b"), ("a", "x", "c")],
                                  vertices=["a", "b", "c"])
        assert first.num_vertices == second.num_vertices
        assert first.num_edges == second.num_edges
        assert first.num_labels == second.num_labels
        assert first.content_fingerprint() != second.content_fingerprint()

    def test_mutation_changes_fingerprint(self, small):
        before = small.content_fingerprint()
        small.remove_edge("a", "x", "b")
        small.add_edge("a", "x", "c")  # same sizes, different edges
        assert small.content_fingerprint() != before

    def test_single_edge_move_on_large_graph_detected(self):
        # Regression: the digest must cover *every* edge — a sampled
        # variant missed a one-edge move on a 2000-vertex chain and
        # false-accepted a stale warm-cache snapshot.
        def build(move_target):
            g = KnowledgeGraph("snap")
            for i in range(2000):
                g.add_vertex(f"n{i}")
            for i in range(1999):
                g.add_edge(f"n{i}", "l", f"n{i + 1}")
            g.remove_edge("n5", "l", "n6")
            g.add_edge("n5", "l", f"n{move_target}")
            return g

        original, moved = build(6), build(100)
        assert original.num_edges == moved.num_edges
        assert original.content_fingerprint() != moved.content_fingerprint()

    def test_fingerprint_is_edge_order_insensitive(self, small):
        # Same interning (vertex and label ids fixed up front), same
        # edge set, different insertion order: identical digest.
        reordered = KnowledgeGraph("test")
        for vertex in ("a", "b", "c"):
            reordered.add_vertex(vertex)
        for label in ("x", "y", "z"):
            reordered.labels.intern(label)
        for edge in [("c", "z", "a"), ("b", "x", "c"), ("a", "y", "b"),
                     ("a", "x", "b")]:
            reordered.add_edge(*edge)
        assert reordered.content_fingerprint() == small.content_fingerprint()
