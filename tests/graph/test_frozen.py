"""FrozenGraph ↔ KnowledgeGraph agreement on every adjacency API.

The CSR snapshot must be observationally identical to the dict-backed
graph it was frozen from — same ids, same neighbors, same per-label
groups (including order: freezing is stable within a label), same
masks, same degrees — because every algorithm and the SPARQL evaluator
treat the two interchangeably.  The suite sweeps randomized graphs and
checks each API pairwise, plus the freeze-specific contracts: mutation
refusal, snapshot caching, and re-freezing after source mutations.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.exceptions import FrozenGraphError
from repro.graph import FrozenGraph, KnowledgeGraph, base_graph, freeze_graph

SEEDS = list(range(12))


def make_pair(seed: int, num_vertices: int = 28, density: float = 2.2,
              num_labels: int = 5):
    graph = random_labeled_graph(
        num_vertices, density, num_labels, rng=seed, name=f"frozen-{seed}"
    )
    return graph, graph.freeze()


def interesting_masks(graph, rng: random.Random):
    """Empty, full, single-label and random masks over the universe."""
    full = graph.labels.full_mask()
    masks = [0, full]
    for label_id in range(graph.num_labels):
        masks.append(1 << label_id)
    for _ in range(6):
        masks.append(rng.randrange(full + 1))
    return masks


class TestAdjacencyAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_masked_expansion_agrees(self, seed):
        graph, frozen = make_pair(seed)
        rng = random.Random(seed * 37 + 1)
        for mask in interesting_masks(graph, rng):
            for v in graph.vertices():
                expected = sorted(w for _l, w in graph.out_masked(v, mask))
                assert sorted(w for _l, w in frozen.out_masked(v, mask)) == expected
                assert sorted(frozen.out_targets_masked(v, mask)) == expected
                assert sorted(graph.out_targets_masked(v, mask)) == expected
                expected_in = sorted(w for _l, w in graph.in_masked(v, mask))
                assert sorted(w for _l, w in frozen.in_masked(v, mask)) == expected_in
                assert sorted(frozen.in_targets_masked(v, mask)) == expected_in

    @pytest.mark.parametrize("seed", SEEDS)
    def test_masked_expansion_pairs_carry_correct_labels(self, seed):
        graph, frozen = make_pair(seed)
        rng = random.Random(seed * 41 + 3)
        for mask in interesting_masks(graph, rng):
            for v in graph.vertices():
                assert sorted(graph.out_masked(v, mask)) == sorted(
                    frozen.out_masked(v, mask)
                )
                assert sorted(graph.in_masked(v, mask)) == sorted(
                    frozen.in_masked(v, mask)
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_by_label_groups_agree_in_order(self, seed):
        # Within one (vertex, label) group the CSR keeps the dict
        # graph's insertion order — lists must be equal, not just
        # equal-as-sets.
        graph, frozen = make_pair(seed)
        for v in graph.vertices():
            for label_id in range(graph.num_labels):
                assert list(frozen.out_by_label(v, label_id)) == list(
                    graph.out_by_label(v, label_id)
                )
                assert list(frozen.in_by_label(v, label_id)) == list(
                    graph.in_by_label(v, label_id)
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edges_and_edge_iterators_agree(self, seed):
        graph, frozen = make_pair(seed)
        assert sorted(frozen.edges()) == sorted(graph.edges())
        assert sorted(frozen.edges_named()) == sorted(graph.edges_named())
        for v in graph.vertices():
            assert sorted(frozen.out_edges(v)) == sorted(graph.out_edges(v))
            assert sorted(frozen.in_edges(v)) == sorted(graph.in_edges(v))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_degrees_masks_and_labels_between_agree(self, seed):
        graph, frozen = make_pair(seed)
        for v in graph.vertices():
            assert frozen.out_degree(v) == graph.out_degree(v)
            assert frozen.in_degree(v) == graph.in_degree(v)
            assert frozen.degree(v) == graph.degree(v)
            assert frozen.out_label_mask(v) == graph.out_label_mask(v)
            assert frozen.in_label_mask(v) == graph.in_label_mask(v)
            assert sorted(frozen.out_labels(v)) == sorted(graph.out_labels(v))
            for label_id in range(graph.num_labels):
                assert frozen.has_out_label(v, label_id) == graph.has_out_label(
                    v, label_id
                )
                assert frozen.has_in_label(v, label_id) == graph.has_in_label(
                    v, label_id
                )
        for s in graph.vertices():
            for t in graph.vertices():
                assert frozen.labels_between(s, t) == graph.labels_between(s, t)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_membership_and_label_frequencies_agree(self, seed):
        graph, frozen = make_pair(seed)
        for s, label_id, t in graph.edges():
            assert frozen.has_edge(s, label_id, t)
        for label_id in range(graph.num_labels):
            assert frozen.label_frequency(label_id) == graph.label_frequency(label_id)
            assert frozen.edges_with_label(label_id) == graph.edges_with_label(label_id)


class TestFreezeSemantics:
    def test_shared_interning_and_schema(self):
        graph, frozen = make_pair(0)
        assert isinstance(frozen, FrozenGraph)
        assert isinstance(frozen, KnowledgeGraph)
        assert frozen.source is graph
        assert base_graph(frozen) is graph
        assert base_graph(graph) is graph
        assert frozen.labels is graph.labels
        assert frozen.schema is graph.schema
        assert frozen.name == graph.name
        for name in graph.vertex_names():
            assert frozen.vid(name) == graph.vid(name)

    def test_freeze_is_cached_and_idempotent(self):
        graph, frozen = make_pair(1)
        assert graph.freeze() is frozen
        assert frozen.freeze() is frozen
        assert freeze_graph(frozen) is frozen
        assert freeze_graph(graph) is frozen

    def test_refreeze_after_mutation_builds_fresh_snapshot(self):
        graph, frozen = make_pair(2)
        graph.add_edge("brand-new", "l0", "n0")
        refrozen = graph.freeze()
        assert refrozen is not frozen
        assert refrozen.has_vertex("brand-new")
        assert refrozen.num_edges == graph.num_edges

    def test_refreeze_after_same_size_mutation_builds_fresh_snapshot(self):
        # The staleness regression: a removal followed by an insertion
        # leaves (|V|, |E|, |L|) identical, so the old size-keyed cache
        # returned the *stale* snapshot with the pre-mutation adjacency.
        # The mutation-counter key must re-freeze.
        graph, frozen = make_pair(6)
        sizes = (graph.num_vertices, graph.num_edges, graph.num_labels)
        removed = next(iter(graph.edges()))
        graph.remove_edge_ids(*removed)
        # Add a *different* absent edge over existing vertices and
        # labels: every size is back to exactly what the cached
        # snapshot was keyed on, but the adjacency differs.
        added = next(
            (s, l, t)
            for s in graph.vertices()
            for l in range(graph.num_labels)
            for t in graph.vertices()
            if (s, l, t) != removed and not graph.has_edge(s, l, t)
        )
        graph.add_edge_ids(*added)
        assert (graph.num_vertices, graph.num_edges, graph.num_labels) == sizes
        refrozen = graph.freeze()
        assert refrozen is not frozen
        assert sorted(refrozen.edges()) == sorted(graph.edges())

    def test_mutation_count_survives_freezing(self):
        graph, frozen = make_pair(7)
        assert frozen.mutation_count == graph.mutation_count
        assert graph.freeze() is frozen  # unchanged counter: cached

    def test_mutation_raises(self):
        _, frozen = make_pair(3)
        with pytest.raises(FrozenGraphError):
            frozen.add_vertex("nope")
        with pytest.raises(FrozenGraphError):
            frozen.add_edge("a", "l0", "b")
        with pytest.raises(FrozenGraphError):
            frozen.add_edge_ids(0, 0, 1)
        with pytest.raises(FrozenGraphError):
            frozen.remove_edge("a", "l0", "b")
        with pytest.raises(FrozenGraphError):
            frozen.remove_edge_ids(0, 0, 1)

    def test_copy_of_frozen_copies_the_source(self):
        graph, frozen = make_pair(8)
        clone = frozen.copy()
        assert not isinstance(clone, FrozenGraph)
        assert sorted(clone.edges()) == sorted(graph.edges())
        clone.add_edge("only-in-clone", "l0", "n0")
        assert not graph.has_vertex("only-in-clone")

    def test_freezing_a_frozen_source_unwraps(self):
        graph, frozen = make_pair(4)
        rewrapped = FrozenGraph(frozen)
        assert rewrapped.source is graph

    def test_empty_graph_freezes(self):
        empty = KnowledgeGraph("empty")
        frozen = empty.freeze()
        assert frozen.num_vertices == 0
        assert list(frozen.edges()) == []

    def test_masked_view_memo_bounded_and_correct(self):
        # Hammer one direction with more distinct masks than the view
        # cap: results stay correct even once materialisation stops.
        graph, frozen = make_pair(5, num_vertices=12, num_labels=6)
        from repro.graph import csr as csr_module

        full = graph.labels.full_mask()
        for mask in range(full + 1):
            for v in graph.vertices():
                assert sorted(frozen.out_targets_masked(v, mask)) == sorted(
                    graph.out_targets_masked(v, mask)
                )
        assert len(frozen._csr_out._mask_views) <= csr_module._MASK_VIEW_LIMIT
