"""Tests for the schema-synchronised graph builder."""

from repro.graph.builder import GraphBuilder
from repro.graph.rdf import RDF_TYPE, RDFS_SUBCLASS_OF


class TestGraphBuilder:
    def test_edge_and_vertex(self):
        g = GraphBuilder().vertex("lonely").edge("a", "x", "b").build()
        assert "lonely" in g
        assert g.has_edge_named("a", "x", "b")

    def test_edges_bulk(self):
        g = GraphBuilder().edges([("a", "x", "b"), ("b", "x", "c")]).build()
        assert g.num_edges == 2

    def test_typed_materialises_edge_and_schema(self):
        g = GraphBuilder().typed("alice", "Person").build()
        assert g.has_edge_named("alice", RDF_TYPE, "Person")
        assert g.schema.is_instance("alice", "Person")

    def test_subclass_materialises_edge_and_schema(self):
        g = GraphBuilder().subclass("Cat", "Animal").build()
        assert g.has_edge_named("Cat", RDFS_SUBCLASS_OF, "Animal")
        assert "Animal" in g.schema.superclasses("Cat")

    def test_no_materialisation_mode(self):
        builder = GraphBuilder(materialise_type_edges=False)
        g = builder.typed("alice", "Person").subclass("Cat", "Animal").build()
        assert g.num_edges == 0
        assert g.schema.is_instance("alice", "Person")

    def test_declare_class_adds_vertex(self):
        g = GraphBuilder().declare_class("Person").build()
        assert "Person" in g
        assert g.schema.has_class("Person")

    def test_domain_range_registered(self):
        builder = GraphBuilder().domain("teaches", "Faculty").range("teaches", "Course")
        assert builder.schema.domain_of("teaches") == "Faculty"
        assert builder.schema.range_of("teaches") == "Course"

    def test_builder_is_fluent(self):
        builder = GraphBuilder()
        assert builder.edge("a", "x", "b") is builder
        assert builder.typed("a", "T") is builder

    def test_schema_attached_to_graph(self):
        builder = GraphBuilder()
        g = builder.build()
        assert g.schema is builder.schema
