"""Tests for the label universe and bitmask helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import LabelNotFoundError
from repro.graph.labels import LabelUniverse, iter_mask_bits, mask_is_subset, popcount


class TestLabelUniverse:
    def test_intern_assigns_sequential_ids(self):
        universe = LabelUniverse()
        assert universe.intern("a") == 0
        assert universe.intern("b") == 1
        assert universe.intern("c") == 2

    def test_intern_is_idempotent(self):
        universe = LabelUniverse()
        first = universe.intern("a")
        assert universe.intern("a") == first
        assert len(universe) == 1

    def test_id_of_unknown_label_raises(self):
        universe = LabelUniverse()
        with pytest.raises(LabelNotFoundError):
            universe.id_of("missing")

    def test_name_of_out_of_range_raises(self):
        universe = LabelUniverse()
        universe.intern("a")
        with pytest.raises(LabelNotFoundError):
            universe.name_of(5)
        with pytest.raises(LabelNotFoundError):
            universe.name_of(-1)

    def test_roundtrip_name_id(self):
        universe = LabelUniverse()
        for name in ("x", "y", "z"):
            universe.intern(name)
        for name in ("x", "y", "z"):
            assert universe.name_of(universe.id_of(name)) == name

    def test_contains_and_iter(self):
        universe = LabelUniverse()
        universe.intern("likes")
        assert "likes" in universe
        assert "hates" not in universe
        assert list(universe) == ["likes"]

    def test_mask_of_combines_bits(self):
        universe = LabelUniverse()
        universe.intern("a")
        universe.intern("b")
        universe.intern("c")
        assert universe.mask_of(["a", "c"]) == 0b101

    def test_mask_of_unknown_label_raises(self):
        universe = LabelUniverse()
        with pytest.raises(LabelNotFoundError):
            universe.mask_of(["nope"])

    def test_mask_of_ids(self):
        universe = LabelUniverse()
        assert universe.mask_of_ids([0, 3]) == 0b1001

    def test_full_mask_grows_with_universe(self):
        universe = LabelUniverse()
        assert universe.full_mask() == 0
        universe.intern("a")
        assert universe.full_mask() == 0b1
        universe.intern("b")
        assert universe.full_mask() == 0b11

    def test_labels_in_mask_decodes_in_id_order(self):
        universe = LabelUniverse()
        for name in ("a", "b", "c", "d"):
            universe.intern(name)
        assert universe.labels_in_mask(0b1010) == ("b", "d")

    def test_names_snapshot(self):
        universe = LabelUniverse()
        universe.intern("a")
        universe.intern("b")
        assert universe.names() == ("a", "b")


class TestMaskHelpers:
    def test_subset_basics(self):
        assert mask_is_subset(0b001, 0b011)
        assert mask_is_subset(0b011, 0b011)
        assert not mask_is_subset(0b100, 0b011)
        assert mask_is_subset(0, 0)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_iter_mask_bits(self):
        assert list(iter_mask_bits(0)) == []
        assert list(iter_mask_bits(0b10110)) == [1, 2, 4]

    @given(st.integers(min_value=0, max_value=2**70), st.integers(min_value=0, max_value=2**70))
    def test_subset_matches_set_semantics(self, a, b):
        expected = set(iter_mask_bits(a)) <= set(iter_mask_bits(b))
        assert mask_is_subset(a, b) == expected

    @given(st.integers(min_value=0, max_value=2**70))
    def test_popcount_matches_bits(self, mask):
        assert popcount(mask) == len(list(iter_mask_bits(mask)))

    @given(st.sets(st.integers(min_value=0, max_value=80)))
    def test_iter_mask_roundtrip(self, bits):
        mask = 0
        for bit in bits:
            mask |= 1 << bit
        assert set(iter_mask_bits(mask)) == bits
