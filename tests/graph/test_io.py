"""Tests for graph serialisation (TSV and N-Triples)."""

import io

import pytest

from repro.exceptions import GraphError
from repro.graph.io import (
    dump_ntriples,
    dump_tsv,
    dumps_tsv,
    load_ntriples,
    load_tsv,
    loads_tsv,
)
from tests.helpers import graph_from_edges

EDGES = [
    ("alice", "rdf:type", "Person"),
    ("Cat", "rdfs:subClassOf", "Animal"),
    ("alice", "knows", "bob"),
]


class TestTsv:
    def test_roundtrip_string(self):
        g = graph_from_edges(EDGES)
        text = dumps_tsv(g)
        back = loads_tsv(text)
        assert set(back.edges_named()) == set(g.edges_named())

    def test_roundtrip_file(self, tmp_path):
        g = graph_from_edges(EDGES)
        path = tmp_path / "g.tsv"
        dump_tsv(g, path)
        back = load_tsv(path, name="reloaded")
        assert back.name == "reloaded"
        assert set(back.edges_named()) == set(g.edges_named())

    def test_roundtrip_handles(self):
        g = graph_from_edges(EDGES)
        buffer = io.StringIO()
        dump_tsv(g, buffer)
        back = load_tsv(io.StringIO(buffer.getvalue()))
        assert back.num_edges == g.num_edges

    def test_schema_rebuilt(self):
        back = loads_tsv(dumps_tsv(graph_from_edges(EDGES)))
        assert back.schema.is_instance("alice", "Person")
        assert "Animal" in back.schema.superclasses("Cat")

    def test_schema_rebuild_disabled(self):
        back = loads_tsv(dumps_tsv(graph_from_edges(EDGES)), rebuild_schema=False)
        assert not back.schema.is_instance("alice", "Person")

    def test_comments_and_blank_lines_skipped(self):
        back = loads_tsv("# comment\n\na\tx\tb\n")
        assert back.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError, match="line 1"):
            loads_tsv("only two\tfields\n")


class TestNTriples:
    def test_roundtrip(self, tmp_path):
        g = graph_from_edges(EDGES)
        path = tmp_path / "g.nt"
        dump_ntriples(g, path)
        back = load_ntriples(path)
        assert set(back.edges_named()) == set(g.edges_named())

    def test_iris_expanded_on_disk(self, tmp_path):
        g = graph_from_edges([("a", "rdf:type", "b")])
        path = tmp_path / "g.nt"
        dump_ntriples(g, path)
        content = path.read_text()
        assert "22-rdf-syntax-ns#type" in content

    def test_schema_rebuilt(self, tmp_path):
        g = graph_from_edges(EDGES)
        path = tmp_path / "g.nt"
        dump_ntriples(g, path)
        back = load_ntriples(path)
        assert back.schema.is_instance("alice", "Person")

    def test_literal_terms_parsed(self):
        back = load_ntriples(io.StringIO('<a> <p> "some literal" .\n'))
        assert back.has_edge_named("a", "p", "some literal")

    def test_missing_dot_raises(self):
        with pytest.raises(GraphError, match="does not end"):
            load_ntriples(io.StringIO("<a> <p> <b>\n"))

    def test_unterminated_iri_raises(self):
        with pytest.raises(GraphError, match="unterminated IRI"):
            load_ntriples(io.StringIO("<a> <p <b .\n"))

    def test_wrong_term_count_raises(self):
        with pytest.raises(GraphError, match="expected 3 terms"):
            load_ntriples(io.StringIO("<a> <b> .\n"))
