"""Tests for the plain random-graph generators."""

import pytest

from repro.datasets.synthetic import (
    cycle_graph,
    line_graph,
    random_labeled_graph,
    star_graph,
)
from repro.exceptions import GraphError


class TestRandomLabeledGraph:
    def test_hits_target_density(self):
        g = random_labeled_graph(100, 2.5, 4, rng=0)
        assert g.num_edges == 250
        assert g.num_vertices == 100

    def test_deterministic(self):
        a = random_labeled_graph(50, 2.0, 3, rng=9)
        b = random_labeled_graph(50, 2.0, 3, rng=9)
        assert set(a.edges_named()) == set(b.edges_named())

    def test_labels_bounded(self):
        g = random_labeled_graph(30, 1.5, 2, rng=0)
        assert set(g.labels) <= {"l0", "l1"}

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            random_labeled_graph(0, 1.0, 1)

    def test_impossible_density_rejected(self):
        with pytest.raises(GraphError, match="density"):
            random_labeled_graph(2, 100.0, 1)


class TestFixedShapes:
    def test_line(self):
        g = line_graph(4)
        assert g.num_vertices == 5
        assert g.num_edges == 4

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.has_edge_named("n3", "next", "n0")

    def test_cycle_length_one(self):
        g = cycle_graph(1)
        assert g.has_edge_named("n0", "next", "n0")

    def test_cycle_invalid(self):
        with pytest.raises(GraphError):
            cycle_graph(0)

    def test_star_outward(self):
        g = star_graph(3)
        assert g.out_degree(g.vid("hub")) == 3

    def test_star_inward(self):
        g = star_graph(3, inward=True)
        assert g.in_degree(g.vid("hub")) == 3
