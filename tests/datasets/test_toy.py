"""Tests for the paper-example fixtures."""

from repro.datasets.toy import (
    FIGURE3_EDGES,
    figure1_financial_graph,
    figure3_constraint,
    figure3_graph,
)


class TestFigure3:
    def test_edge_set(self):
        g = figure3_graph()
        assert set(g.edges_named()) == set(FIGURE3_EDGES)
        assert g.num_vertices == 5

    def test_labels(self):
        g = figure3_graph()
        assert set(g.labels) == {"friendOf", "advisorOf", "likes", "follows", "hates"}

    def test_constraint_designates_x(self):
        c = figure3_constraint()
        assert c.variable == "x"
        assert c.size == 2


class TestFigure1:
    def test_people_are_typed(self):
        g = figure1_financial_graph()
        assert g.schema.is_instance("C", "Person")
        assert g.schema.is_instance("Amy", "Person")

    def test_criminal_chain_exists(self):
        g = figure1_financial_graph()
        assert g.has_edge_named("C", "2019-04", "m1")
        assert g.has_edge_named("m1", "2019-04", "m2")
        assert g.has_edge_named("m2", "2019-04", "P")
        assert g.has_edge_named("m2", "marriedTo", "Amy")

    def test_decoys_break_the_pattern(self):
        g = figure1_financial_graph()
        # the m3 decoy leaves April
        assert g.has_edge_named("m3", "2019-03", "P")
        # the m4 decoy has no married middleman
        assert not g.has_edge_named("m4", "marriedTo", "Amy")
