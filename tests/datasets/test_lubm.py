"""Tests for the LUBM-like generator and the S1-S5 selectivities."""

import pytest

from repro.datasets.lubm import (
    SCALED_DATASETS,
    LubmConfig,
    constraint,
    generate_dataset,
    generate_lubm,
)
from repro.datasets.lubm import ontology as ub


@pytest.fixture(scope="module")
def d1():
    return generate_dataset("D1", rng=0)


class TestGenerator:
    def test_deterministic(self):
        a = generate_lubm(2, rng=7)
        b = generate_lubm(2, rng=7)
        assert set(a.edges_named()) == set(b.edges_named())

    def test_different_seeds_differ(self):
        a = generate_lubm(2, rng=1)
        b = generate_lubm(2, rng=2)
        assert set(a.edges_named()) != set(b.edges_named())

    def test_scale_grows_linearly(self):
        sizes = [generate_lubm(d, rng=0).num_vertices for d in (2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]
        # roughly proportional to departments
        assert sizes[2] / sizes[1] == pytest.approx(2.0, rel=0.25)

    def test_density_near_paper(self, d1):
        # the paper's D = |E|/|V| is ~3.55 on LUBM
        assert 2.5 <= d1.density() <= 5.0

    def test_schema_populated(self, d1):
        schema = d1.schema
        assert schema.is_instance("University0", ub.UNIVERSITY)
        assert "ub:Professor" in schema.superclasses(ub.FULL_PROFESSOR)
        assert schema.domain_of(ub.P_TAKES_COURSE) == "ub:Student"

    def test_department_structure(self, d1):
        assert d1.has_edge_named(
            "Department0.University0", ub.P_SUB_ORGANIZATION_OF, "University0"
        )
        prof = "Department0.University0/FullProfessor0"
        assert d1.has_edge_named(prof, ub.P_WORKS_FOR, "Department0.University0")
        assert d1.has_edge_named(
            prof, ub.P_EMAIL, "FullProfessor0@Department0.University0.edu"
        )

    def test_every_graduate_has_advisor(self, d1):
        advisor = d1.label_id(ub.P_ADVISOR)
        for instance in d1.schema.instances_of(ub.GRADUATE_STUDENT, False):
            assert d1.out_by_label(d1.vid(instance), advisor)

    def test_alumni_close_cycles(self, d1):
        assert d1.label_frequency(d1.label_id("ub:hasAlumnus")) > 0

    def test_dataset_names(self):
        assert list(SCALED_DATASETS) == ["D0", "D1", "D2", "D3", "D4", "D5"]
        with pytest.raises(KeyError):
            generate_dataset("D9")


class TestSelectivities:
    """The Table 3 constraint selectivity ratios (Section 6.1)."""

    @pytest.fixture(scope="class")
    def counts(self):
        graph = generate_dataset("D2", rng=0)
        return graph, {
            name: len(constraint(name).satisfying_vertices(graph))
            for name in ("S1", "S2", "S3", "S4", "S5")
        }

    def test_s1_about_one_per_department(self, counts):
        _graph, c = counts
        departments = SCALED_DATASETS["D2"]
        assert 0.3 * departments <= c["S1"] <= 3 * departments

    def test_s2_about_half_of_s1(self, counts):
        _graph, c = counts
        assert 0 < c["S2"] <= c["S1"]

    def test_s3_much_larger_than_s1(self, counts):
        _graph, c = counts
        assert c["S3"] >= 10 * c["S1"]

    def test_s4_one_per_department(self, counts):
        _graph, c = counts
        assert c["S4"] == SCALED_DATASETS["D2"]

    def test_s5_exactly_one(self, counts):
        _graph, c = counts
        assert c["S5"] == 1

    def test_custom_config_respected(self):
        config = LubmConfig(undergraduates=5, graduates=5, publications=2)
        graph = generate_lubm(1, rng=0, config=config)
        undergrads = graph.schema.instances_of("ub:UndergraduateStudent", False)
        assert len(undergrads) == 5
