"""Tests for the YAGO-like scale-free generator."""

import pytest

from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.graph.stats import graph_stats


@pytest.fixture(scope="module")
def yago():
    return generate_yago_like(YagoConfig(num_entities=600), rng=0)


class TestShape:
    def test_size_near_target(self, yago):
        config = YagoConfig(num_entities=600)
        # entities + class vertices; relation edges + rdf:type edges
        assert yago.num_vertices >= config.num_entities
        relation_edges = sum(
            yago.label_frequency(yago.label_id(r))
            for r in config.relations
            if r in yago.labels
        )
        assert relation_edges == pytest.approx(
            config.density * config.num_entities, rel=0.05
        )

    def test_deterministic(self):
        a = generate_yago_like(YagoConfig(num_entities=200), rng=5)
        b = generate_yago_like(YagoConfig(num_entities=200), rng=5)
        assert set(a.edges_named()) == set(b.edges_named())

    def test_scale_free_profile(self, yago):
        # preferential attachment must beat a uniform random graph's
        # concentration: heavy-tailed in-degree
        stats = graph_stats(yago)
        assert stats.degree_gini > 0.25
        assert stats.max_in_degree > 20

    def test_no_self_loops_in_relations(self, yago):
        for s, label, t in yago.edges_named():
            if str(label).startswith("yago:"):
                assert s != t


class TestSchemaLayer:
    def test_entities_typed(self, yago):
        typed = list(yago.schema.typed_instances())
        entity_typed = [e for e in typed if str(e).startswith("yago:e")]
        assert len(entity_typed) == 600

    def test_taxonomy_present(self, yago):
        assert "yago:Entity" in yago.schema.superclasses("yago:City")
        assert "yago:Person" in yago.schema.superclasses("yago:Artist")

    def test_type_edges_materialised(self, yago):
        # rdf:type edges exist in the graph itself (needed by constraints)
        assert yago.label_frequency(yago.label_id("rdf:type")) >= 600

    def test_zipf_label_frequencies(self, yago):
        config = YagoConfig()
        first = yago.label_frequency(yago.label_id(config.relations[0]))
        last_label = config.relations[-1]
        last = (
            yago.label_frequency(yago.label_id(last_label))
            if last_label in yago.labels
            else 0
        )
        assert first > last
