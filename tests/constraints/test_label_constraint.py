"""Tests for label constraints."""

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.exceptions import ConstraintError
from tests.helpers import graph_from_edges


class TestConstruction:
    def test_basic(self):
        constraint = LabelConstraint(["a", "b"])
        assert len(constraint) == 2
        assert "a" in constraint
        assert "c" not in constraint

    def test_duplicates_collapse(self):
        assert len(LabelConstraint(["a", "a", "b"])) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConstraintError):
            LabelConstraint([])

    def test_iteration_sorted(self):
        assert list(LabelConstraint(["c", "a", "b"])) == ["a", "b", "c"]

    def test_equality_and_hash(self):
        assert LabelConstraint(["a", "b"]) == LabelConstraint(["b", "a"])
        assert hash(LabelConstraint(["a"])) == hash(LabelConstraint(["a"]))
        assert LabelConstraint(["a"]) != LabelConstraint(["b"])

    def test_repr(self):
        assert "a" in repr(LabelConstraint(["a"]))


class TestMask:
    def test_mask_for_graph(self):
        g = graph_from_edges([("u", "a", "v"), ("u", "b", "v"), ("u", "c", "v")])
        constraint = LabelConstraint(["a", "c"])
        mask = constraint.mask_for(g)
        assert mask == g.label_mask(["a", "c"])

    def test_unknown_labels_dropped_by_default(self):
        g = graph_from_edges([("u", "a", "v")])
        mask = LabelConstraint(["a", "zz"]).mask_for(g)
        assert mask == g.label_mask(["a"])

    def test_unknown_labels_strict(self):
        g = graph_from_edges([("u", "a", "v")])
        with pytest.raises(ConstraintError):
            LabelConstraint(["zz"]).mask_for(g, strict=True)

    def test_all_unknown_mask_is_zero(self):
        g = graph_from_edges([("u", "a", "v")])
        assert LabelConstraint(["zz"]).mask_for(g) == 0


class TestSetOperations:
    def test_union(self):
        joined = LabelConstraint(["a"]).union(LabelConstraint(["b"]))
        assert joined == LabelConstraint(["a", "b"])

    def test_is_subset_of(self):
        assert LabelConstraint(["a"]).is_subset_of(LabelConstraint(["a", "b"]))
        assert not LabelConstraint(["a", "c"]).is_subset_of(LabelConstraint(["a", "b"]))
