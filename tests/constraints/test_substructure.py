"""Tests for substructure constraints and SCck."""

import pytest

from repro.constraints.substructure import SubstructureChecker, SubstructureConstraint
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.exceptions import ConstraintError
from repro.sparql.ast import TriplePattern, Var
from tests.helpers import graph_from_edges


class TestConstruction:
    def test_from_sparql_infers_variable(self):
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <likes> ?y . }"
        )
        assert constraint.variable == "x"

    def test_from_sparql_explicit_variable(self):
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?a ?b WHERE { ?a <likes> ?b . }", variable="b"
        )
        assert constraint.variable == "b"

    def test_from_sparql_ambiguous_projection_rejected(self):
        with pytest.raises(ConstraintError, match="exactly one"):
            SubstructureConstraint.from_sparql("SELECT ?a ?b WHERE { ?a <p> ?b . }")

    def test_variable_must_occur(self):
        with pytest.raises(ConstraintError, match="does not occur"):
            SubstructureConstraint([TriplePattern(Var("y"), "p", "v")], variable="x")

    def test_empty_patterns_rejected(self):
        with pytest.raises(ConstraintError, match="at least one"):
            SubstructureConstraint([])

    def test_from_parts(self):
        constraint = SubstructureConstraint.from_parts(
            concrete_edges=[("v3", "likes", "v4")],
            variable_edges=[TriplePattern(Var("x"), "friendOf", "v3")],
        )
        assert constraint.size == 2

    def test_equality_and_hash(self):
        a = figure3_constraint()
        b = figure3_constraint()
        assert a == b
        assert hash(a) == hash(b)

    def test_sparql_roundtrip(self):
        constraint = figure3_constraint()
        again = SubstructureConstraint.from_sparql(constraint.to_sparql())
        assert again == SubstructureConstraint(constraint.patterns, constraint.variable)

    def test_variables_designated_first(self):
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?y <p> ?x . ?y <q> ?z . }", variable="x"
        )
        assert constraint.variables()[0] == Var("x")


class TestEvaluation:
    def test_figure3_satisfying_vertices(self):
        g = figure3_graph()
        constraint = figure3_constraint()
        names = sorted(g.name_of(v) for v in constraint.satisfying_vertices(g))
        assert names == ["v1", "v2"]  # the paper's V(S0, G0)

    def test_satisfied_by_individual_vertices(self):
        g = figure3_graph()
        constraint = figure3_constraint()
        assert constraint.satisfied_by(g, g.vid("v1"))
        assert constraint.satisfied_by(g, g.vid("v2"))
        assert not constraint.satisfied_by(g, g.vid("v0"))
        assert not constraint.satisfied_by(g, g.vid("v3"))

    def test_every_pattern_must_match(self):
        # E_? semantics (DESIGN.md §5.2): v3 with no likes-edge fails S0.
        g = graph_from_edges([("v1", "friendOf", "v3")])
        constraint = figure3_constraint()
        assert constraint.satisfying_vertices(g) == []

    def test_constraint_on_unrelated_graph_is_empty(self):
        g = graph_from_edges([("a", "other", "b")])
        assert figure3_constraint().satisfying_vertices(g) == []


class TestChecker:
    def test_counts_calls(self):
        g = figure3_graph()
        checker = SubstructureChecker(g, figure3_constraint())
        checker(g.vid("v1"))
        checker(g.vid("v1"))
        checker(g.vid("v0"))
        assert checker.calls == 3

    def test_memoises_verdicts(self):
        g = figure3_graph()
        checker = SubstructureChecker(g, figure3_constraint())
        assert checker(g.vid("v1")) is True
        assert checker(g.vid("v1")) is True
        assert len(checker._cache) == 1

    def test_unsatisfiable_constraint_short_circuits(self):
        g = graph_from_edges([("a", "p", "b")])
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <nonexistent> ?y . }"
        )
        checker = SubstructureChecker(g, constraint)
        assert checker(g.vid("a")) is False
        assert checker._unsatisfiable

    def test_checker_matches_satisfied_by(self):
        g = figure3_graph()
        constraint = figure3_constraint()
        checker = SubstructureChecker(g, constraint)
        for v in g.vertices():
            assert checker(v) == constraint.satisfied_by(g, v)
