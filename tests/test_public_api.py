"""The README quickstart and public-API surface, pinned."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart(self):
        g = (
            repro.GraphBuilder("example")
            .edge("v0", "friendOf", "v1")
            .edge("v1", "friendOf", "v3")
            .edge("v3", "likes", "v4")
            .build()
        )
        query = repro.LSCRQuery.create(
            "v0",
            "v4",
            ["friendOf", "likes"],
            "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }",
        )
        result = repro.UIS(g).answer(query)
        assert result.answer is True
        assert result.passed_vertices >= 1

    def test_all_algorithms_importable_from_root(self):
        for cls in (repro.UIS, repro.UISStar, repro.INS, repro.NaiveTwoProcedure):
            assert issubclass(cls, repro.LSCRAlgorithm)

    def test_exception_hierarchy(self):
        from repro import exceptions

        for name in (
            "GraphError",
            "SparqlError",
            "ConstraintError",
            "IndexingError",
            "WorkloadError",
            "BenchmarkError",
        ):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)
