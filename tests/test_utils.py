"""Tests for the utility helpers."""

import random
import time

import pytest

from repro.exceptions import ReproError
from repro.utils.rng import derive_rng, make_rng
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import require


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_make_rng_none_works(self):
        assert 0.0 <= make_rng(None).random() < 1.0

    def test_derive_rng_deterministic(self):
        a = derive_rng(7, "landmarks").random()
        b = derive_rng(7, "landmarks").random()
        assert a == b

    def test_derive_rng_salts_decorrelate(self):
        a = derive_rng(7, "landmarks").random()
        b = derive_rng(7, "queries").random()
        assert a != b

    def test_derive_advances_parent_once(self):
        parent = random.Random(3)
        derive_rng(parent, "x")
        after_one = random.Random(3)
        after_one.getrandbits(64)
        assert parent.random() == after_one.random()


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_stopwatch_no_budget_never_over(self):
        watch = Stopwatch()
        assert not watch.over_budget()

    def test_stopwatch_budget(self):
        watch = Stopwatch(budget_seconds=0.001)
        time.sleep(0.01)
        assert watch.over_budget()
        assert watch.elapsed >= 0.009


class TestValidation:
    def test_passes_silently(self):
        require(True, "fine")

    def test_raises_default(self):
        with pytest.raises(ReproError, match="broken"):
            require(False, "broken")

    def test_raises_custom_type(self):
        with pytest.raises(ValueError):
            require(False, "broken", ValueError)
