"""Tests for the utility helpers."""

import json
import os
import random
import time

import pytest

from repro.exceptions import ReproError
from repro.utils.rng import derive_rng, make_rng
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import require


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_make_rng_none_works(self):
        assert 0.0 <= make_rng(None).random() < 1.0

    def test_derive_rng_deterministic(self):
        a = derive_rng(7, "landmarks").random()
        b = derive_rng(7, "landmarks").random()
        assert a == b

    def test_derive_rng_salts_decorrelate(self):
        a = derive_rng(7, "landmarks").random()
        b = derive_rng(7, "queries").random()
        assert a != b

    def test_derive_advances_parent_once(self):
        parent = random.Random(3)
        derive_rng(parent, "x")
        after_one = random.Random(3)
        after_one.getrandbits(64)
        assert parent.random() == after_one.random()


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_stopwatch_no_budget_never_over(self):
        watch = Stopwatch()
        assert not watch.over_budget()

    def test_stopwatch_budget(self):
        watch = Stopwatch(budget_seconds=0.001)
        time.sleep(0.01)
        assert watch.over_budget()
        assert watch.elapsed >= 0.009


class TestValidation:
    def test_passes_silently(self):
        require(True, "fine")

    def test_raises_default(self):
        with pytest.raises(ReproError, match="broken"):
            require(False, "broken")

    def test_raises_custom_type(self):
        with pytest.raises(ValueError):
            require(False, "broken", ValueError)


class TestPersist:
    """atomic_write_json: atomic *and* durable (fsync file + directory)."""

    def test_roundtrip_and_size(self, tmp_path):
        from repro.utils.persist import atomic_write_json

        path = tmp_path / "doc.json"
        size = atomic_write_json({"a": [1, 2]}, path)
        assert size == path.stat().st_size > 0
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_overwrite_leaves_no_scratch_files(self, tmp_path):
        from repro.utils.persist import atomic_write_json

        path = tmp_path / "doc.json"
        atomic_write_json({"v": 1}, path)
        atomic_write_json({"v": 2}, path)
        assert json.loads(path.read_text()) == {"v": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failed_serialisation_preserves_previous_version(self, tmp_path):
        from repro.utils.persist import atomic_write_json

        path = tmp_path / "doc.json"
        atomic_write_json({"v": 1}, path)
        with pytest.raises(TypeError):
            atomic_write_json({"v": object()}, path)  # not JSON-serialisable
        assert json.loads(path.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        # The durability fix: os.replace alone survives a process crash
        # but not power loss.  Both the scratch file's contents and the
        # directory entry must be fsynced.
        import repro.utils.persist as persist

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            persist.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        persist.atomic_write_json({"v": 1}, tmp_path / "doc.json")
        assert len(synced) >= 2  # scratch file + parent directory

    def test_fsync_directory_tolerates_unsyncable_paths(self, tmp_path):
        from repro.utils.persist import fsync_directory

        fsync_directory(tmp_path)  # a real directory: no error
        fsync_directory(tmp_path / "does-not-exist")  # swallowed OSError
