"""Tests for the exception hierarchy contracts."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(exc):
            obj = getattr(exc, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not exc.ReproError:
                    assert issubclass(obj, exc.ReproError), name

    def test_lookup_errors_are_also_key_errors(self):
        # callers can catch either the library type or the builtin
        assert issubclass(exc.VertexNotFoundError, KeyError)
        assert issubclass(exc.LabelNotFoundError, KeyError)

    def test_vertex_not_found_carries_vertex(self):
        error = exc.VertexNotFoundError("v99")
        assert error.vertex == "v99"
        assert "v99" in str(error)

    def test_label_not_found_carries_label(self):
        error = exc.LabelNotFoundError("knows")
        assert error.label == "knows"

    def test_sparql_syntax_error_position(self):
        error = exc.SparqlSyntaxError("bad token", position=7)
        assert error.position == 7
        assert "offset 7" in str(error)

    def test_sparql_syntax_error_without_position(self):
        error = exc.SparqlSyntaxError("bad token")
        assert error.position is None
        assert "offset" not in str(error)

    def test_budget_exceeded_carries_both_times(self):
        error = exc.IndexingBudgetExceeded(12.5, 10.0)
        assert error.elapsed_seconds == 12.5
        assert error.budget_seconds == 10.0
        assert "12.5" in str(error)


class TestCatchability:
    def test_single_catch_point(self):
        with pytest.raises(exc.ReproError):
            raise exc.WorkloadError("nope")
        with pytest.raises(exc.ReproError):
            raise exc.SparqlEvaluationError("nope")
        with pytest.raises(exc.ReproError):
            raise exc.IndexingBudgetExceeded(1.0, 0.5)
