"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import pytest

from repro.constraints.substructure import SubstructureConstraint
from repro.datasets.lubm import generate_dataset
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.graph.labeled_graph import KnowledgeGraph


@pytest.fixture()
def g0() -> KnowledgeGraph:
    """The Figure 3 running-example graph."""
    return figure3_graph()


@pytest.fixture()
def s0() -> SubstructureConstraint:
    """The Figure 3 substructure constraint S0."""
    return figure3_constraint()


@pytest.fixture(scope="session")
def lubm_d0() -> KnowledgeGraph:
    """A small LUBM-like dataset shared across tests (read-only)."""
    return generate_dataset("D0", rng=0)
