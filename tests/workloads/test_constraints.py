"""Tests for the Section 6.2 magnitude-controlled constraint generator."""

import pytest

from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.exceptions import WorkloadError
from repro.workloads.constraints import random_constraint_with_magnitude


@pytest.fixture(scope="module")
def yago():
    return generate_yago_like(YagoConfig(num_entities=500), rng=0)


class TestMagnitudeControl:
    @pytest.mark.parametrize("magnitude", [10, 40, 100])
    def test_cardinality_lands_in_window(self, yago, magnitude):
        result = random_constraint_with_magnitude(yago, magnitude, rng=magnitude)
        if result.in_window:
            assert 0.8 * magnitude <= result.cardinality <= 1.2 * magnitude + 1
        # even out-of-window best-effort results must be measured honestly
        measured = len(result.constraint.satisfying_vertices(yago))
        assert measured == result.cardinality

    def test_deterministic(self, yago):
        a = random_constraint_with_magnitude(yago, 20, rng=3)
        b = random_constraint_with_magnitude(yago, 20, rng=3)
        assert a.constraint == b.constraint
        assert a.cardinality == b.cardinality

    def test_constraint_designates_x(self, yago):
        result = random_constraint_with_magnitude(yago, 15, rng=1)
        assert result.constraint.variable == "x"

    def test_magnitude_one(self, yago):
        result = random_constraint_with_magnitude(yago, 1, rng=2)
        assert result.cardinality >= 0

    def test_strict_raises_when_unreachable(self):
        from tests.helpers import graph_from_edges

        # a 3-vertex graph cannot produce |V(S,G)| ≈ 1000
        g = graph_from_edges([("a", "p", "b"), ("b", "p", "c")])
        with pytest.raises(WorkloadError):
            random_constraint_with_magnitude(
                g, 1000, rng=0, max_steps=5, max_restarts=2, strict=True
            )

    def test_best_effort_returns_closest(self):
        from tests.helpers import graph_from_edges

        g = graph_from_edges([("a", "p", "b"), ("b", "p", "c"), ("c", "p", "a")])
        result = random_constraint_with_magnitude(
            g, 1000, rng=0, max_steps=5, max_restarts=2, strict=False
        )
        assert not result.in_window
        assert result.cardinality <= 3
