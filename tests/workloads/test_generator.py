"""Tests for the Section 6.1.1 workload generator."""

import pytest

from repro.core.naive import NaiveTwoProcedure
from repro.datasets.lubm import constraint, generate_dataset
from repro.exceptions import WorkloadError
from repro.workloads.generator import (
    FALSE_TYPES,
    generate_workload,
    label_bucket_bounds,
    tree_size_window,
)


@pytest.fixture(scope="module")
def d1():
    return generate_dataset("D1", rng=0)


@pytest.fixture(scope="module")
def workload(d1):
    return generate_workload(d1, constraint("S1"), num_true=6, num_false=6, rng=1)


class TestBucketBounds:
    def test_paper_ranges_for_large_universe(self):
        # t = 100: buckets [20,39], [40,59], [60,80]
        assert label_bucket_bounds(100, 0) == (20, 39)
        assert label_bucket_bounds(100, 1) == (40, 59)
        assert label_bucket_bounds(100, 2) == (60, 80)

    def test_small_universe_never_empty(self):
        for t in (1, 2, 3, 5):
            for bucket in range(3):
                low, high = label_bucket_bounds(t, bucket)
                assert 1 <= low <= high <= t

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            label_bucket_bounds(10, 3)


class TestTreeSizeWindow:
    def test_paper_regime(self):
        # |V| = 10^6: low = 10*log2(10^6) ≈ 199, high ≈ 5017
        low, high = tree_size_window(10**6)
        assert low == 199
        assert high == 5017

    def test_inverted_window_collapses(self):
        low, high = tree_size_window(500)
        assert 1 <= low <= high

    def test_tiny_graph(self):
        assert tree_size_window(1) == (1, 1)


class TestGeneratedQueries:
    def test_counts_requested(self, workload):
        assert 1 <= len(workload.true_queries) <= 6
        assert 1 <= len(workload.false_queries) <= 6

    def test_expected_answers_verified_by_oracle(self, d1, workload):
        naive = NaiveTwoProcedure(d1)
        for item in workload.all_queries():
            assert naive.decide(item.query) == item.expected

    def test_label_sizes_inside_buckets(self, d1, workload):
        universe = d1.num_labels
        for item in workload.all_queries():
            low, high = label_bucket_bounds(universe, item.label_bucket)
            assert low <= len(item.query.labels) <= high

    def test_false_queries_classified(self, workload):
        for item in workload.false_queries:
            assert item.false_type in FALSE_TYPES + ("conjunction_blocked",)

    def test_true_queries_have_no_false_type(self, workload):
        for item in workload.true_queries:
            assert item.false_type is None

    def test_tree_sizes_recorded(self, workload):
        for item in workload.all_queries():
            assert item.tree_size >= 1

    def test_deterministic(self, d1):
        a = generate_workload(d1, constraint("S1"), 3, 3, rng=5, max_attempts=2000)
        b = generate_workload(d1, constraint("S1"), 3, 3, rng=5, max_attempts=2000)
        assert [q.query for q in a.all_queries()] == [q.query for q in b.all_queries()]

    def test_strict_raises_on_shortfall(self, d1):
        with pytest.raises(WorkloadError):
            generate_workload(
                d1, constraint("S1"), 500, 500, rng=0, max_attempts=20, strict=True
            )

    def test_tiny_graph_rejected(self):
        from repro.graph.labeled_graph import KnowledgeGraph

        g = KnowledgeGraph()
        g.add_vertex("only")
        with pytest.raises(WorkloadError):
            generate_workload(g, constraint("S1"), 1, 1, rng=0)

    def test_unlabelled_graph_rejected(self):
        from repro.graph.labeled_graph import KnowledgeGraph

        g = KnowledgeGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        with pytest.raises(WorkloadError, match="no edge labels"):
            generate_workload(g, constraint("S1"), 1, 1, rng=0)
