"""Algorithm answers on frozen snapshots match the dict-backed graph.

The CSR rewrite changed the expansion order inside every search hot
loop (label-ascending slices instead of dict insertion order), which
must never change a Boolean answer.  Each algorithm runs the same
randomized workload on both representations — with the naive
two-procedure oracle on the dict graph as ground truth — and with the
service's ``V(S, G)`` candidate cache both absent and present.

Also covers the two hot-loop satellites: `_LazyPriorityQueue` heap
compaction and the CandidateCache's reuse semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import _COMPACT_MIN_HEAP, _LazyPriorityQueue, INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.datasets.synthetic import random_labeled_graph
from repro.index.local_index import build_local_index
from repro.service.cache import CandidateCache

SEEDS = list(range(20))


def make_workload(seed, num_vertices=10, num_labels=3, density=1.9, count=10):
    graph = random_labeled_graph(
        num_vertices, density, num_labels, rng=seed, name=f"fa-{seed}"
    )
    rng = random.Random(seed * 6151 + 7)
    vertices = [f"n{i}" for i in range(num_vertices)]
    labels = [f"l{i}" for i in range(num_labels)]
    anchor = rng.choice(vertices)
    texts = [
        f"SELECT ?x WHERE {{ ?x <l0> ?y . }}",
        f"SELECT ?x WHERE {{ ?x <l0> {anchor} . }}",
        f"SELECT ?x WHERE {{ ?x <l1> ?y . ?y <l0> ?z . }}",
    ]
    queries = []
    for _ in range(count):
        queries.append(
            LSCRQuery(
                source=rng.choice(vertices),
                target=rng.choice(vertices),
                labels=LabelConstraint(rng.sample(labels, rng.randint(1, num_labels))),
                constraint=SubstructureConstraint.from_sparql(rng.choice(texts)),
            )
        )
    return graph, queries


class TestFrozenAlgorithmAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_algorithms_agree_on_frozen(self, seed):
        graph, queries = make_workload(seed)
        frozen = graph.freeze()
        index = build_local_index(graph, k=3, rng=seed)
        oracle = NaiveTwoProcedure(graph)
        algorithms = [
            UIS(frozen),
            UISStar(frozen),
            UISStar(frozen, candidate_cache=CandidateCache()),
            # The index was built on the dict graph; base_graph unwrapping
            # must accept it against the snapshot.
            INS(frozen, index),
            INS(frozen, index, candidate_cache=CandidateCache()),
            NaiveTwoProcedure(frozen),
        ]
        for query in queries:
            expected = oracle.decide(query)
            for algorithm in algorithms:
                got = algorithm.decide(query)
                assert got == expected, (
                    f"seed={seed} {algorithm.name} on frozen: {got} != "
                    f"{expected} for {query.source}->{query.target} "
                    f"L={sorted(query.labels.labels)} "
                    f"S={query.constraint.to_sparql()!r}"
                )

    @pytest.mark.parametrize("seed", SEEDS[::4])
    def test_index_built_on_frozen_serves_dict_graph(self, seed):
        graph, queries = make_workload(seed)
        frozen = graph.freeze()
        index = build_local_index(frozen, k=3, rng=seed)
        oracle = NaiveTwoProcedure(graph)
        algorithm = INS(graph, index)
        for query in queries:
            assert algorithm.decide(query) == oracle.decide(query)


class TestCandidateCache:
    def test_candidates_computed_once_per_constraint(self):
        graph, queries = make_workload(3)
        cache = CandidateCache()
        constraint = queries[0].constraint
        first = cache.get(constraint, graph)
        second = cache.get(constraint, graph)
        assert first is second
        assert first == tuple(constraint.satisfying_vertices(graph))
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert constraint in cache

    def test_equivalent_spellings_share_an_entry(self):
        graph, _ = make_workload(4)
        cache = CandidateCache()
        a = SubstructureConstraint.from_sparql("SELECT ?x WHERE { ?x <l0> ?y . }")
        b = SubstructureConstraint.from_sparql(
            "SELECT  ?x  WHERE  {  ?x  <l0>  ?y  .  }"
        )
        assert cache.get(a, graph) is cache.get(b, graph)
        assert len(cache) == 1

    def test_size_zero_disables_storage(self):
        # Mirrors ResultCache: cache_size=0 must yield a genuinely
        # uncached service, candidate memoisation included.
        graph, _ = make_workload(6)
        cache = CandidateCache(max_size=0)
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <l0> ?y . }"
        )
        expected = tuple(constraint.satisfying_vertices(graph))
        assert cache.get(constraint, graph) == expected
        assert cache.get(constraint, graph) == expected
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 2

    def test_concurrent_misses_compute_once(self):
        import threading

        graph, _ = make_workload(7)
        cache = CandidateCache()
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <l0> ?y . }"
        )
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(cache.get(constraint, graph))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = tuple(constraint.satisfying_vertices(graph))
        assert all(result == expected for result in results)
        # Every requester saw the same published tuple object.
        assert all(result is results[0] for result in results)
        assert len(cache) == 1

    def test_lru_eviction(self):
        graph, _ = make_workload(5)
        cache = CandidateCache(max_size=2)
        texts = [
            "SELECT ?x WHERE { ?x <l0> ?y . }",
            "SELECT ?x WHERE { ?x <l1> ?y . }",
            "SELECT ?x WHERE { ?x <l2> ?y . }",
        ]
        for text in texts:
            cache.get(SubstructureConstraint.from_sparql(text), graph)
        assert len(cache) == 2
        assert cache.stats().evictions == 1


class TestLazyQueueCompaction:
    def test_repushes_do_not_accrete_garbage(self):
        queue = _LazyPriorityQueue()
        # Re-push a small set of vertices far more times than the
        # compaction threshold: without compaction the heap would hold
        # every stale entry (~40x the live count).
        for round_number in range(200):
            for vertex in range(20):
                queue.push(vertex, (round_number, vertex))
        assert len(queue._live) == 20
        assert len(queue._heap) <= max(_COMPACT_MIN_HEAP, 2 * len(queue._live)) + 1
        popped = []
        while queue:
            popped.append(queue.pop())
        assert sorted(popped) == list(range(20))

    def test_small_heaps_never_compact(self):
        queue = _LazyPriorityQueue()
        for round_number in range(10):
            for vertex in range(3):
                queue.push(vertex, (round_number,))
        # 30 entries, 3 live — under the floor, stale entries remain
        # until popped (compaction overhead would exceed the drain).
        assert len(queue._heap) == 30
        assert queue.pop() in (0, 1, 2)

    def test_ordering_respected_after_compaction(self):
        queue = _LazyPriorityQueue()
        for vertex in range(100):
            queue.push(vertex, (vertex,))
        for _ in range(5):
            for vertex in range(100):
                queue.push(vertex, (100 - vertex,))  # invert priorities
        order = []
        while queue:
            order.append(queue.pop())
        assert order == list(reversed(range(100)))
