"""Tests for the naive two-procedure baseline (the oracle itself)."""

from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.constraints.substructure import SubstructureConstraint
from repro.datasets.synthetic import cycle_graph, line_graph
from tests.helpers import graph_from_edges


def anchor_constraint(label: str, target: str) -> SubstructureConstraint:
    return SubstructureConstraint.from_sparql(
        f"SELECT ?x WHERE {{ ?x <{label}> {target} . }}"
    )


class TestNaive:
    def test_satisfying_vertex_midway(self):
        g = graph_from_edges(
            [("a", "n", "b"), ("b", "n", "c"), ("b", "mark", "flag")]
        )
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "c", ["n"], anchor_constraint("mark", "flag"))
        assert naive.decide(query)

    def test_no_satisfying_vertex_on_path(self):
        g = graph_from_edges(
            [("a", "n", "b"), ("b", "n", "c"), ("d", "mark", "flag")]
        )
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "c", ["n"], anchor_constraint("mark", "flag"))
        assert not naive.decide(query)

    def test_source_satisfies(self):
        g = graph_from_edges([("a", "mark", "flag"), ("a", "n", "b")])
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "b", ["n"], anchor_constraint("mark", "flag"))
        assert naive.decide(query)

    def test_target_satisfies(self):
        g = graph_from_edges([("a", "n", "b"), ("b", "mark", "flag")])
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "b", ["n"], anchor_constraint("mark", "flag"))
        assert naive.decide(query)

    def test_satisfying_vertex_unreachable_under_label(self):
        g = graph_from_edges(
            [("a", "n", "c"), ("a", "blocked", "b"), ("b", "mark", "flag"), ("b", "n", "c")]
        )
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "c", ["n"], anchor_constraint("mark", "flag"))
        assert not naive.decide(query)

    def test_second_leg_must_also_hold(self):
        # b satisfies but cannot continue to the target under L.
        g = graph_from_edges(
            [("a", "n", "b"), ("b", "mark", "flag"), ("b", "blocked", "c")]
        )
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("a", "c", ["n"], anchor_constraint("mark", "flag"))
        assert not naive.decide(query)

    def test_long_line(self):
        g = line_graph(30)
        g.add_edge("n15", "mark", "flag")
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("n0", "n30", ["next"], anchor_constraint("mark", "flag"))
        assert naive.decide(query)

    def test_cycle_revisit(self):
        g = cycle_graph(6)
        g.add_edge("n3", "mark", "flag")
        naive = NaiveTwoProcedure(g)
        # target "behind" the source on the cycle: must go around.
        query = LSCRQuery.create("n4", "n2", ["next"], anchor_constraint("mark", "flag"))
        assert naive.decide(query)

    def test_telemetry_counts(self):
        g = line_graph(5)
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create("n0", "n5", ["next"], anchor_constraint("missing", "x"))
        result = naive.answer(query)
        assert result.answer is False
        assert result.passed_vertices == 6  # the whole line is explored
        assert result.scck_calls == 6
        assert result.algorithm == "Naive"
