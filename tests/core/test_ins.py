"""Tests specific to INS (Algorithm 4)."""

import random

import pytest

from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import INS, _LazyPriorityQueue
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import cycle_graph, line_graph
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.exceptions import IndexingError
from repro.index.local_index import build_local_index
from tests.helpers import graph_from_edges


def anchor(label: str, target: str) -> SubstructureConstraint:
    return SubstructureConstraint.from_sparql(
        f"SELECT ?x WHERE {{ ?x <{label}> {target} . }}"
    )


class TestLazyPriorityQueue:
    def test_orders_by_key(self):
        q = _LazyPriorityQueue()
        q.push(1, (2,))
        q.push(2, (1,))
        q.push(3, (3,))
        assert q.pop() == 2
        assert q.pop() == 1
        assert q.pop() == 3
        assert q.pop() is None

    def test_repush_deletes_first_added(self):
        q = _LazyPriorityQueue()
        q.push(1, (0,))
        q.push(1, (5,))  # re-push: old entry lazily deleted
        assert q.pop() == 1
        assert q.pop() is None

    def test_peek_skips_dead_entries(self):
        q = _LazyPriorityQueue()
        q.push(1, (0,))
        q.push(1, (9,))
        assert q.peek() == 1
        assert bool(q)
        q.pop()
        assert q.peek() is None
        assert not q

    def test_fifo_tiebreak(self):
        q = _LazyPriorityQueue()
        q.push(7, (1,))
        q.push(8, (1,))
        assert q.pop() == 7
        assert q.pop() == 8


class TestConstruction:
    def test_index_built_on_demand(self):
        g = figure3_graph()
        ins = INS(g)  # no index passed
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        assert ins.decide(query) is True

    def test_foreign_index_rejected(self):
        g1 = figure3_graph()
        g2 = figure3_graph()
        index = build_local_index(g1, k=2, rng=0)
        with pytest.raises(IndexingError, match="different graph"):
            INS(g2, index)


class TestIndexPruning:
    def test_landmark_check_short_circuit(self):
        # A landmark whose region contains the target answers via II.
        g = line_graph(6)
        g.add_edge("n0", "mark", "flag")
        index = build_local_index(g, landmarks=[g.vid("n2")])
        ins = INS(g, index)
        query = LSCRQuery.create("n0", "n6", ["next"], anchor("mark", "flag"))
        result = ins.answer(query)
        assert result.answer is True
        assert result.index_resolutions > 0

    def test_cut_and_push_preserve_completeness(self):
        # Paths that leave and re-enter a landmark region must still be
        # found even though Cut marks interior vertices without enqueue.
        g = graph_from_edges(
            [
                ("s", "l", "L1"),
                ("L1", "l", "inner"),
                ("inner", "l", "outside"),
                ("outside", "l", "t"),
                ("s", "mark", "flag"),
            ]
        )
        index = build_local_index(g, landmarks=[g.vid("L1")])
        ins = INS(g, index)
        query = LSCRQuery.create("s", "t", ["l"], anchor("mark", "flag"))
        assert ins.decide(query) is True

    def test_push_detects_target(self):
        # The target is a border vertex delivered by Push (DESIGN §5.5).
        g = graph_from_edges(
            [
                ("s", "l", "L1"),
                ("L1", "l", "t"),       # t outside L1's region? ensure via landmarks
                ("s", "mark", "flag"),
            ]
        )
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("t")])
        ins = INS(g, index)
        query = LSCRQuery.create("s", "t", ["l"], anchor("mark", "flag"))
        assert ins.decide(query) is True


class TestParityWithFigure3:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_orders_agree(self, seed):
        g = figure3_graph()
        index = build_local_index(g, k=2, rng=seed)
        ins = INS(g, index, rng=random.Random(seed))
        cases = [
            ("v0", "v4", ["likes", "follows"], True),
            ("v0", "v3", ["likes", "follows"], False),
            ("v3", "v4", ["likes", "hates", "friendOf"], True),
        ]
        for source, target, labels, expected in cases:
            query = LSCRQuery.create(source, target, labels, figure3_constraint())
            assert ins.decide(query) == expected

    def test_telemetry_fields(self):
        g = cycle_graph(8)
        g.add_edge("n3", "mark", "flag")
        index = build_local_index(g, k=2, rng=0)
        ins = INS(g, index)
        query = LSCRQuery.create("n0", "n7", ["next"], anchor("mark", "flag"))
        result = ins.answer(query)
        assert result.answer is True
        assert result.algorithm == "INS"
        assert result.vsg_size == 1
        assert result.lcs_calls >= 1
