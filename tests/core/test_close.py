"""Tests for the close surjection (Definition 3.1)."""

import pytest

from repro.core.close import CloseMap, F, N, T


class TestCloseMap:
    def test_initial_state_is_n(self):
        close = CloseMap(4)
        assert all(close[v] == N for v in range(4))
        assert close.passed_count == 0

    def test_upgrade_n_to_f_to_t(self):
        close = CloseMap(2)
        close[0] = F
        assert close[0] == F
        close[0] = T
        assert close[0] == T

    def test_direct_n_to_t(self):
        close = CloseMap(1)
        close[0] = T
        assert close[0] == T

    def test_downgrade_rejected(self):
        close = CloseMap(1)
        close[0] = T
        with pytest.raises(ValueError, match="downgrade"):
            close[0] = F

    def test_same_state_reassignment_allowed(self):
        close = CloseMap(1)
        close[0] = F
        close[0] = F
        assert close.passed_count == 1

    def test_passed_count_counts_non_n(self):
        close = CloseMap(5)
        close[0] = F
        close[1] = T
        close[0] = T  # upgrade does not double-count
        assert close.passed_count == 2

    def test_len(self):
        assert len(CloseMap(7)) == 7

    def test_state_name(self):
        close = CloseMap(3)
        close[1] = F
        close[2] = T
        assert close.state_name(0) == "N"
        assert close.state_name(1) == "F"
        assert close.state_name(2) == "T"

    def test_vertices_in_state(self):
        close = CloseMap(4)
        close[1] = F
        close[3] = F
        close[3] = T
        assert close.vertices_in_state(N) == [0, 2]
        assert close.vertices_in_state(F) == [1]
        assert close.vertices_in_state(T) == [3]

    def test_state_ordering_matches_information_content(self):
        assert N < F < T
