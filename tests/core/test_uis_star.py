"""Tests specific to UIS* (Algorithm 2)."""

import random

from repro.constraints.substructure import SubstructureConstraint
from repro.core.query import LSCRQuery
from repro.core.uis_star import UISStar
from repro.datasets.synthetic import cycle_graph, line_graph
from repro.datasets.toy import figure3_constraint, figure3_graph
from tests.helpers import graph_from_edges


def anchor(label: str, target: str) -> SubstructureConstraint:
    return SubstructureConstraint.from_sparql(
        f"SELECT ?x WHERE {{ ?x <{label}> {target} . }}"
    )


class TestSharedFrontier:
    def test_frontier_survives_early_return(self):
        """Regression for the shared-stack bug: when LCS(B=F) finds its
        candidate mid-way through a vertex's edge list, the remaining
        edges must stay available to later invocations."""
        g = graph_from_edges(
            [
                # v1's first edge reaches candidate c1 (dead end);
                # its second edge leads to the real path via c2.
                ("v1", "l", "c1"),
                ("v1", "l", "m"),
                ("m", "l", "c2"),
                ("c2", "l", "t"),
                # both c1 and c2 satisfy the constraint
                ("c1", "mark", "flag"),
                ("c2", "mark", "flag"),
            ]
        )
        query = LSCRQuery.create("v1", "t", ["l"], anchor("mark", "flag"))
        # try every candidate order
        for seed in range(6):
            assert UISStar(g, rng=random.Random(seed)).decide(query) is True

    def test_vertices_visited_at_most_twice(self):
        # Theorem 4.5: O(|V| + |E|) via the shared close map.
        g = cycle_graph(12)
        g.add_edge("n6", "mark", "flag")
        query = LSCRQuery.create("n0", "n11", ["next"], anchor("mark", "flag"))
        result = UISStar(g).answer(query)
        assert result.answer is True
        assert result.passed_vertices <= g.num_vertices


class TestVsgHandling:
    def test_vsg_size_reported(self):
        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        result = UISStar(g).answer(query)
        assert result.vsg_size == 2  # V(S0, G0) = {v1, v2}
        assert result.vsg_seconds >= 0.0

    def test_empty_vsg_is_false(self):
        g = graph_from_edges([("a", "x", "b")])
        query = LSCRQuery.create("a", "b", ["x"], anchor("mark", "flag"))
        result = UISStar(g).answer(query)
        assert result.answer is False
        assert result.vsg_size == 0
        assert result.lcs_calls == 0

    def test_candidate_order_does_not_change_answer(self):
        g = figure3_graph()
        queries = [
            LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint()),
            LSCRQuery.create("v0", "v3", ["likes", "follows"], figure3_constraint()),
            LSCRQuery.create("v3", "v4", ["likes", "hates", "friendOf"], figure3_constraint()),
        ]
        for query in queries:
            answers = {
                UISStar(g, rng=random.Random(seed)).decide(query) for seed in range(8)
            }
            assert len(answers) == 1

    def test_target_in_vsg_short_circuit(self):
        # t satisfies S: the answer collapses to plain LCR reachability.
        g = graph_from_edges([("a", "n", "b"), ("b", "mark", "flag")])
        query = LSCRQuery.create("a", "b", ["n"], anchor("mark", "flag"))
        result = UISStar(g).answer(query)
        assert result.answer is True
        assert result.lcs_calls == 1  # single LCS(s, t, F)


class TestLcsBehaviour:
    def test_second_leg_reuses_first_leg_marks(self):
        g = line_graph(8)
        g.add_edge("n4", "mark", "flag")
        query = LSCRQuery.create("n0", "n8", ["next"], anchor("mark", "flag"))
        result = UISStar(g).answer(query)
        assert result.answer is True
        # close states: n0..n4 marked F by the first leg, n4..n8 T by the
        # second; the count never exceeds |V|.
        assert result.passed_vertices <= g.num_vertices

    def test_empty_vsg_skips_search_entirely(self):
        g = line_graph(8)
        query = LSCRQuery.create("n0", "n8", ["next"], anchor("missing", "x"))
        result = UISStar(g).answer(query)
        assert result.answer is False
        assert result.passed_vertices == 1  # only close[s] = F was set

    def test_false_query_explores_reachable_space_once(self):
        # An unreachable satisfying vertex forces the F-leg to exhaust
        # the whole space s reaches under L — exactly once (Lemma 4.2).
        g = line_graph(8)
        g.add_edge("island", "mark", "flag")
        query = LSCRQuery.create("n0", "n8", ["mark"], anchor("mark", "flag"))
        result = UISStar(g).answer(query)
        assert result.answer is False
        assert result.passed_vertices == 1  # n0 has no mark-edges
        g2 = line_graph(8)
        g2.add_edge("island", "mark", "flag")
        query2 = LSCRQuery.create("n0", "n8", ["next", "mark"], anchor("mark", "flag"))
        result2 = UISStar(g2).answer(query2)
        assert result2.answer is False
        assert result2.passed_vertices == 9  # the whole line, island excluded
