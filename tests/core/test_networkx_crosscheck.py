"""Cross-validation against networkx — a third-party reachability oracle.

All in-repo oracles share this codebase's graph structure; networkx is
an entirely independent implementation.  LSCR truth is reconstructed
from first principles on the networkx side: build the two-layer product
multigraph (layer 0 = no satisfying vertex passed yet, layer 1 = one
passed) restricted to the constraint labels, and test
``nx.has_path(product, (s, start_layer), (t, 1))``.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import build_local_index
from repro.sparql.ast import TriplePattern, Var


def lscr_truth_via_networkx(
    graph: KnowledgeGraph, query: LSCRQuery
) -> bool:
    mask = query.labels.mask_for(graph)
    satisfying = set(query.constraint.satisfying_vertices(graph))
    product = nx.DiGraph()
    for v in graph.vertices():
        product.add_node((v, 0))
        product.add_node((v, 1))
    for s, label_id, t in graph.edges():
        if not mask >> label_id & 1:
            continue
        for layer in (0, 1):
            target_layer = 1 if (layer == 1 or t in satisfying) else 0
            product.add_edge((s, layer), (t, target_layer))
    source = graph.vid(query.source)
    target = graph.vid(query.target)
    start_layer = 1 if source in satisfying else 0
    return nx.has_path(product, (source, start_layer), (target, 1))


def random_case(seed: int):
    rng = random.Random(seed)
    n = rng.randint(3, 14)
    labels = [f"l{i}" for i in range(rng.randint(1, 4))]
    graph = KnowledgeGraph(f"nx{seed}")
    names = [f"v{i}" for i in range(n)]
    for name in names:
        graph.add_vertex(name)
    for label in labels:
        graph.labels.intern(label)
    for _ in range(rng.randint(0, n * 3)):
        graph.add_edge(rng.choice(names), rng.choice(labels), rng.choice(names))
    anchor = rng.choice(names)
    constraint = SubstructureConstraint(
        [TriplePattern(Var("x"), rng.choice(labels), anchor)]
    )
    query = LSCRQuery(
        source=rng.choice(names),
        target=rng.choice(names),
        labels=LabelConstraint(rng.sample(labels, rng.randint(1, len(labels)))),
        constraint=constraint,
    )
    return graph, query


class TestNetworkxAgreement:
    @pytest.mark.parametrize("seed", range(60))
    def test_all_algorithms_match_networkx(self, seed):
        graph, query = random_case(seed)
        expected = lscr_truth_via_networkx(graph, query)
        index = build_local_index(graph, k=3, rng=seed)
        algorithms = [
            NaiveTwoProcedure(graph),
            UIS(graph),
            UISStar(graph, rng=random.Random(seed)),
            INS(graph, index, rng=random.Random(seed)),
        ]
        for algorithm in algorithms:
            assert algorithm.decide(query) == expected, algorithm.name

    def test_networkx_oracle_on_figure3(self):
        from repro.datasets.toy import figure3_constraint, figure3_graph

        graph = figure3_graph()
        cases = [
            ("v0", "v4", ["likes", "follows"], True),
            ("v0", "v3", ["likes", "follows"], False),
            ("v3", "v4", ["likes", "hates", "friendOf"], True),
        ]
        for source, target, labels, expected in cases:
            query = LSCRQuery.create(source, target, labels, figure3_constraint())
            assert lscr_truth_via_networkx(graph, query) == expected
