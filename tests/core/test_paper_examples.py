"""The paper's worked claims, pinned as tests for every algorithm.

These are the strongest fidelity anchors available: each case is stated
explicitly in the paper text (Sections 2–3) for the Figure 3 running
example, and all four algorithms must agree with it.
"""

import pytest

from repro.core.query import LSCRQuery
from repro.datasets.toy import figure1_financial_graph, figure3_constraint, figure3_graph
from tests.core.conftest import make_algorithm
from tests.helpers import ground_truth_cms

#: (source, target, labels, expected) — claims from the paper.
PAPER_CASES = [
    # Section 2: "given a label constraint L = {likes, follows},
    # v0 ⇝_{L,S0} v4, while v0 ↛_{L,S0} v3"
    ("v0", "v4", ["likes", "follows"], True),
    ("v0", "v3", ["likes", "follows"], False),
    # Section 3: the recall example with L = {likes, hates, friendOf}
    ("v3", "v4", ["likes", "hates", "friendOf"], True),
    # Section 2's substructure-only claims hold under the full label set.
    ("v0", "v4", ["friendOf", "likes", "advisorOf", "follows", "hates"], True),
    ("v0", "v3", ["friendOf", "likes", "advisorOf", "follows", "hates"], True),
    ("v3", "v4", ["friendOf", "likes", "advisorOf", "follows", "hates"], True),
]


class TestFigure3Claims:
    @pytest.mark.parametrize("source,target,labels,expected", PAPER_CASES)
    def test_paper_case(self, algorithm_name, source, target, labels, expected):
        graph = figure3_graph()
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create(source, target, labels, figure3_constraint())
        assert algorithm.decide(query) == expected

    def test_cms_v0_v3_matches_paper(self):
        # M(v0, v3) = {{friendOf}}
        graph = figure3_graph()
        cms = ground_truth_cms(graph, graph.vid("v0"))
        masks = cms[graph.vid("v3")]
        assert masks == {graph.label_mask(["friendOf"])}

    def test_cms_v0_v4_matches_paper(self):
        # M(v0, v4) = {{friendOf, likes}, {advisorOf, follows}, {likes, follows}}
        graph = figure3_graph()
        cms = ground_truth_cms(graph, graph.vid("v0"))
        masks = cms[graph.vid("v4")]
        expected = {
            graph.label_mask(["friendOf", "likes"]),
            graph.label_mask(["advisorOf", "follows"]),
            graph.label_mask(["likes", "follows"]),
        }
        assert masks == expected

    def test_v_s0_g0_is_v1_v2(self):
        graph = figure3_graph()
        satisfying = figure3_constraint().satisfying_vertices(graph)
        assert sorted(graph.name_of(v) for v in satisfying) == ["v1", "v2"]


class TestTrivialPathConvention:
    """DESIGN.md §5.1: Q=(s,s,L,S) is true iff s satisfies S or a
    label-feasible cycle through a satisfying vertex returns to s."""

    def test_satisfying_source_equals_target(self, algorithm_name):
        graph = figure3_graph()
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create("v2", "v2", ["likes"], figure3_constraint())
        assert algorithm.decide(query) is True  # v2 satisfies S0

    def test_non_satisfying_source_no_cycle(self, algorithm_name):
        graph = figure3_graph()
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create("v0", "v0", ["likes", "follows"], figure3_constraint())
        assert algorithm.decide(query) is False

    def test_cycle_through_satisfying_vertex(self, algorithm_name):
        graph = figure3_graph()
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create(
            "v4", "v4", ["hates", "friendOf", "likes"], figure3_constraint()
        )
        assert algorithm.decide(query) is True  # v4→v1→v3→v4 passes v1


class TestFigure1Scenario:
    """The introduction's criminal-detection query on the financial KG."""

    @pytest.fixture()
    def graph(self):
        return figure1_financial_graph()

    @pytest.fixture()
    def married_to_amy(self):
        from repro.constraints.substructure import SubstructureConstraint

        return SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <marriedTo> Amy . }"
        )

    def test_april_2019_chain_found(self, algorithm_name, graph, married_to_amy):
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create("C", "P", ["2019-04"], married_to_amy)
        assert algorithm.decide(query) is True

    def test_march_decoy_rejected(self, algorithm_name, graph, married_to_amy):
        # Restricting to March leaves no C→P path through Amy's spouse.
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create("C", "P", ["2019-03"], married_to_amy)
        assert algorithm.decide(query) is False

    def test_unmarried_path_rejected(self, algorithm_name, graph):
        from repro.constraints.substructure import SubstructureConstraint

        married_to_broker = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <marriedTo> broker . }"
        )
        algorithm = make_algorithm(algorithm_name, graph)
        query = LSCRQuery.create("C", "P", ["2019-04"], married_to_broker)
        assert algorithm.decide(query) is False
