"""Shared fixtures for algorithm tests."""

from __future__ import annotations

import random

import pytest

from repro.core.base import LSCRAlgorithm
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import build_local_index

ALGORITHM_NAMES = ("Naive", "UIS", "UIS*", "INS")


def make_algorithm(name: str, graph: KnowledgeGraph, seed: int = 0) -> LSCRAlgorithm:
    """Instantiate one algorithm (INS builds its index on the spot)."""
    if name == "Naive":
        return NaiveTwoProcedure(graph)
    if name == "UIS":
        return UIS(graph)
    if name == "UIS*":
        return UISStar(graph, rng=random.Random(seed))
    if name == "INS":
        index = build_local_index(graph, k=max(1, graph.num_vertices // 4), rng=seed)
        return INS(graph, index, rng=random.Random(seed))
    raise ValueError(name)


@pytest.fixture(params=ALGORITHM_NAMES)
def algorithm_name(request) -> str:
    """Parametrises a test over all four algorithms."""
    return request.param
