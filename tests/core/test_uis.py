"""Tests specific to UIS (Algorithm 1)."""

from repro.constraints.substructure import SubstructureConstraint
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.datasets.synthetic import cycle_graph, line_graph
from repro.datasets.toy import figure3_constraint, figure3_graph
from tests.helpers import graph_from_edges


def anchor(label: str, target: str) -> SubstructureConstraint:
    return SubstructureConstraint.from_sparql(
        f"SELECT ?x WHERE {{ ?x <{label}> {target} . }}"
    )


class TestRecall:
    def test_section3_recall_walk(self):
        """The paper's motivating example: UIS must walk
        v3 → v4 → v1 → v3 → v4, revisiting v3 and v4 after v1 upgrades
        the state to T (plain DFS/BFS cannot answer this)."""
        graph = figure3_graph()
        query = LSCRQuery.create(
            "v3", "v4", ["likes", "hates", "friendOf"], figure3_constraint()
        )
        result = UIS(graph).answer(query)
        assert result.answer is True

    def test_revisit_bounded_by_two_passes(self):
        # Theorem 3.3: UIS traverses the graph at most twice.
        graph = cycle_graph(10)
        graph.add_edge("n5", "mark", "flag")
        query = LSCRQuery.create("n0", "n9", ["next"], anchor("mark", "flag"))
        result = UIS(graph).answer(query)
        assert result.answer is True
        # every vertex enters close at most once; the count is bounded by |V|
        assert result.passed_vertices <= graph.num_vertices


class TestScckAccounting:
    def test_scck_called_at_most_once_per_vertex(self):
        graph = line_graph(20)
        query = LSCRQuery.create("n0", "n20", ["next"], anchor("missing", "x"))
        result = UIS(graph).answer(query)
        assert result.scck_calls <= graph.num_vertices

    def test_case1_skips_scck(self):
        # once the search is in T-state, newly explored vertices are
        # upgraded without an SCck call (case 1 of Algorithm 1).
        graph = line_graph(10)
        graph.add_edge("n0", "mark", "flag")
        query = LSCRQuery.create("n0", "n10", ["next"], anchor("mark", "flag"))
        result = UIS(graph).answer(query)
        assert result.answer is True
        # only the source needed a check
        assert result.scck_calls == 1


class TestEdgeCases:
    def test_unreachable_target(self):
        graph = graph_from_edges([("a", "x", "b")], vertices=["c"])
        query = LSCRQuery.create("a", "c", ["x"], anchor("x", "b"))
        assert not UIS(graph).decide(query)

    def test_empty_label_constraint_mask(self):
        graph = graph_from_edges([("a", "x", "b")])
        query = LSCRQuery.create("a", "b", ["unknown"], anchor("x", "b"))
        assert not UIS(graph).decide(query)

    def test_labels_outside_constraint_never_traversed(self):
        graph = graph_from_edges(
            [("a", "x", "m"), ("m", "secret", "t"), ("m", "mark", "flag")]
        )
        query = LSCRQuery.create("a", "t", ["x", "mark"], anchor("mark", "flag"))
        result = UIS(graph).answer(query)
        assert result.answer is False
        # t was never reached, so it never entered close
        assert result.passed_vertices < graph.num_vertices

    def test_result_metadata(self):
        graph = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        result = UIS(graph).answer(query)
        assert result.algorithm == "UIS"
        assert result.seconds >= 0.0
        assert result.vsg_size == -1  # UIS never materialises V(S, G)
