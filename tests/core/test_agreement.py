"""Property-based cross-algorithm agreement.

The library's central correctness property: UIS, UIS* and INS are exact
algorithms for the same problem, so on any graph, any constraint and any
query they must agree with the naive two-procedure oracle (whose
correctness is immediate from Theorem 2.1).  Hypothesis drives random
graphs, random anchored constraints and all-pairs queries.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import build_local_index
from repro.sparql.ast import TriplePattern, Var

VERTICES = [f"v{i}" for i in range(9)]
LABELS = ["a", "b", "c"]


@st.composite
def agreement_cases(draw):
    graph = KnowledgeGraph("agree")
    for vertex in VERTICES:
        graph.add_vertex(vertex)
    for label in LABELS:
        graph.labels.intern(label)
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(VERTICES),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
            ),
            max_size=20,
        )
    )
    for source, label, target in edges:
        graph.add_edge(source, label, target)

    # Anchored constraint: ?x --label--> anchor (plus optional extra leg).
    anchor = draw(st.sampled_from(VERTICES))
    label = draw(st.sampled_from(LABELS))
    outward = draw(st.booleans())
    patterns = [
        TriplePattern(Var("x"), label, anchor)
        if outward
        else TriplePattern(anchor, label, Var("x"))
    ]
    if draw(st.booleans()):
        patterns.append(
            TriplePattern(
                draw(st.sampled_from(VERTICES)),
                draw(st.sampled_from(LABELS)),
                Var("y"),
            )
        )
    constraint = SubstructureConstraint(patterns)

    label_count = draw(st.integers(min_value=1, max_value=len(LABELS)))
    labels = draw(
        st.lists(
            st.sampled_from(LABELS),
            min_size=label_count,
            max_size=label_count,
            unique=True,
        )
    )
    source = draw(st.sampled_from(VERTICES))
    target = draw(st.sampled_from(VERTICES))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return graph, constraint, labels, source, target, seed


class TestCrossAlgorithmAgreement:
    @settings(max_examples=120, deadline=None)
    @given(agreement_cases())
    def test_all_algorithms_agree_with_oracle(self, case):
        graph, constraint, labels, source, target, seed = case
        query = LSCRQuery(
            source=source,
            target=target,
            labels=LabelConstraint(labels),
            constraint=constraint,
        )
        expected = NaiveTwoProcedure(graph).decide(query)
        index = build_local_index(graph, k=3, rng=seed)
        algorithms = [
            UIS(graph),
            UISStar(graph, rng=random.Random(seed)),
            INS(graph, index, rng=random.Random(seed)),
        ]
        for algorithm in algorithms:
            assert algorithm.decide(query) == expected, algorithm.name

    @settings(max_examples=40, deadline=None)
    @given(agreement_cases())
    def test_passed_vertices_bounded_by_v(self, case):
        graph, constraint, labels, source, target, seed = case
        query = LSCRQuery(
            source=source,
            target=target,
            labels=LabelConstraint(labels),
            constraint=constraint,
        )
        index = build_local_index(graph, k=3, rng=seed)
        for algorithm in (
            UIS(graph),
            UISStar(graph),
            INS(graph, index),
        ):
            result = algorithm.answer(query)
            assert 0 <= result.passed_vertices <= graph.num_vertices

    @settings(max_examples=40, deadline=None)
    @given(agreement_cases())
    def test_answers_stable_across_repeats(self, case):
        graph, constraint, labels, source, target, seed = case
        query = LSCRQuery(
            source=source,
            target=target,
            labels=LabelConstraint(labels),
            constraint=constraint,
        )
        star = UISStar(graph, rng=random.Random(seed))
        first = star.decide(query)
        second = star.decide(query)
        assert first == second
