"""Tests for witness-path extraction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.witness import find_witness, verify_witness
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.graph.labeled_graph import KnowledgeGraph
from repro.sparql.ast import TriplePattern, Var
from tests.helpers import graph_from_edges


class TestFigure3Witnesses:
    def test_true_query_yields_valid_witness(self):
        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        witness = find_witness(g, query)
        assert witness is not None
        assert verify_witness(g, query, witness)
        # the only April path runs v0 -likes-> v2 -follows-> v4
        assert witness.vertices() == ("v0", "v2", "v4")
        assert witness.satisfying_vertex == "v2"

    def test_false_query_yields_none(self):
        g = figure3_graph()
        query = LSCRQuery.create("v0", "v3", ["likes", "follows"], figure3_constraint())
        assert find_witness(g, query) is None

    def test_recall_case_witness_revisits_vertices(self):
        # Section 3: the witness must walk v3 likes v4 hates v1 friendOf
        # v3 likes v4 — a non-simple path.
        g = figure3_graph()
        query = LSCRQuery.create(
            "v3", "v4", ["likes", "hates", "friendOf"], figure3_constraint()
        )
        witness = find_witness(g, query)
        assert witness is not None
        assert verify_witness(g, query, witness)
        vertices = witness.vertices()
        assert len(vertices) != len(set(vertices))  # genuinely revisits
        assert witness.satisfying_vertex == "v1"

    def test_trivial_path_witness(self):
        g = figure3_graph()
        query = LSCRQuery.create("v2", "v2", ["likes"], figure3_constraint())
        witness = find_witness(g, query)
        assert witness is not None
        assert witness.edges == ()
        assert witness.satisfying_vertex == "v2"
        assert verify_witness(g, query, witness)

    def test_witness_is_shortest(self):
        g = graph_from_edges(
            [
                ("s", "l", "mid"),
                ("mid", "l", "t"),
                ("s", "l", "a"),
                ("a", "l", "b"),
                ("b", "l", "t"),
                ("mid", "mark", "flag"),
                ("b", "mark", "flag"),
            ]
        )
        constraint = SubstructureConstraint.from_sparql(
            "SELECT ?x WHERE { ?x <mark> flag . }"
        )
        query = LSCRQuery.create("s", "t", ["l"], constraint)
        witness = find_witness(g, query)
        assert witness is not None
        assert len(witness) == 2  # via mid, not via a-b


class TestVerifyWitnessRejects:
    def test_rejects_wrong_endpoints(self):
        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        witness = find_witness(g, query)
        bad_query = LSCRQuery.create("v1", "v4", ["likes", "follows"], figure3_constraint())
        assert not verify_witness(g, bad_query, witness)

    def test_rejects_label_outside_constraint(self):
        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        witness = find_witness(g, query)
        narrow = LSCRQuery.create("v0", "v4", ["follows"], figure3_constraint())
        assert not verify_witness(g, narrow, witness)

    def test_rejects_non_satisfying_vertex(self):
        from repro.core.witness import WitnessPath

        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        forged = WitnessPath(
            edges=(("v0", "likes", "v2"), ("v2", "follows", "v4")),
            satisfying_vertex="v4",  # v4 does not satisfy S0
        )
        assert not verify_witness(g, query, forged)

    def test_rejects_fake_edge(self):
        from repro.core.witness import WitnessPath

        g = figure3_graph()
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        forged = WitnessPath(
            edges=(("v0", "follows", "v4"),),  # edge does not exist
            satisfying_vertex="v0",
        )
        assert not verify_witness(g, query, forged)


VERTICES = [f"v{i}" for i in range(8)]
LABELS = ["a", "b", "c"]


@st.composite
def witness_cases(draw):
    g = KnowledgeGraph("w")
    for v in VERTICES:
        g.add_vertex(v)
    for label in LABELS:
        g.labels.intern(label)
    for s, l, t in draw(
        st.lists(
            st.tuples(
                st.sampled_from(VERTICES),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
            ),
            max_size=18,
        )
    ):
        g.add_edge(s, l, t)
    anchor = draw(st.sampled_from(VERTICES))
    label = draw(st.sampled_from(LABELS))
    constraint = SubstructureConstraint([TriplePattern(Var("x"), label, anchor)])
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=1, max_size=3, unique=True)
    )
    source = draw(st.sampled_from(VERTICES))
    target = draw(st.sampled_from(VERTICES))
    return g, LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=constraint,
    )


class TestWitnessProperties:
    @settings(max_examples=120, deadline=None)
    @given(witness_cases())
    def test_witness_existence_equals_oracle_answer(self, case):
        graph, query = case
        expected = NaiveTwoProcedure(graph).decide(query)
        witness = find_witness(graph, query)
        assert (witness is not None) == expected

    @settings(max_examples=120, deadline=None)
    @given(witness_cases())
    def test_every_witness_verifies(self, case):
        graph, query = case
        witness = find_witness(graph, query)
        if witness is not None:
            assert verify_witness(graph, query, witness)
