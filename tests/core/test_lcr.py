"""Tests for the plain LCR primitives."""

from repro.core.lcr import (
    bfs_distance_ring,
    lcr_closure,
    lcr_closure_limited,
    lcr_reachable,
)
from repro.datasets.synthetic import cycle_graph, line_graph
from tests.helpers import graph_from_edges


def masked(graph, labels):
    return graph.label_mask(labels)


class TestReachable:
    def test_direct_edge(self):
        g = graph_from_edges([("a", "x", "b")])
        assert lcr_reachable(g, g.vid("a"), g.vid("b"), masked(g, ["x"]))

    def test_label_blocks_path(self):
        g = graph_from_edges([("a", "x", "b"), ("b", "y", "c")])
        assert not lcr_reachable(g, g.vid("a"), g.vid("c"), masked(g, ["x"]))
        assert lcr_reachable(g, g.vid("a"), g.vid("c"), masked(g, ["x", "y"]))

    def test_trivial_path(self):
        g = graph_from_edges([("a", "x", "b")])
        assert lcr_reachable(g, g.vid("a"), g.vid("a"), 0)

    def test_cycle(self):
        g = cycle_graph(5)
        mask = g.label_mask(["next"])
        assert lcr_reachable(g, g.vid("n0"), g.vid("n4"), mask)
        assert lcr_reachable(g, g.vid("n4"), g.vid("n0"), mask)

    def test_direction_matters(self):
        g = line_graph(3)
        mask = g.label_mask(["next"])
        assert lcr_reachable(g, g.vid("n0"), g.vid("n3"), mask)
        assert not lcr_reachable(g, g.vid("n3"), g.vid("n0"), mask)


class TestClosure:
    def test_closure_includes_source(self):
        g = graph_from_edges([("a", "x", "b")])
        assert g.vid("a") in lcr_closure(g, g.vid("a"), 0)

    def test_closure_respects_mask(self):
        g = graph_from_edges([("a", "x", "b"), ("a", "y", "c")])
        closure = lcr_closure(g, g.vid("a"), masked(g, ["x"]))
        assert closure == {g.vid("a"), g.vid("b")}

    def test_closure_full(self):
        g = cycle_graph(4)
        closure = lcr_closure(g, 0, g.labels.full_mask())
        assert len(closure) == 4

    def test_limited_closure_truncates(self):
        g = line_graph(10)
        mask = g.label_mask(["next"])
        visited, truncated = lcr_closure_limited(g, g.vid("n0"), mask, 3)
        assert truncated
        assert len(visited) == 3

    def test_limited_closure_completes_when_small(self):
        g = line_graph(2)
        mask = g.label_mask(["next"])
        visited, truncated = lcr_closure_limited(g, g.vid("n0"), mask, 100)
        assert not truncated
        assert len(visited) == 3


class TestDistanceRing:
    def test_rounds_limit_depth(self):
        g = line_graph(5)
        mask = g.label_mask(["next"])
        explored, frontier = bfs_distance_ring(g, g.vid("n0"), mask, 2)
        assert explored == {g.vid("n0"), g.vid("n1"), g.vid("n2")}
        assert frontier == [g.vid("n2")]

    def test_exhausted_frontier_is_empty(self):
        g = line_graph(2)
        mask = g.label_mask(["next"])
        explored, frontier = bfs_distance_ring(g, g.vid("n0"), mask, 10)
        assert frontier == []
        assert len(explored) == 3

    def test_zero_rounds(self):
        g = line_graph(3)
        explored, frontier = bfs_distance_ring(g, g.vid("n0"), 0, 0)
        assert explored == {g.vid("n0")}
        assert frontier == [g.vid("n0")]
