"""Tests for the INS ablation switches (design-choice isolation).

The two mechanisms Section 5 credits for INS's speed — index pruning
(Check/Cut/Push) and the informed orderings — can be disabled
independently.  Correctness must be unaffected (they are accelerators,
not semantics); only the work done may change.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import build_local_index
from repro.sparql.ast import TriplePattern, Var


class TestNames:
    def test_variant_names(self):
        g = figure3_graph()
        index = build_local_index(g, k=2, rng=0)
        assert INS(g, index).name == "INS"
        assert INS(g, index, use_index_pruning=False).name == "INS-noprune"
        assert INS(g, index, use_priorities=False).name == "INS-noprio"
        assert (
            INS(g, index, use_index_pruning=False, use_priorities=False).name
            == "INS-noprune-noprio"
        )


class TestAblatedCorrectness:
    CASES = [
        ("v0", "v4", ["likes", "follows"], True),
        ("v0", "v3", ["likes", "follows"], False),
        ("v3", "v4", ["likes", "hates", "friendOf"], True),
        ("v4", "v4", ["hates", "friendOf", "likes"], True),
    ]

    def test_figure3_cases_for_all_variants(self):
        g = figure3_graph()
        index = build_local_index(g, k=2, rng=0)
        for pruning in (True, False):
            for priorities in (True, False):
                ins = INS(
                    g,
                    index,
                    use_index_pruning=pruning,
                    use_priorities=priorities,
                )
                for source, target, labels, expected in self.CASES:
                    query = LSCRQuery.create(
                        source, target, labels, figure3_constraint()
                    )
                    assert ins.decide(query) == expected, (pruning, priorities)

    def test_no_pruning_does_no_index_resolutions(self):
        g = figure3_graph()
        index = build_local_index(g, k=2, rng=0)
        ins = INS(g, index, use_index_pruning=False)
        query = LSCRQuery.create("v0", "v4", ["likes", "follows"], figure3_constraint())
        result = ins.answer(query)
        assert result.answer is True
        assert result.index_resolutions == 0


VERTICES = [f"v{i}" for i in range(8)]
LABELS = ["a", "b"]


@st.composite
def ablation_cases(draw):
    g = KnowledgeGraph("abl")
    for v in VERTICES:
        g.add_vertex(v)
    for label in LABELS:
        g.labels.intern(label)
    for s, l, t in draw(
        st.lists(
            st.tuples(
                st.sampled_from(VERTICES),
                st.sampled_from(LABELS),
                st.sampled_from(VERTICES),
            ),
            max_size=16,
        )
    ):
        g.add_edge(s, l, t)
    anchor = draw(st.sampled_from(VERTICES))
    constraint = SubstructureConstraint(
        [TriplePattern(Var("x"), draw(st.sampled_from(LABELS)), anchor)]
    )
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=1, max_size=2, unique=True))
    return (
        g,
        LSCRQuery(
            source=draw(st.sampled_from(VERTICES)),
            target=draw(st.sampled_from(VERTICES)),
            labels=LabelConstraint(labels),
            constraint=constraint,
        ),
        draw(st.integers(min_value=0, max_value=999)),
    )


class TestAblationAgreement:
    @settings(max_examples=100, deadline=None)
    @given(ablation_cases())
    def test_all_variants_agree_with_oracle(self, case):
        graph, query, seed = case
        expected = NaiveTwoProcedure(graph).decide(query)
        index = build_local_index(graph, k=3, rng=seed)
        for pruning in (True, False):
            for priorities in (True, False):
                ins = INS(
                    graph,
                    index,
                    rng=random.Random(seed),
                    use_index_pruning=pruning,
                    use_priorities=priorities,
                )
                assert ins.decide(query) == expected, (pruning, priorities)
