"""The slow-query flight recorder: worst-N bounding and counters."""

from __future__ import annotations

import pytest

from repro.obs.flight import (
    DEFAULT_SLOW_LOG_SIZE,
    DEFAULT_SLOW_MS,
    FlightRecorder,
)


class TestThreshold:
    def test_interested_is_a_pure_compare(self):
        recorder = FlightRecorder(threshold_ms=100.0)
        assert recorder.interested(0.1)
        assert recorder.interested(0.5)
        assert not recorder.interested(0.099)

    def test_zero_threshold_takes_everything(self):
        recorder = FlightRecorder(threshold_ms=0.0, max_entries=4)
        assert recorder.interested(0.0)
        assert recorder.record(0.0, {"query": "q"})

    def test_sub_threshold_counted_not_stored(self):
        recorder = FlightRecorder(threshold_ms=100.0)
        assert not recorder.record(0.05, {"query": "fast"})
        summary = recorder.summary()
        assert summary["seen"] == 1
        assert summary["dropped"] == 1
        assert summary["kept"] == 0
        assert recorder.snapshot() == []

    @pytest.mark.parametrize(
        "kwargs", [{"threshold_ms": -1.0}, {"max_entries": 0}]
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**kwargs)

    def test_defaults(self):
        recorder = FlightRecorder()
        assert recorder.threshold_ms == DEFAULT_SLOW_MS
        assert recorder.max_entries == DEFAULT_SLOW_LOG_SIZE


class TestWorstN:
    def test_keeps_the_slowest_entries(self):
        recorder = FlightRecorder(threshold_ms=0.0, max_entries=3)
        for index, seconds in enumerate([0.1, 0.5, 0.2, 0.9, 0.05, 0.3]):
            recorder.record(seconds, {"index": index})
        entries = recorder.snapshot()
        assert [entry["seconds"] for entry in entries] == [0.9, 0.5, 0.3]
        summary = recorder.summary()
        assert summary["kept"] == 3
        assert summary["seen"] == 6
        assert summary["dropped"] == 3
        assert summary["worst_ms"] == pytest.approx(900.0)

    def test_slower_entry_evicts_the_fastest_kept(self):
        recorder = FlightRecorder(threshold_ms=0.0, max_entries=2)
        recorder.record(0.1, {"tag": "a"})
        recorder.record(0.2, {"tag": "b"})
        assert recorder.record(0.3, {"tag": "c"})      # evicts 0.1
        tags = [entry["tag"] for entry in recorder.snapshot()]
        assert tags == ["c", "b"]

    def test_equal_duration_does_not_replace(self):
        recorder = FlightRecorder(threshold_ms=0.0, max_entries=1)
        recorder.record(0.2, {"tag": "first"})
        assert not recorder.record(0.2, {"tag": "second"})
        assert recorder.snapshot()[0]["tag"] == "first"

    def test_entries_are_stamped_and_copied(self):
        recorder = FlightRecorder(threshold_ms=0.0)
        original = {"query": "q"}
        recorder.record(0.1, original)
        entry = recorder.snapshot()[0]
        assert entry["seconds"] == 0.1
        assert entry["recorded_at"] > 0
        assert "seconds" not in original               # caller dict untouched

    def test_clear_keeps_counters(self):
        recorder = FlightRecorder(threshold_ms=0.0)
        recorder.record(0.1, {})
        recorder.record(0.2, {})
        assert recorder.clear() == 2
        summary = recorder.summary()
        assert summary["kept"] == 0
        assert summary["seen"] == 2
        assert summary["worst_ms"] == 0.0
