"""Prometheus rendering and the strict parse-back validator."""

from __future__ import annotations

import math

import pytest

from repro.obs.prometheus import (
    format_value,
    parse_prometheus_text,
    render_metrics,
)
from repro.service.stats import ServiceStats


def _sample(samples, name, **labels):
    return samples[(name, tuple(sorted(labels.items())))]


class TestFormatValue:
    @pytest.mark.parametrize(
        "value, rendered",
        [
            (math.inf, "+Inf"),
            (-math.inf, "-Inf"),
            (0.0, "0"),
            (3.0, "3"),
            (-7.0, "-7"),
            (0.5, "0.5"),
            (1234, "1234"),
        ],
    )
    def test_rendering(self, value, rendered):
        assert format_value(value) == rendered

    def test_round_trip_precision(self):
        value = 0.1 + 0.2
        assert float(format_value(value)) == value


class TestRenderMetrics:
    def test_build_info_and_registry_gauges(self):
        text = render_metrics(
            {},
            version="9.9.9",
            started_at=1700000000.0,
            registry={"tenant_count": 3, "tenants_loaded": 1,
                      "errors": {"not-found": 2}},
        )
        samples = parse_prometheus_text(text)
        assert _sample(samples, "repro_build_info", version="9.9.9") == 1.0
        assert _sample(samples, "repro_process_started_at_seconds") == (
            1700000000.0
        )
        assert _sample(samples, "repro_tenants") == 3.0
        assert _sample(samples, "repro_tenants_loaded") == 1.0
        assert _sample(samples, "repro_registry_errors_total",
                       kind="not-found") == 2.0

    def test_stats_counters_histograms_and_labels(self):
        stats = ServiceStats()
        stats.record_latency("query", 0.002)
        stats.record_latency("query", 0.4)
        stats.record_error("bad-request")
        document = {
            "service": stats.snapshot(),
            "result_cache": {"hits": 5, "misses": 2, "evictions": 1,
                             "expirations": 0, "size": 4, "max_size": 16,
                             "hit_rate": 5 / 7},
            "graph": {"vertices": 10, "edges": 20, "labels": 3},
            "index": {"loaded": True, "landmarks": 4},
            "epoch": {"epoch_id": 7, "age_seconds": 1.5},
            "slow_queries": {"threshold_ms": 250.0, "max_entries": 16,
                             "kept": 1, "seen": 9, "dropped": 8,
                             "worst_ms": 400.0},
        }
        samples = parse_prometheus_text(
            render_metrics({"default": document}, version="1.0")
        )
        tenant = {"tenant": "default"}
        assert _sample(samples, "repro_errors_total",
                       kind="bad-request", **tenant) == 1.0
        assert _sample(samples, "repro_cache_hits_total",
                       cache="result", **tenant) == 5.0
        assert _sample(samples, "repro_epoch_id", **tenant) == 7.0
        assert _sample(samples, "repro_slow_queries_kept", **tenant) == 1.0
        assert _sample(samples, "repro_index_landmarks", **tenant) == 4.0
        # The histogram: +Inf bucket equals _count equals 2 observations.
        assert _sample(samples, "repro_request_latency_seconds_count",
                       endpoint="query", **tenant) == 2.0
        assert _sample(samples, "repro_request_latency_seconds_bucket",
                       endpoint="query", le="+Inf", **tenant) == 2.0
        assert _sample(samples, "repro_request_latency_seconds_sum",
                       endpoint="query", **tenant) == pytest.approx(0.402)

    def test_bucket_series_is_cumulative(self):
        stats = ServiceStats()
        for seconds in (0.001, 0.001, 0.01, 1.0):
            stats.record_latency("query", seconds)
        text = render_metrics(
            {"default": {"service": stats.snapshot()}}, version="1.0"
        )
        samples = parse_prometheus_text(text)   # validates monotonicity
        counts = sorted(
            (math.inf if value == "+Inf" else float(value), samples[key])
            for key in samples
            if key[0] == "repro_request_latency_seconds_bucket"
            for label, value in key[1]
            if label == "le"
        )
        assert counts[-1] == (math.inf, 4.0)
        assert all(b >= a for (_, a), (_, b) in zip(counts, counts[1:]))

    def test_label_values_are_escaped(self):
        stats = ServiceStats()
        stats.record_error('weird"kind\\with\nnewline')
        text = render_metrics(
            {"default": {"service": stats.snapshot()}}, version="1.0"
        )
        samples = parse_prometheus_text(text)
        assert _sample(samples, "repro_errors_total", tenant="default",
                       kind='weird"kind\\with\nnewline') == 1.0

    def test_every_stats_counter_is_exposed(self):
        # The acceptance bar: each /stats service counter has a sample.
        stats = ServiceStats()
        snapshot = stats.snapshot()
        samples = parse_prometheus_text(
            render_metrics({"default": {"service": snapshot}}, version="1.0")
        )
        names = {name for name, _ in samples}
        for expected in (
            "repro_uptime_seconds", "repro_started_at_seconds",
            "repro_queries_total", "repro_queries_executed_total",
            "repro_queries_cached_total", "repro_queries_trivial_total",
            "repro_queries_true_answers_total", "repro_batches_total",
            "repro_batch_queries_total", "repro_update_batches_total",
            "repro_update_edges_added_total",
            "repro_update_edges_duplicate_total",
            "repro_update_vertices_added_total",
        ):
            assert expected in names, expected


class TestParserStrictness:
    def test_rejects_bad_sample_line(self):
        with pytest.raises(ValueError, match="bad sample line"):
            parse_prometheus_text("not a metric line at all {\n")

    def test_rejects_repeated_type_header(self):
        text = ("# TYPE repro_x gauge\nrepro_x 1\n"
                "# TYPE repro_x gauge\n")
        with pytest.raises(ValueError, match="repeated TYPE"):
            parse_prometheus_text(text)

    def test_rejects_duplicate_samples(self):
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_prometheus_text("repro_x 1\nrepro_x 2\n")

    def test_rejects_missing_inf_bucket(self):
        text = ('repro_h_bucket{le="0.1"} 1\n'
                "repro_h_count 1\n")
        with pytest.raises(ValueError, match=r'le="\+Inf"'):
            parse_prometheus_text(text)

    def test_rejects_non_monotone_buckets(self):
        text = ('repro_h_bucket{le="0.1"} 5\n'
                'repro_h_bucket{le="0.2"} 3\n'
                'repro_h_bucket{le="+Inf"} 5\n')
        with pytest.raises(ValueError, match="not monotone"):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = ('repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_count 4\n")
        with pytest.raises(ValueError, match="!= *_count|!= _count|_count"):
            parse_prometheus_text(text)

    def test_accepts_inf_nan_values(self):
        samples = parse_prometheus_text("repro_x +Inf\nrepro_y NaN\n")
        assert samples[("repro_x", ())] == math.inf
        assert math.isnan(samples[("repro_y", ())])
