"""Request-scoped tracing: spans, context propagation, sampling."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import (
    Trace,
    TraceSampler,
    annotate,
    current_span,
    current_trace,
    new_trace_id,
    span,
    use_trace,
)
from repro.obs.trace import _NOOP  # the shared disabled-path handle


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        assert current_trace() is None
        handle = span("anything", key="value")
        assert handle is _NOOP
        assert span("other") is handle          # the very same object

    def test_noop_handle_is_inert(self):
        with span("outer") as handle:
            handle.set(a=1).set(b=2)
            handle.attach({"name": "remote"})
            with span("inner"):
                annotate(ignored=True)
        assert current_trace() is None
        assert current_span() is None


class TestTraceTree:
    def test_nesting_follows_lexical_structure(self):
        trace = Trace("request")
        with use_trace(trace):
            with span("plan", algorithm="ins"):
                pass
            with span("execute") as execute:
                execute.set(answer=True)
                with span("candidate-cache", hit=False):
                    pass
        trace.finish()
        document = trace.to_dict()
        assert document["trace_id"] == trace.trace_id
        assert document["name"] == "request"
        assert document["seconds"] >= 0.0
        names = [child["name"] for child in document["children"]]
        assert names == ["plan", "execute"]
        plan, execute = document["children"]
        assert plan["attrs"] == {"algorithm": "ins"}
        assert execute["attrs"]["answer"] is True
        assert [child["name"] for child in execute["children"]] == [
            "candidate-cache"
        ]

    def test_annotate_hits_innermost_open_span(self):
        trace = Trace("request")
        with use_trace(trace):
            annotate(root_attr=1)               # no span open: the root
            with span("child"):
                annotate(child_attr=2)
        assert trace.root.attrs == {"root_attr": 1}
        assert trace.root.children[0].attrs == {"child_attr": 2}

    def test_attach_stitches_remote_subtree(self):
        trace = Trace("request")
        remote = {"name": "expand", "seconds": 0.01, "attrs": {"shard": 1},
                  "children": []}
        with use_trace(trace):
            with span("round") as handle:
                handle.attach(remote)
                handle.attach(None)             # a missing subtree is fine
        document = trace.finish().to_dict()
        round_doc = document["children"][0]
        assert round_doc["children"] == [remote]

    def test_to_dict_before_finish_reports_elapsed(self):
        trace = Trace("request")
        document = trace.to_dict()
        assert document["seconds"] >= 0.0       # not the open sentinel -1.0

    def test_use_trace_none_masks_outer_trace(self):
        trace = Trace("request")
        with use_trace(trace):
            with use_trace(None):
                assert current_trace() is None
                assert span("invisible") is _NOOP
            assert current_trace() is trace
        assert trace.root.children == []

    def test_use_trace_resets_span_cursor(self):
        # A worker thread re-activating the trace starts at the root,
        # never inside whatever span its scheduling context had open.
        trace = Trace("request")
        with use_trace(trace):
            with span("outer"):
                with use_trace(trace):
                    assert current_span() is None
                    with span("re-entered"):
                        pass
        names = [child.name for child in trace.root.children]
        assert names == ["outer", "re-entered"]

    def test_thread_does_not_inherit_but_can_adopt(self):
        trace = Trace("request")
        observed: list[object] = []

        def worker() -> None:
            observed.append(current_trace())    # fresh thread: no trace
            with use_trace(trace):
                with span("adopted"):
                    pass
                observed.append(current_trace())

        with use_trace(trace):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert observed == [None, trace]
        assert [child.name for child in trace.root.children] == ["adopted"]


class TestIdsAndSampler:
    def test_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_sampler_extremes(self):
        assert not any(TraceSampler(0.0).sample() for _ in range(100))
        assert all(TraceSampler(1.0).sample() for _ in range(100))

    def test_sampler_rate_is_roughly_honored(self):
        sampler = TraceSampler(0.25, seed=0)
        hits = sum(sampler.sample() for _ in range(4000))
        assert 800 < hits < 1200

    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_sampler_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError, match="sample rate"):
            TraceSampler(rate)
