"""Tests for the LSCRSession facade."""

import pytest

from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.exceptions import ReproError
from repro.session import LSCRSession

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"


class TestConstruction:
    @pytest.mark.parametrize("algorithm", ["uis", "uis*", "ins", "naive"])
    def test_every_algorithm_constructs(self, algorithm):
        session = LSCRSession(figure3_graph(), algorithm=algorithm, seed=0)
        assert session.ask("v0", "v4", ["likes", "follows"], S0) is True

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ReproError, match="unknown algorithm"):
            LSCRSession(figure3_graph(), algorithm="dijkstra")

    def test_ins_builds_index_once(self):
        session = LSCRSession(figure3_graph(), algorithm="ins", seed=0)
        assert session.index is not None
        first = session.index
        session.ask("v0", "v4", ["likes", "follows"], S0)
        assert session.index is first

    def test_non_ins_has_no_index(self):
        session = LSCRSession(figure3_graph(), algorithm="uis")
        assert session.index is None


class TestQuerying:
    @pytest.fixture()
    def session(self):
        return LSCRSession(figure3_graph(), algorithm="uis")

    def test_ask_true_false(self, session):
        assert session.ask("v0", "v4", ["likes", "follows"], S0) is True
        assert session.ask("v0", "v3", ["likes", "follows"], S0) is False

    def test_constraint_text_cached(self, session):
        session.ask("v0", "v4", ["likes", "follows"], S0)
        cached = session._constraint_cache[S0]
        session.ask("v0", "v3", ["likes", "follows"], S0)
        assert session._constraint_cache[S0] is cached

    def test_constraint_object_accepted(self, session):
        assert session.ask(
            "v0", "v4", ["likes", "follows"], figure3_constraint()
        ) is True

    def test_answer_many(self, session):
        queries = [
            session.make_query("v0", "v4", ["likes", "follows"], S0),
            session.make_query("v0", "v3", ["likes", "follows"], S0),
        ]
        results = session.answer_many(queries)
        assert [r.answer for r in results] == [True, False]

    def test_explain_true_query(self, session):
        query = session.make_query("v0", "v4", ["likes", "follows"], S0)
        witness = session.explain(query)
        assert witness is not None
        assert witness.satisfying_vertex == "v2"

    def test_explain_false_query(self, session):
        query = session.make_query("v0", "v3", ["likes", "follows"], S0)
        assert session.explain(query) is None

    def test_answer_telemetry(self, session):
        query = session.make_query("v0", "v4", ["likes", "follows"], S0)
        result = session.answer(query)
        assert result.algorithm == "UIS"
        assert result.passed_vertices >= 1

    def test_repr(self, session):
        assert "uis" in repr(session)
