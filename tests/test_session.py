"""Tests for the LSCRSession facade."""

import pytest

from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.exceptions import ReproError
from repro.session import LSCRSession

S0 = "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }"


class TestConstruction:
    @pytest.mark.parametrize("algorithm", ["uis", "uis*", "ins", "naive"])
    def test_every_algorithm_constructs(self, algorithm):
        session = LSCRSession(figure3_graph(), algorithm=algorithm, seed=0)
        assert session.ask("v0", "v4", ["likes", "follows"], S0) is True

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ReproError, match="unknown algorithm"):
            LSCRSession(figure3_graph(), algorithm="dijkstra")

    def test_ins_builds_index_once(self):
        session = LSCRSession(figure3_graph(), algorithm="ins", seed=0)
        assert session.index is not None
        first = session.index
        session.ask("v0", "v4", ["likes", "follows"], S0)
        assert session.index is first

    def test_non_ins_has_no_index(self):
        session = LSCRSession(figure3_graph(), algorithm="uis")
        assert session.index is None


class TestSeedRule:
    """One rule: all session randomness derives from seed; None means 0."""

    def test_none_is_equivalent_to_zero(self):
        graph = figure3_graph()
        default = LSCRSession(graph, algorithm="ins")
        explicit = LSCRSession(graph, algorithm="ins", seed=0)
        assert default.seed == explicit.seed == 0
        assert (
            default.index.partition.landmarks
            == explicit.index.partition.landmarks
        )

    def test_same_seed_same_index(self):
        graph = figure3_graph()
        first = LSCRSession(graph, algorithm="ins", seed=7)
        second = LSCRSession(graph, algorithm="ins", seed=7)
        assert first.index.partition.landmarks == second.index.partition.landmarks
        assert first.index.eit == second.index.eit

    def test_equal_arguments_agree_on_answers(self):
        graph = figure3_graph()
        cases = [
            ("v0", "v4", ["likes", "follows"]),
            ("v0", "v3", ["likes", "follows"]),
            ("v3", "v4", ["likes", "hates", "friendOf"]),
        ]
        for seed in (None, 0, 3):
            a = LSCRSession(graph, algorithm="ins", seed=seed)
            b = LSCRSession(graph, algorithm="ins", seed=seed)
            for source, target, labels in cases:
                assert a.ask(source, target, labels, S0) == b.ask(
                    source, target, labels, S0
                )

    def test_shared_constraint_cache(self):
        from repro.service.cache import ConstraintCache

        graph = figure3_graph()
        shared = ConstraintCache()
        first = LSCRSession(graph, algorithm="uis", constraint_cache=shared)
        second = LSCRSession(graph, algorithm="uis", constraint_cache=shared)
        first.ask("v0", "v4", ["likes", "follows"], S0)
        second.ask("v0", "v3", ["likes", "follows"], S0)
        stats = shared.stats()
        assert stats.misses == 1        # parsed once across both sessions
        assert stats.hits == 1


class TestQuerying:
    @pytest.fixture()
    def session(self):
        return LSCRSession(figure3_graph(), algorithm="uis")

    def test_ask_true_false(self, session):
        assert session.ask("v0", "v4", ["likes", "follows"], S0) is True
        assert session.ask("v0", "v3", ["likes", "follows"], S0) is False

    def test_constraint_text_cached(self, session):
        session.ask("v0", "v4", ["likes", "follows"], S0)
        cached = session._constraint_cache[S0]
        session.ask("v0", "v3", ["likes", "follows"], S0)
        assert session._constraint_cache[S0] is cached

    def test_constraint_object_accepted(self, session):
        assert session.ask(
            "v0", "v4", ["likes", "follows"], figure3_constraint()
        ) is True

    def test_answer_many(self, session):
        queries = [
            session.make_query("v0", "v4", ["likes", "follows"], S0),
            session.make_query("v0", "v3", ["likes", "follows"], S0),
        ]
        results = session.answer_many(queries)
        assert [r.answer for r in results] == [True, False]

    def test_answer_many_concurrent_matches_serial(self, session):
        queries = [
            session.make_query(s, t, ["likes", "follows", "friendOf"], S0)
            for s, t in [("v0", "v4"), ("v0", "v3"), ("v3", "v4"), ("v1", "v4")] * 8
        ]
        serial = [session.answer(query).answer for query in queries]
        concurrent = session.answer_many(queries, max_workers=8)
        assert [result.answer for result in concurrent] == serial

    def test_answer_many_empty(self, session):
        assert session.answer_many([]) == []

    def test_explain_true_query(self, session):
        query = session.make_query("v0", "v4", ["likes", "follows"], S0)
        witness = session.explain(query)
        assert witness is not None
        assert witness.satisfying_vertex == "v2"

    def test_explain_false_query(self, session):
        query = session.make_query("v0", "v3", ["likes", "follows"], S0)
        assert session.explain(query) is None

    def test_answer_telemetry(self, session):
        query = session.make_query("v0", "v4", ["likes", "follows"], S0)
        result = session.answer(query)
        assert result.algorithm == "UIS"
        assert result.passed_vertices >= 1

    def test_repr(self, session):
        assert "uis" in repr(session)
