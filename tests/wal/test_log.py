"""Unit tests for the write-ahead log: segments, snapshots, replay.

The durability contract under test:

* every acknowledged batch is one fsynced JSONL record stamped with the
  epoch it produced and that epoch's content fingerprint;
* replay over the same base state reproduces those epochs *and proves*
  it, record by record, via the fingerprint;
* compaction (snapshot-then-delete) and a torn final append are the two
  legal kinds of on-disk untidiness — replay absorbs both; anything
  else is corruption and refuses loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WalCorruptionError, WalReplayError
from repro.service.app import QueryService
from repro.wal import (
    TenantWal,
    UpdateWal,
    graph_from_snapshot,
    recover_service,
    snapshot_document,
)
from tests.helpers import graph_from_edges

CONSTRAINT = "SELECT ?x WHERE { ?x <mark> ?y . }"


def make_graph(name="wal-base"):
    return graph_from_edges(
        [("s", "go", "m"), ("m", "mark", "m"), ("x", "go", "y")], name=name
    )


def make_leader(wal, graph=None):
    service = QueryService(graph or make_graph(), seed=0)
    service.attach_wal(wal)
    return service


def segment_names(wal):
    return sorted(p.name for p in wal._segment_paths())


class TestSnapshotRoundtrip:
    def test_graph_from_snapshot_preserves_ids_and_fingerprint(self):
        graph = make_graph()
        graph.add_edge("y", "later", "z")  # interning order matters
        document = snapshot_document(
            graph, tenant="t", epoch=3, fingerprint=graph.content_fingerprint()
        )
        rebuilt = graph_from_snapshot(document)
        assert rebuilt.content_fingerprint() == graph.content_fingerprint()
        assert rebuilt.vid("z") == graph.vid("z")
        assert rebuilt.label_id("later") == graph.label_id("later")

    def test_malformed_snapshot_document_is_corruption(self):
        with pytest.raises(WalCorruptionError):
            graph_from_snapshot({"graph": {"name": "x"}})  # missing keys


class TestAppendAndReplay:
    def test_records_step_epochs_by_one_and_replay_reconverges(self, tmp_path):
        wal = TenantWal(tmp_path, "default", compact_every=100)
        leader = make_leader(wal)
        try:
            leader.apply_updates([("m", "go", "t2")])
            leader.apply_updates([("t2", "go", "t3"), ("s", "go", "m")])
            leader.apply_updates(
                [("x", "go", "y", "remove"), ("ghost", "go", "s", "remove")]
            )
            tip_epoch = leader.epoch.epoch_id
            tip_fingerprint = leader.epoch.fingerprint
            assert tip_epoch == 3
        finally:
            leader.close()
        records = list(wal.read_records())
        assert [r.epoch for r in records] == [1, 2, 3]
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[2].edges == (("x", "go", "y", "remove"),
                                    ("ghost", "go", "s", "remove"))

        replica = QueryService(make_graph(), seed=0)
        try:
            replay = TenantWal(tmp_path, "default").replay_into(replica)
            assert replay == {
                "applied": 3,
                "skipped": 0,
                "epoch": tip_epoch,
                "truncated_tail": False,
            }
            assert replica.epoch.fingerprint == tip_fingerprint
            assert not replica.graph.has_edge_named("x", "go", "y")
        finally:
            replica.close()

    def test_noop_batches_are_never_appended(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("s", "go", "m")])  # duplicate add
            leader.apply_updates([("s", "nope", "m", "remove")])  # absent
            assert leader.epoch.epoch_id == 0
            assert list(wal.read_records()) == []
            leader.apply_updates([("s", "go", "w")])
            assert [r.epoch for r in wal.read_records()] == [1]
        finally:
            leader.close()

    def test_epoch_gap_refuses_replay(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
            leader.apply_updates([("a2", "go", "a3")])
        finally:
            leader.close()
        # Lose the first record: replay must refuse, not silently skip.
        segment = wal._segment_paths()[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(b"".join(lines[1:]))
        replica = QueryService(make_graph(), seed=0)
        try:
            with pytest.raises(WalReplayError, match="epoch gap"):
                TenantWal(tmp_path, "default").replay_into(replica)
        finally:
            replica.close()

    def test_fingerprint_mismatch_refuses_replay(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
        finally:
            leader.close()
        segment = wal._segment_paths()[0]
        record = json.loads(segment.read_bytes())
        record["fingerprint"] = "0" * 16
        segment.write_bytes(json.dumps(record).encode() + b"\n")
        replica = QueryService(make_graph(), seed=0)
        try:
            with pytest.raises(WalReplayError, match="fingerprint mismatch"):
                TenantWal(tmp_path, "default").replay_into(replica)
        finally:
            replica.close()

    def test_replay_against_wrong_base_graph_refuses(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
        finally:
            leader.close()
        wrong = graph_from_edges([("other", "go", "base")], name="wrong")
        replica = QueryService(wrong, seed=0)
        try:
            with pytest.raises(WalReplayError):
                TenantWal(tmp_path, "default").replay_into(replica)
        finally:
            replica.close()


class TestTornTail:
    def test_torn_final_line_is_tolerated_and_repaired(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
            leader.apply_updates([("a2", "go", "a3")])
        finally:
            leader.close()
        segment = wal._segment_paths()[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-10])  # power loss mid-append

        reopened = TenantWal(tmp_path, "default")
        assert reopened.truncated_tail
        assert reopened.last_epoch == 1
        replica = QueryService(make_graph(), seed=0)
        try:
            replay = reopened.replay_into(replica)
            assert replay["applied"] == 1
            assert replay["truncated_tail"] is True
            # The repaired log accepts new appends cleanly.
            replica.attach_wal(reopened)
            replica.apply_updates([("fresh", "go", "start")])
            assert [r.epoch for r in reopened.read_records()] == [1, 2]
            assert not reopened.truncated_tail
        finally:
            replica.close()

    def test_torn_line_in_older_segment_is_corruption(self, tmp_path):
        wal = TenantWal(tmp_path, "default", compact_every=100)
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
        finally:
            leader.close()
        first = wal._segment_paths()[0]
        first.write_bytes(first.read_bytes()[:-3])
        # A second, newer segment makes the torn one non-final.
        (tmp_path / "default" / "wal-000000000099.log").write_bytes(b"")
        with pytest.raises(WalCorruptionError, match="torn line"):
            list(TenantWal(tmp_path, "default").read_records())

    def test_garbage_mid_segment_is_corruption(self, tmp_path):
        wal = TenantWal(tmp_path, "default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a1", "go", "a2")])
        finally:
            leader.close()
        segment = wal._segment_paths()[0]
        segment.write_bytes(b"not json\n" + segment.read_bytes())
        with pytest.raises(WalCorruptionError, match="malformed record"):
            list(TenantWal(tmp_path, "default").read_records())


class TestCompaction:
    def test_compaction_snapshots_and_drops_covered_segments(self, tmp_path):
        wal = TenantWal(tmp_path, "default", compact_every=2)
        leader = make_leader(wal)
        try:
            for i in range(5):
                leader.apply_updates([(f"c{i}", "go", f"c{i + 1}")])
            assert wal.snapshot_epoch == 4  # compacted at 2 and 4
            loaded = wal.load_snapshot()
            assert loaded is not None
            graph, epoch, fingerprint = loaded
            assert epoch == 4
            assert graph.content_fingerprint() == fingerprint
            # Only the post-snapshot segment survives.
            assert segment_names(wal) == ["wal-000000000005.log"]
        finally:
            leader.close()

    def test_recovery_from_snapshot_plus_tail(self, tmp_path):
        wal = TenantWal(tmp_path, "default", compact_every=2)
        leader = make_leader(wal)
        try:
            for i in range(5):
                leader.apply_updates([(f"c{i}", "go", f"c{i + 1}")])
            tip = (leader.epoch.epoch_id, leader.epoch.fingerprint)
        finally:
            leader.close()
        recovering = TenantWal(tmp_path, "default", compact_every=2)
        graph, epoch, fingerprint = recovering.load_snapshot()
        from repro.graph.csr import freeze_graph

        replica = QueryService(freeze_graph(graph), seed=0)
        try:
            replica.reset_epoch(epoch, expected_fingerprint=fingerprint)
            replay = recovering.replay_into(replica)
            assert replay["applied"] == 1 and replay["skipped"] == 0
            assert (replica.epoch.epoch_id, replica.epoch.fingerprint) == tip
        finally:
            replica.close()

    def test_crash_between_snapshot_and_segment_delete(self, tmp_path):
        # Simulate dying after the snapshot landed but before the old
        # segments were unlinked: replay must skip the covered records.
        wal = TenantWal(tmp_path, "default", compact_every=100)
        leader = make_leader(wal)
        try:
            for i in range(3):
                leader.apply_updates([(f"c{i}", "go", f"c{i + 1}")])
            base = leader.epoch.graph
            wal._write_snapshot(
                base, epoch=leader.epoch.epoch_id,
                fingerprint=leader.epoch.fingerprint,
            )  # no _drop_obsolete_segments: the "crash"
            leader.apply_updates([("tail", "go", "c0")])
            tip = (leader.epoch.epoch_id, leader.epoch.fingerprint)
        finally:
            leader.close()
        recovering = TenantWal(tmp_path, "default")
        assert recovering.snapshot_epoch == 3
        graph, epoch, fingerprint = recovering.load_snapshot()
        from repro.graph.csr import freeze_graph

        replica = QueryService(freeze_graph(graph), seed=0)
        try:
            replica.reset_epoch(epoch, expected_fingerprint=fingerprint)
            replay = recovering.replay_into(replica)
            assert replay["skipped"] == 3  # the pre-snapshot leftovers
            assert replay["applied"] == 1
            assert (replica.epoch.epoch_id, replica.epoch.fingerprint) == tip
        finally:
            replica.close()


class TestRecoverService:
    def test_recover_from_base_tsv_and_from_snapshot(self, tmp_path):
        from repro.graph.io import dump_tsv

        graph = make_graph()
        tsv = tmp_path / "base.tsv"
        dump_tsv(graph, tsv)
        wal = TenantWal(tmp_path / "wal", "default", compact_every=3)
        leader = make_leader(wal, graph.copy())
        try:
            for i in range(2):  # below compact_every: no snapshot yet
                leader.apply_updates([(f"c{i}", "go", f"c{i + 1}")])
            tip = (leader.epoch.epoch_id, leader.epoch.fingerprint)
        finally:
            leader.close()
        service, replay = recover_service(
            TenantWal(tmp_path / "wal", "default", compact_every=3),
            graph_path=tsv,
        )
        try:
            assert replay["applied"] == 2
            assert (service.epoch.epoch_id, service.epoch.fingerprint) == tip
            # attach=True by default: the recovered leader keeps logging.
            service.apply_updates([("after", "go", "crash")])
            assert service._wal is not None
        finally:
            service.close()
        # Push past compact_every so the next recovery starts from the
        # snapshot instead of the TSV.
        wal2 = TenantWal(tmp_path / "wal", "default", compact_every=3)
        assert wal2.snapshot_epoch == 3
        follower, replay = recover_service(
            wal2, graph_path=tsv, attach=False
        )
        try:
            assert follower.epoch.epoch_id == 3
            assert follower._wal is None  # attach=False: read-only use
        finally:
            follower.close()

    def test_describe_shape(self, tmp_path):
        root = UpdateWal(tmp_path, compact_every=7)
        wal = root.tenant("default")
        leader = make_leader(wal)
        try:
            leader.apply_updates([("a", "go", "b")])
            document = wal.describe()
            assert document["records"] == 1
            assert document["epoch"] == 1
            assert document["snapshot_epoch"] is None
            assert document["segments"] == 1
            assert document["compact_every"] == 7
        finally:
            leader.close()
            root.close()

    def test_compact_every_must_be_positive(self, tmp_path):
        with pytest.raises(WalCorruptionError):
            TenantWal(tmp_path, "default", compact_every=0)
