"""Follower mode: the WAL as a replication carrier.

A follower is just another reader of the leader's log directory: it
republishes the same epochs (same ids, same fingerprints — checked per
record), serves them read-only through the unchanged routes, and wears
its lag on ``/healthz`` and ``/metrics``.  These tests drive
``poll_once`` synchronously (the polling thread is a timer around it);
one test exercises the thread itself end-to-end over HTTP.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ReadOnlyServiceError
from repro.index.local_index import build_local_index
from repro.obs.prometheus import parse_prometheus_text, render_metrics
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.wal import TenantWal, WalFollower
from tests.helpers import graph_from_edges

CONSTRAINT = "SELECT ?x WHERE { ?x <mark> ?y . }"


def make_graph(name="repl"):
    return graph_from_edges(
        [("s", "go", "m"), ("m", "mark", "m"), ("x", "go", "y")], name=name
    )


def make_pair(tmp_path, *, compact_every=100, indexed=False):
    """A leader (WAL attached) and a follower tailing the same directory."""
    wal = TenantWal(tmp_path, "default", compact_every=compact_every)
    graph = make_graph()
    index = build_local_index(graph, k=2, rng=0) if indexed else None
    leader = QueryService(graph, index, seed=0)
    leader.attach_wal(wal)
    replica_graph = make_graph()
    replica_index = build_local_index(replica_graph, k=2, rng=0) if indexed else None
    replica = QueryService(replica_graph, replica_index, seed=0)
    replica.read_only = True
    follower = WalFollower(
        replica, TenantWal(tmp_path, "default", compact_every=compact_every)
    )
    replica.replication = follower
    return leader, replica, follower


class TestPollOnce:
    @pytest.mark.parametrize("indexed", [False, True])
    def test_follower_republishes_the_leaders_epochs(self, tmp_path, indexed):
        leader, replica, follower = make_pair(tmp_path, indexed=indexed)
        try:
            leader.apply_updates([("m", "go", "t2")])
            leader.apply_updates(
                [("t2", "go", "t3"), ("x", "go", "y", "remove")]
            )
            report = follower.poll_once()
            assert report["applied"] == 2 and not report["resynced"]
            assert replica.epoch.epoch_id == leader.epoch.epoch_id
            assert replica.epoch.fingerprint == leader.epoch.fingerprint
            for spec in (("s", "t3", ["go"], CONSTRAINT),
                         ("x", "y", ["go"], CONSTRAINT)):
                mine, _ = replica.query(*spec)
                theirs, _ = leader.query(*spec)
                assert mine.answer == theirs.answer
        finally:
            leader.close()
            replica.close()

    def test_lag_is_zero_when_caught_up_and_counts_when_behind(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        try:
            follower.poll_once()
            assert follower.describe()["lag_epochs"] == 0
            leader.apply_updates([("a1", "go", "a2")])
            leader.apply_updates([("a2", "go", "a3")])
            # Reload the view without applying: the lag a stalled poll
            # loop would report.
            follower.wal.reload()
            follower._lag_epochs = max(
                0, follower.wal.last_epoch - replica.epoch.epoch_id
            )
            assert follower._lag_epochs == 2
            report = follower.poll_once()
            assert report["lag_epochs"] == 0
            document = follower.describe()
            assert document["role"] == "follower"
            assert document["epoch"] == 2
            assert document["records_applied"] == 2
            assert document["lag_seconds"] == 0.0
        finally:
            leader.close()
            replica.close()

    def test_resync_after_leader_compacts_past_the_follower(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path, compact_every=2)
        try:
            # 4 epochs with compact_every=2: snapshot at 4, segments for
            # 1-4 dropped — the records the follower needed are gone.
            for i in range(4):
                leader.apply_updates([(f"c{i}", "go", f"c{i + 1}")])
            report = follower.poll_once()
            assert report["resynced"] is True
            assert replica.epoch.epoch_id == 4
            assert replica.epoch.fingerprint == leader.epoch.fingerprint
            # Subsequent records replay incrementally again.
            leader.apply_updates([("tail", "go", "c0")])
            report = follower.poll_once()
            assert report["resynced"] is False and report["applied"] == 1
            assert replica.epoch.fingerprint == leader.epoch.fingerprint
        finally:
            leader.close()
            replica.close()

    def test_health_and_metrics_carry_replication_state(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        try:
            leader.apply_updates([("a1", "go", "a2")])
            follower.poll_once()
            health = replica.health()
            assert health["replication"]["role"] == "follower"
            assert health["replication"]["lag_epochs"] == 0
            assert health["replication"]["wal_epoch"] == 1
            leader_health = leader.health()
            assert leader_health["wal"]["records"] == 1
            samples = parse_prometheus_text(
                render_metrics({"default": replica.stats_snapshot()},
                               version="test")
            )
            names = {key[0] for key in samples}
            assert {
                "repro_follower_lag_epochs",
                "repro_follower_lag_seconds",
                "repro_follower_wal_epoch",
                "repro_follower_records_applied_total",
            } <= names
            leader_samples = parse_prometheus_text(
                render_metrics({"default": leader.stats_snapshot()},
                               version="test")
            )
            leader_names = {key[0] for key in leader_samples}
            assert {
                "repro_wal_records_total",
                "repro_wal_segments",
                "repro_wal_epoch",
            } <= leader_names
        finally:
            leader.close()
            replica.close()


class TestReadOnlyGate:
    def test_handle_updates_raises_structured_403(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        try:
            with pytest.raises(ReadOnlyServiceError) as excinfo:
                replica.handle_updates({"edges": [["a", "go", "b"]]})
            assert excinfo.value.status == 403
            assert excinfo.value.detail == {"role": "follower"}
            # The tailer itself sits below the gate: polling still works.
            leader.apply_updates([("a", "go", "b")])
            assert follower.poll_once()["applied"] == 1
        finally:
            leader.close()
            replica.close()

    def test_post_edges_to_follower_is_403_over_http(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        server = create_server(replica, "127.0.0.1", 0, allow_updates=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/edges"
            request = urllib.request.Request(
                url,
                data=json.dumps({"edges": [["a", "go", "b"]]}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 403
            body = json.loads(excinfo.value.read())
            assert body["error"]["type"] == "read-only"
            assert body["error"]["detail"] == {"role": "follower"}
        finally:
            server.shutdown()
            server.server_close()
            leader.close()
            replica.close()


class TestPollingThread:
    def test_started_follower_converges_and_stops_cleanly(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        follower.interval = 0.05
        try:
            follower.start()
            follower.start()  # idempotent
            for i in range(3):
                leader.apply_updates([(f"t{i}", "go", f"t{i + 1}")])
            deadline = time.time() + 10
            while time.time() < deadline:
                if replica.epoch.epoch_id == leader.epoch.epoch_id:
                    break
                time.sleep(0.02)
            assert replica.epoch.epoch_id == leader.epoch.epoch_id
            assert replica.epoch.fingerprint == leader.epoch.fingerprint
            assert follower.last_error is None
        finally:
            follower.stop()
            leader.close()
            replica.close()
        assert follower._thread is None

    def test_wal_errors_surface_without_killing_the_thread(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        try:
            leader.apply_updates([("a1", "go", "a2")])
            segment = sorted((tmp_path / "default").glob("wal-*.log"))[0]
            record = json.loads(segment.read_bytes())
            record["fingerprint"] = "f" * 16
            segment.write_bytes(json.dumps(record).encode() + b"\n")
            follower.interval = 0.05
            follower.start()
            deadline = time.time() + 10
            while time.time() < deadline and follower.last_error is None:
                time.sleep(0.02)
            assert follower.last_error is not None
            assert "fingerprint" in follower.last_error
            assert "error" in follower.describe()
            # Reads keep serving; the stall is visible, not fatal.
            result, _ = replica.query("s", "m", ["go"], CONSTRAINT)
            assert result.answer is True
        finally:
            follower.stop()
            leader.close()
            replica.close()


class TestStuckShutdown:
    def test_wedged_poll_is_abandoned_loudly(self, tmp_path):
        from repro.resilience.faults import FaultRule, FaultyWal

        leader, replica, follower = make_pair(tmp_path)
        leader.apply_updates([("a1", "go", "a2")])
        # First reload wedges for 1s — a dead NFS mount in miniature.
        faulty = FaultyWal(
            follower.wal,
            [FaultRule("hang", operation="reload", count=1, duration=1.0)],
        )
        follower.wal = faulty
        follower.interval = 30.0  # one poll is all this test needs
        try:
            follower.start()
            deadline = time.time() + 5
            while time.time() < deadline:
                if faulty._calls.get("reload", 0) >= 1:
                    break  # the poll has entered the hang
                time.sleep(0.005)
            assert faulty._calls.get("reload", 0) >= 1
            stopped = follower.stop(timeout=0.2)
            assert stopped is False
            assert follower.stuck is True
            assert "failed to stop" in follower.last_error
            described = follower.describe()
            assert described["stuck"] is True
            assert described["error"] == follower.last_error
            samples = parse_prometheus_text(
                render_metrics({"default": replica.stats_snapshot()},
                               version="test")
            )
            stuck_values = [
                value for (name, _labels), value in samples.items()
                if name == "repro_follower_stuck"
            ]
            assert stuck_values == [1.0]
        finally:
            # Let the wedged poll drain so close() tears down cleanly.
            thread = follower._thread
            if thread is not None:
                thread.join(timeout=5)
            leader.close()
            replica.close()

    def test_clean_stop_reports_not_stuck(self, tmp_path):
        leader, replica, follower = make_pair(tmp_path)
        try:
            follower.interval = 0.05
            follower.start()
            assert follower.stop() is True
            assert follower.stuck is False
            assert follower.describe()["stuck"] is False
        finally:
            leader.close()
            replica.close()
