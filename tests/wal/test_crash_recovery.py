"""Randomized crash recovery: kill -9 semantics vs a never-crashed oracle.

The acceptance criterion for the WAL, stated as a property: over ~30
seeded graphs, interleave mixed insert/remove batches with queries,
then "crash" (drop every in-memory structure on the floor — the
process-level analogue of SIGKILL, since nothing below the fsynced log
survives either way) and recover with :func:`repro.wal.recover_service`
from the base TSV plus the log.  The recovered service must

* resume at exactly the pre-crash epoch with the pre-crash content
  fingerprint (continuity, proven per replayed record), and
* answer every query identically to a :class:`NaiveTwoProcedure` oracle
  running on an independently mutated mirror graph — the oracle shares
  no code with the WAL, the epoch machinery, or the index repair.

Fault injections ride the same machinery: a truncated final append
(recover to tip-1, agree with *that* epoch's oracle) and a crash
between compaction's snapshot and segment deletion (replay skips the
covered records and still reconverges).
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.graph.io import dump_tsv, load_tsv
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.wal import TenantWal, recover_service

SEEDS = list(range(30))
UPDATE_ROUNDS = 3
QUERIES_PER_ROUND = 5
NUM_LABELS = 3
NUM_VERTICES = 9
COMPACT_EVERY = 3  # small enough that half the seeds cross a snapshot


def write_base_tsv(seed, tmp_path):
    """Materialise the seed graph as the deployment's base TSV.

    Both the leader and every recovery load the *same file*, so vertex
    and label interning order — which the fingerprint chain depends on
    — is identical by construction.
    """
    graph = random_labeled_graph(
        NUM_VERTICES, 1.6, NUM_LABELS, rng=seed, name=f"crash-{seed}"
    )
    path = tmp_path / f"crash-{seed}.tsv"
    dump_tsv(graph, path)
    return path


def make_leader(tsv, wal, seed):
    """Alternate indexed and index-free leaders, WAL attached."""
    graph = load_tsv(tsv, name=tsv.stem)
    index = build_local_index(graph, k=3, rng=seed) if seed % 2 == 0 else None
    service = QueryService(graph, index, seed=seed)
    service.attach_wal(wal)
    return service


def random_mixed_batch(rng, round_number, oracle):
    """2-5 operations: additions, removals of real edges, and the
    occasional removal of an edge that does not exist."""
    known = [str(name) for name in oracle.vertex_names()]
    fresh = [f"u{round_number}_{i}" for i in range(2)]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    batch = []
    for _ in range(rng.randint(2, 5)):
        roll = rng.random()
        if roll < 0.30 and oracle.num_edges:
            edge = rng.choice(sorted(oracle._edge_set))
            batch.append(
                (
                    oracle.name_of(edge[0]),
                    oracle.label_name(edge[1]),
                    oracle.name_of(edge[2]),
                    "remove",
                )
            )
        elif roll < 0.38:
            batch.append(
                (rng.choice(known), rng.choice(labels), "no-such-vertex",
                 "remove")
            )
        else:
            source = rng.choice(known if roll < 0.85 else known + fresh)
            target = rng.choice(known if rng.random() < 0.85 else known + fresh)
            batch.append((source, rng.choice(labels), target, "add"))
    return batch


def apply_to_oracle(oracle, batch):
    """Mutate the mirror graph; returns (added, removed, missing)."""
    added = removed = missing = 0
    for source, label, target, op in batch:
        if op == "add":
            added += bool(oracle.add_edge(source, label, target))
        elif oracle.remove_edge(source, label, target):
            removed += 1
        else:
            missing += 1
    return added, removed, missing


def random_specs(rng, oracle, count=QUERIES_PER_ROUND):
    vertices = [str(name) for name in oracle.vertex_names()]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    label = f"l{rng.randrange(NUM_LABELS)}"
    return [
        (
            rng.choice(vertices),
            rng.choice(vertices),
            rng.sample(labels, rng.randint(1, NUM_LABELS)),
            f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}",
        )
        for _ in range(count)
    ]


def naive_answer(graph, source, target, labels, constraint_text, cache):
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        return False
    if constraint_text not in cache:
        cache[constraint_text] = SubstructureConstraint.from_sparql(
            constraint_text
        )
    query = LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=cache[constraint_text],
    )
    return NaiveTwoProcedure(graph).decide(query)


def assert_agreement(service, oracle, rng, parsed, context):
    for source, target, labels, text in random_specs(rng, oracle):
        expected = naive_answer(oracle, source, target, labels, text, parsed)
        result, meta = service.query(source, target, labels, text)
        assert result.answer == expected, (
            f"{context}: {source}->{target} L={labels} S={text!r}: "
            f"service={result.answer} naive={expected} ({meta['reason']})"
        )


class TestCrashRecoveryAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kill_mid_stream_then_recover(self, seed, tmp_path):
        tsv = write_base_tsv(seed, tmp_path)
        oracle = load_tsv(tsv, name=tsv.stem)
        wal_dir = tmp_path / "wal"
        wal = TenantWal(wal_dir, "default", compact_every=COMPACT_EVERY)
        leader = make_leader(tsv, wal, seed)
        rng = random.Random(seed * 52361 + 11)
        parsed = {}
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_mixed_batch(rng, round_number, oracle)
                summary = leader.apply_updates(batch)
                added, removed, missing = apply_to_oracle(oracle, batch)
                assert summary["edges_added"] == added
                assert summary["edges_removed"] == removed
                assert summary["edges_missing"] == missing
                assert leader.graph.num_edges == oracle.num_edges
                assert_agreement(
                    leader, oracle, rng, parsed,
                    f"seed={seed} round={round_number} pre-crash",
                )
            tip = (leader.epoch.epoch_id, leader.epoch.fingerprint)
        finally:
            leader.close()
            wal.close()
        # The crash: every in-memory structure is gone; only the fsynced
        # directory remains.  Recovery must reconverge, provably.
        recovered, replay = recover_service(
            TenantWal(wal_dir, "default", compact_every=COMPACT_EVERY),
            graph_path=tsv,
        )
        try:
            assert (recovered.epoch.epoch_id, recovered.epoch.fingerprint) == tip
            assert replay["epoch"] == tip[0]
            assert_agreement(
                recovered, oracle, rng, parsed, f"seed={seed} post-recovery"
            )
            # The recovered leader is attached: it keeps logging, and a
            # second crash-recover cycle lands on the new tip.
            batch = random_mixed_batch(rng, UPDATE_ROUNDS + 1, oracle)
            recovered.apply_updates(batch)
            apply_to_oracle(oracle, batch)
            second_tip = (
                recovered.epoch.epoch_id, recovered.epoch.fingerprint,
            )
            assert_agreement(
                recovered, oracle, rng, parsed, f"seed={seed} post-restart"
            )
        finally:
            recovered.close()
        again, _ = recover_service(
            TenantWal(wal_dir, "default", compact_every=COMPACT_EVERY),
            graph_path=tsv,
        )
        try:
            assert (again.epoch.epoch_id, again.epoch.fingerprint) == second_tip
        finally:
            again.close()

    @pytest.mark.parametrize("seed", SEEDS[::3])
    def test_truncated_tail_recovers_to_previous_epoch(self, seed, tmp_path):
        tsv = write_base_tsv(seed, tmp_path)
        oracle = load_tsv(tsv, name=tsv.stem)
        # Per-epoch oracle states: losing the tail record must land the
        # recovery on the *previous* epoch's graph, not a hybrid.
        states = {0: oracle.copy()}
        wal_dir = tmp_path / "wal"
        # compact_every high: the torn record must not be snapshot-covered.
        wal = TenantWal(wal_dir, "default", compact_every=10_000)
        leader = make_leader(tsv, wal, seed)
        rng = random.Random(seed * 977 + 5)
        parsed = {}
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_mixed_batch(rng, round_number, oracle)
                leader.apply_updates(batch)
                apply_to_oracle(oracle, batch)
                states[leader.epoch.epoch_id] = oracle.copy()
            tip_epoch = leader.epoch.epoch_id
        finally:
            leader.close()
            wal.close()
        if tip_epoch == 0:
            pytest.skip("every batch happened to be a no-op")
        segments = sorted(wal_dir.glob("default/wal-*.log"))
        newest = segments[-1]
        newest.write_bytes(newest.read_bytes()[:-7])  # torn final append
        recovered, replay = recover_service(
            TenantWal(wal_dir, "default", compact_every=10_000),
            graph_path=tsv,
        )
        try:
            assert replay["truncated_tail"] is True
            assert recovered.epoch.epoch_id == tip_epoch - 1
            previous = states[tip_epoch - 1]
            assert (
                recovered.epoch.fingerprint == previous.content_fingerprint()
            )
            assert_agreement(
                recovered, previous, rng, parsed,
                f"seed={seed} post-truncation",
            )
        finally:
            recovered.close()

    @pytest.mark.parametrize("seed", SEEDS[1::3])
    def test_kill_between_snapshot_and_segment_delete(self, seed, tmp_path):
        tsv = write_base_tsv(seed, tmp_path)
        oracle = load_tsv(tsv, name=tsv.stem)
        wal_dir = tmp_path / "wal"
        wal = TenantWal(wal_dir, "default", compact_every=10_000)
        leader = make_leader(tsv, wal, seed)
        rng = random.Random(seed * 31 + 2)
        parsed = {}
        try:
            for round_number in range(1, UPDATE_ROUNDS + 1):
                batch = random_mixed_batch(rng, round_number, oracle)
                leader.apply_updates(batch)
                apply_to_oracle(oracle, batch)
            # Compaction's first half lands, then the process dies before
            # _drop_obsolete_segments: every record is now also covered
            # by the snapshot.
            wal._write_snapshot(
                leader.epoch.graph,
                epoch=leader.epoch.epoch_id,
                fingerprint=leader.epoch.fingerprint,
            )
            tip = (leader.epoch.epoch_id, leader.epoch.fingerprint)
        finally:
            leader.close()
            wal.close()
        recovered, replay = recover_service(
            TenantWal(wal_dir, "default", compact_every=10_000),
            graph_path=tsv,
        )
        try:
            assert replay["applied"] == 0  # snapshot already covers the log
            assert replay["skipped"] >= (1 if tip[0] else 0)
            assert (recovered.epoch.epoch_id, recovered.epoch.fingerprint) == tip
            assert_agreement(
                recovered, oracle, rng, parsed,
                f"seed={seed} post-compaction-crash",
            )
        finally:
            recovered.close()
