"""Tests for incremental local-index maintenance (extension).

The invariant: after any sequence of edge insertions, each followed by
``refresh_after_edge``, the index tables must be identical to a fresh
``build_local_index`` over the final graph with the same landmarks.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.landmarks import NO_REGION
from repro.index.local_index import build_local_index
from tests.helpers import graph_from_edges


def tables_equal(a, b) -> bool:
    if set(a.ii) != set(b.ii):
        return False
    for u in a.ii:
        if {v: sorted(m) for v, m in a.ii[u].items()} != {
            v: sorted(m) for v, m in b.ii[u].items()
        }:
            return False
    if a.eit != b.eit or a.d != b.d:
        return False
    return True


class TestRefreshAfterEdge:
    def test_edge_inside_region_updates_ii(self):
        g = graph_from_edges([("L", "a", "p"), ("p", "a", "q")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        # new shortcut L -b-> q inside the region
        g.add_edge("L", "b", "q")
        assert index.refresh_after_edge(g.vid("L"), g.label_id("b"), g.vid("q"))
        fresh = build_local_index(g, landmarks=[g.vid("L")])
        assert tables_equal(index, fresh)

    def test_border_edge_updates_eit_and_d(self):
        g = graph_from_edges([("L1", "a", "p"), ("L2", "a", "x")])
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        g.add_edge("p", "b", "x")  # crosses from F(L1) into F(L2)
        assert index.refresh_after_edge(g.vid("p"), g.label_id("b"), g.vid("x"))
        fresh = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        assert tables_equal(index, fresh)
        assert index.correlation(g.vid("L1"), g.vid("L2")) == 1

    def test_edge_from_unassigned_vertex_is_noop(self):
        g = graph_from_edges([("L", "a", "p")], vertices=["island"])
        index = build_local_index(g, landmarks=[g.vid("L")])
        g.add_edge("island", "a", "p")
        assert not index.refresh_after_edge(
            g.vid("island"), g.label_id("a"), g.vid("p")
        )

    def test_new_vertex_gets_no_region(self):
        g = graph_from_edges([("L", "a", "p")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        g.add_edge("p", "a", "brand_new")
        index.refresh_after_edge(g.vid("p"), g.label_id("a"), g.vid("brand_new"))
        assert index.region_of(g.vid("brand_new")) == NO_REGION

    def test_sync_vertices_counts(self):
        g = graph_from_edges([("L", "a", "p")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        g.add_vertex("x1")
        g.add_vertex("x2")
        assert index.sync_vertices() == 2
        assert index.sync_vertices() == 0

    def test_ins_correct_after_refresh(self):
        g = figure3_graph()
        index = build_local_index(g, k=2, rng=0)
        # new edge creates a previously impossible path
        g.add_edge("v3", "follows", "v0")
        source_id = g.vid("v3")
        index.refresh_after_edge(source_id, g.label_id("follows"), g.vid("v0"))
        ins = INS(g, index)
        naive = NaiveTwoProcedure(g)
        query = LSCRQuery.create(
            "v3", "v2", ["follows", "likes"], figure3_constraint()
        )
        assert ins.decide(query) == naive.decide(query) is True


class TestIncrementalMatchesGroundTruth:
    """After refreshes, II[u] must equal the ground-truth CMS of the
    final graph restricted to the *snapshot* region (the partition is
    deliberately sticky — a fresh build may re-partition newly reachable
    vertices, which is a different-but-equally-valid index)."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_insertion_sequences(self, data):
        from tests.helpers import ground_truth_cms

        vertices = [f"v{i}" for i in range(8)]
        labels = ["a", "b", "c"]
        seed_edges = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices),
                    st.sampled_from(labels),
                    st.sampled_from(vertices),
                ),
                min_size=1,
                max_size=10,
            )
        )
        g = KnowledgeGraph("inc")
        for v in vertices:
            g.add_vertex(v)
        for label in labels:
            g.labels.intern(label)
        for s, l, t in seed_edges:
            g.add_edge(s, l, t)
        landmark_names = data.draw(
            st.lists(st.sampled_from(vertices), min_size=1, max_size=3, unique=True)
        )
        landmarks = [g.vid(n) for n in landmark_names]
        index = build_local_index(g, landmarks=landmarks)
        additions = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices),
                    st.sampled_from(labels),
                    st.sampled_from(vertices),
                ),
                max_size=6,
            )
        )
        for s, l, t in additions:
            if g.add_edge(s, l, t):
                index.refresh_after_edge(g.vid(s), g.label_id(l), g.vid(t))
        for u in index.partition.landmarks:
            region = set(index.partition.members[u])
            truth = ground_truth_cms(g, u, allowed=region)
            built = {v: set(masks) for v, masks in index.ii[u].items()}
            assert built == truth, f"landmark {g.name_of(u)}"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ins_agrees_with_oracle_after_refreshes(self, seed):
        rng = random.Random(seed)
        vertices = [f"v{i}" for i in range(7)]
        labels = ["a", "b"]
        g = KnowledgeGraph("inc2")
        for v in vertices:
            g.add_vertex(v)
        for label in labels:
            g.labels.intern(label)
        for _ in range(8):
            g.add_edge(rng.choice(vertices), rng.choice(labels), rng.choice(vertices))
        index = build_local_index(g, k=2, rng=seed)
        for _ in range(4):
            s, l, t = rng.choice(vertices), rng.choice(labels), rng.choice(vertices)
            if g.add_edge(s, l, t):
                index.refresh_after_edge(g.vid(s), g.label_id(l), g.vid(t))
        from repro.constraints.substructure import SubstructureConstraint
        from repro.sparql.ast import TriplePattern, Var

        constraint = SubstructureConstraint(
            [TriplePattern(Var("x"), rng.choice(labels), rng.choice(vertices))]
        )
        query = LSCRQuery.create(
            rng.choice(vertices), rng.choice(vertices), labels, constraint
        )
        assert INS(g, index).decide(query) == NaiveTwoProcedure(g).decide(query)


class TestRefreshRegions:
    def test_batch_refresh_matches_fresh_build(self):
        g = graph_from_edges([("L1", "a", "p"), ("L2", "a", "x")])
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        # One batch touching both regions: a crossing in each direction.
        g.add_edge("p", "b", "x")
        g.add_edge("x", "b", "p")
        touched = {index.region_of(g.vid("p")), index.region_of(g.vid("x"))}
        assert index.refresh_regions(touched) == 2
        fresh = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        assert tables_equal(index, fresh)

    def test_unknown_and_no_region_ids_ignored(self):
        g = graph_from_edges([("L", "a", "p")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        assert index.refresh_regions({NO_REGION, 999}) == 0

    def test_refresh_invalidates_cut_push_memos(self):
        # Regression: the Cut/Push memos cache projections of the
        # tables a refresh replaces; serving them after a refresh would
        # answer for the pre-update region.
        g = graph_from_edges([("L", "a", "p"), ("p", "b", "q")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        mask = 1 << g.label_id("a")
        stale = index.cut_targets(g.vid("L"), mask)
        assert g.vid("q") not in stale  # q only reachable via label b
        g.add_edge("p", "a", "q")  # q now reachable under {a} alone
        assert index.refresh_after_edge(g.vid("p"), g.label_id("a"), g.vid("q"))
        refreshed = index.cut_targets(g.vid("L"), mask)
        assert g.vid("q") in refreshed


class TestRemovalRepair:
    """Region refresh after edge *removals*.

    ``refresh_regions`` rebuilds a region's tables from the current
    graph, which makes the repair direction-agnostic — the same call
    the update path issues for insertions must also erase everything a
    retracted edge contributed (II paths inside the region, EIT border
    crossings out of it)."""

    def test_in_region_removal_matches_fresh_build(self):
        g = graph_from_edges([("L", "a", "p"), ("p", "a", "q"), ("L", "b", "q")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        assert g.remove_edge("L", "b", "q")
        assert index.refresh_regions({index.region_of(g.vid("L"))}) == 1
        fresh = build_local_index(g, landmarks=[g.vid("L")])
        assert tables_equal(index, fresh)

    def test_border_removal_clears_eit_and_correlation(self):
        g = graph_from_edges([("L1", "a", "p"), ("L2", "a", "x")])
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        g.add_edge("p", "b", "x")
        index.refresh_regions({index.region_of(g.vid("p"))})
        assert index.correlation(g.vid("L1"), g.vid("L2")) == 1
        assert g.remove_edge("p", "b", "x")
        assert index.refresh_regions({index.region_of(g.vid("p"))}) == 1
        fresh = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        assert tables_equal(index, fresh)
        assert index.correlation(g.vid("L1"), g.vid("L2")) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_ins_agrees_with_oracle_after_removals(self, seed):
        rng = random.Random(seed)
        vertices = [f"v{i}" for i in range(7)]
        labels = ["a", "b"]
        g = KnowledgeGraph("dec")
        for v in vertices:
            g.add_vertex(v)
        for label in labels:
            g.labels.intern(label)
        for _ in range(10):
            g.add_edge(rng.choice(vertices), rng.choice(labels),
                       rng.choice(vertices))
        index = build_local_index(g, k=2, rng=seed)
        for _ in range(4):
            if not g.num_edges:
                break
            s, lid, t = rng.choice(sorted(g._edge_set))
            assert g.remove_edge_ids(s, lid, t)
            index.refresh_regions({index.region_of(s)})
        from repro.constraints.substructure import SubstructureConstraint
        from repro.sparql.ast import TriplePattern, Var

        constraint = SubstructureConstraint(
            [TriplePattern(Var("x"), rng.choice(labels), rng.choice(vertices))]
        )
        query = LSCRQuery.create(
            rng.choice(vertices), rng.choice(vertices), labels, constraint
        )
        assert INS(g, index).decide(query) == NaiveTwoProcedure(g).decide(query)


class TestCloneFor:
    def test_clone_refresh_leaves_original_untouched(self):
        g = graph_from_edges([("L", "a", "p"), ("p", "a", "q")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        a_mask = 1 << g.label_id("a")
        original_cut = index.cut_targets(g.vid("L"), a_mask)

        mutated = g.copy()
        mutated.add_edge("L", "b", "q")  # new label, existing vertices
        clone = index.clone_for(mutated)
        assert clone.refresh_regions({clone.region_of(mutated.vid("L"))}) == 1

        # The clone reflects the mutated graph: q is now reachable
        # under {b} alone; the original index (and its memoised
        # projections) still serve the old epoch.
        b_mask = 1 << mutated.labels.id_of("b")
        assert mutated.vid("q") in clone.cut_targets(mutated.vid("L"), b_mask)
        assert index.cut_targets(g.vid("L"), a_mask) == original_cut
        assert clone.ii is not index.ii

    def test_clone_extends_region_for_new_vertices(self):
        g = graph_from_edges([("L", "a", "p")])
        index = build_local_index(g, landmarks=[g.vid("L")])
        mutated = g.copy()
        mutated.add_edge("p", "a", "brand_new")
        clone = index.clone_for(mutated)
        clone.sync_vertices()
        assert clone.region_of(mutated.vid("brand_new")) == NO_REGION
        # The original's region list did not grow.
        assert len(index.partition.region) == g.num_vertices
