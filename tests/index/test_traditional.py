"""Tests for the traditional landmark index ([19]-style comparator)."""

import pytest

from repro.core.lcr import lcr_reachable
from repro.datasets.synthetic import random_labeled_graph
from repro.exceptions import IndexingBudgetExceeded
from repro.index.traditional import (
    build_traditional_index,
    paper_landmark_count,
)
from tests.helpers import graph_from_edges


class TestLandmarkCount:
    def test_paper_formula_capped(self):
        # 1250 + sqrt(|V|), capped at |V|/4
        assert paper_landmark_count(100) == 25
        assert paper_landmark_count(10_000_000) == 1250 + round(10_000_000**0.5)

    def test_degenerate_sizes(self):
        assert paper_landmark_count(0) == 0
        assert paper_landmark_count(1) == 1


class TestBuild:
    def test_landmarks_are_highest_degree(self):
        g = graph_from_edges(
            [("hub", "p", f"x{i}") for i in range(5)] + [("a", "p", "b")]
        )
        index = build_traditional_index(g, k=1)
        assert g.name_of(index.landmarks[0]) == "hub"

    def test_partial_entries_bounded_by_b(self):
        g = random_labeled_graph(30, 2.0, 3, rng=0)
        index = build_traditional_index(g, k=3, b=4)
        for table in index.partial.values():
            assert len(table) <= 4 + 1  # b targets (+1 for the final insert)

    def test_budget_exceeded_raises(self):
        g = random_labeled_graph(200, 3.0, 6, rng=1)
        with pytest.raises(IndexingBudgetExceeded) as exc_info:
            build_traditional_index(g, budget_seconds=0.000001)
        assert exc_info.value.elapsed_seconds > 0

    def test_stats(self):
        g = random_labeled_graph(20, 1.5, 2, rng=0)
        index = build_traditional_index(g, k=2)
        stats = index.stats()
        assert stats["num_landmarks"] == 2
        assert stats["build_seconds"] > 0
        assert index.estimated_size_bytes() > 0


class TestQueries:
    def test_reaches_agrees_with_bfs(self):
        g = random_labeled_graph(25, 2.0, 3, rng=2)
        index = build_traditional_index(g, k=4)
        full = g.labels.full_mask()
        half = g.label_mask(["l0", "l1"])
        for s in range(0, g.num_vertices, 3):
            for t in range(0, g.num_vertices, 4):
                for mask in (full, half):
                    assert index.reaches(s, t, mask) == lcr_reachable(g, s, t, mask), (
                        g.name_of(s),
                        g.name_of(t),
                        bin(mask),
                    )

    def test_reaches_self(self):
        g = graph_from_edges([("a", "p", "b")])
        index = build_traditional_index(g, k=1)
        assert index.reaches(g.vid("a"), g.vid("a"), 0)

    def test_landmark_source_answers_from_table(self):
        g = graph_from_edges([("hub", "p", "x"), ("x", "q", "y")])
        index = build_traditional_index(g, k=1)
        hub = g.vid("hub")
        assert index.reaches(hub, g.vid("y"), g.labels.full_mask())
        assert not index.reaches(hub, g.vid("y"), g.label_mask(["p"]))
