"""Tests for landmark selection and the region partition."""

import pytest

from repro.datasets.lubm import generate_dataset
from repro.graph.builder import GraphBuilder
from repro.index.landmarks import (
    NO_REGION,
    bfs_traverse,
    default_landmark_count,
    select_landmarks,
)
from tests.helpers import graph_from_edges


class TestDefaultCount:
    def test_formula(self):
        # k = log2(|V|) * sqrt(|V|)
        assert default_landmark_count(1024) == round(10 * 32)

    def test_clamped_to_vertices(self):
        assert default_landmark_count(1) == 1
        assert default_landmark_count(0) == 0
        assert default_landmark_count(2) <= 2

    def test_at_least_one(self):
        for n in (2, 3, 5, 10):
            assert 1 <= default_landmark_count(n) <= n


class TestSelectLandmarks:
    def test_schema_driven_selection_prefers_instances(self):
        builder = GraphBuilder()
        for i in range(10):
            builder.typed(f"inst{i}", "Thing")
            builder.edge(f"inst{i}", "p", f"other{i}")
        graph = builder.build()
        landmarks = select_landmarks(graph, k=4, rng=0)
        assert len(landmarks) == 4
        names = {graph.name_of(v) for v in landmarks}
        # schema instances are preferred over untyped vertices
        assert all(name.startswith("inst") for name in names)

    def test_fallback_to_degree_without_schema(self):
        graph = graph_from_edges(
            [("hub", "p", f"leaf{i}") for i in range(6)] + [("a", "p", "b")]
        )
        landmarks = select_landmarks(graph, k=1, rng=0)
        assert graph.name_of(landmarks[0]) == "hub"

    def test_k_clamped(self):
        graph = graph_from_edges([("a", "p", "b")])
        assert len(select_landmarks(graph, k=99, rng=0)) == 2

    def test_deterministic_per_seed(self):
        graph = generate_dataset("D0", rng=0)
        first = select_landmarks(graph, k=10, rng=7)
        second = select_landmarks(graph, k=10, rng=7)
        assert first == second

    def test_no_duplicates(self):
        graph = generate_dataset("D0", rng=0)
        landmarks = select_landmarks(graph, k=40, rng=3)
        assert len(landmarks) == len(set(landmarks))

    def test_empty_graph(self):
        from repro.graph.labeled_graph import KnowledgeGraph

        assert select_landmarks(KnowledgeGraph(), rng=0) == []


class TestBfsTraverse:
    def test_landmarks_own_their_regions(self):
        graph = graph_from_edges([("a", "p", "b"), ("c", "p", "d")])
        landmarks = [graph.vid("a"), graph.vid("c")]
        partition = bfs_traverse(graph, landmarks)
        assert partition.region_of(graph.vid("a")) == graph.vid("a")
        assert partition.region_of(graph.vid("c")) == graph.vid("c")

    def test_every_region_member_reachable_from_landmark(self):
        graph = generate_dataset("D0", rng=0)
        landmarks = select_landmarks(graph, k=8, rng=1)
        partition = bfs_traverse(graph, landmarks)
        from repro.core.lcr import lcr_reachable

        full = graph.labels.full_mask()
        for landmark, members in partition.members.items():
            for member in members[:20]:  # sample for speed
                assert lcr_reachable(graph, landmark, member, full)

    def test_unreached_vertices_have_no_region(self):
        graph = graph_from_edges([("a", "p", "b")], vertices=["isolated"])
        partition = bfs_traverse(graph, [graph.vid("a")])
        assert partition.region_of(graph.vid("isolated")) == NO_REGION

    def test_fairness_balances_regions(self):
        # two landmarks expanding into a shared line must split it.
        edges = [(f"m{i}", "p", f"m{i+1}") for i in range(10)]
        edges += [("L1", "p", "m0"), ("L2", "p", "m10")]
        edges += [(f"m{i+1}", "q", f"m{i}") for i in range(10)]
        graph = graph_from_edges(edges)
        partition = bfs_traverse(graph, [graph.vid("L1"), graph.vid("L2")])
        sizes = sorted(len(m) for m in partition.members.values())
        assert sizes[0] >= 4  # neither landmark starves

    def test_first_landmark_wins_duplicates(self):
        graph = graph_from_edges([("a", "p", "b")])
        partition = bfs_traverse(graph, [graph.vid("a"), graph.vid("a")])
        assert partition.landmarks == [graph.vid("a")]

    def test_assigned_count(self):
        graph = graph_from_edges([("a", "p", "b")], vertices=["x"])
        partition = bfs_traverse(graph, [graph.vid("a")])
        assert partition.assigned_count() == 2

    def test_partition_disjoint_and_covering(self):
        graph = generate_dataset("D0", rng=0)
        landmarks = select_landmarks(graph, k=12, rng=2)
        partition = bfs_traverse(graph, landmarks)
        seen = set()
        for landmark, members in partition.members.items():
            for member in members:
                assert member not in seen
                seen.add(member)
                assert partition.region_of(member) == landmark
        assert len(seen) == partition.assigned_count()
