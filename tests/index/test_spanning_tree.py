"""Tests for the sampling-tree LCR index ([6]-style, Figure 5)."""

import pytest

from repro.core.lcr import lcr_reachable
from repro.datasets.synthetic import line_graph, random_labeled_graph
from repro.exceptions import IndexingBudgetExceeded
from repro.index.spanning_tree import build_sampling_tree_index
from tests.helpers import graph_from_edges


class TestForest:
    def test_tree_covers_reachable_vertices(self):
        g = line_graph(5)
        index = build_sampling_tree_index(g, rng=0)
        roots = set(index.roots)
        for v in g.vertices():
            assert index.parent[v] != -1 or v in roots

    def test_parents_are_real_edges(self):
        g = random_labeled_graph(20, 2.0, 3, rng=1)
        index = build_sampling_tree_index(g, rng=1)
        for v in g.vertices():
            p = index.parent[v]
            if p != -1:
                assert g.has_edge(p, index.parent_label[v], v)

    def test_tree_path_mask_along_parent_edges(self):
        g = random_labeled_graph(20, 2.0, 3, rng=7)
        index = build_sampling_tree_index(g, rng=7)
        for v in g.vertices():
            p = index.parent[v]
            if p != -1:
                assert index.tree_path_mask(p, v) == 1 << index.parent_label[v]

    def test_tree_path_mask_accumulates_labels(self):
        g = line_graph(4)
        index = build_sampling_tree_index(g, rng=0)
        # whichever root owns n4, the path to n4 uses only "next"
        root = g.vid("n4")
        while index.parent[root] != -1:
            root = index.parent[root]
        mask = index.tree_path_mask(root, g.vid("n4"))
        if root != g.vid("n4"):
            assert mask == g.label_mask(["next"])

    def test_tree_path_mask_none_for_non_ancestor(self):
        g = graph_from_edges([("a", "p", "b"), ("c", "p", "d")])
        index = build_sampling_tree_index(g, rng=0)
        assert index.tree_path_mask(g.vid("a"), g.vid("d")) is None


class TestClosure:
    def test_reaches_agrees_with_bfs(self):
        g = random_labeled_graph(22, 2.0, 3, rng=3)
        index = build_sampling_tree_index(g, rng=3)
        masks = [g.labels.full_mask(), g.label_mask(["l0"]), g.label_mask(["l1", "l2"])]
        for s in range(0, g.num_vertices, 3):
            for t in range(0, g.num_vertices, 2):
                for mask in masks:
                    assert index.reaches(s, t, mask) == lcr_reachable(g, s, t, mask)

    def test_tree_covered_entries_bounded(self):
        g = line_graph(4)
        index = build_sampling_tree_index(g, rng=0)
        covered = index.tree_covered_entries()
        # every parent->child pair is covered, so at least |tree edges|
        assert index.stats()["tree_edges"] <= covered
        assert covered <= index.stats()["closure_entries"]

    def test_stats(self):
        g = line_graph(3)
        index = build_sampling_tree_index(g, rng=0)
        stats = index.stats()
        # a forest: |V| = tree edges + roots
        assert stats["tree_edges"] == g.num_vertices - len(index.roots)
        assert stats["closure_entries"] >= 3
        assert stats["build_seconds"] > 0

    def test_budget_exceeded_raises(self):
        g = random_labeled_graph(300, 3.0, 5, rng=4)
        with pytest.raises(IndexingBudgetExceeded):
            build_sampling_tree_index(g, rng=0, budget_seconds=1e-9)


class TestScalingShape:
    """The Figure 5 argument: denser or larger graphs index slower."""

    def test_denser_graphs_take_longer(self):
        times = []
        for density in (1.0, 4.0):
            g = random_labeled_graph(60, density, 3, rng=5)
            index = build_sampling_tree_index(g, rng=5)
            times.append(index.build_seconds)
        assert times[1] > times[0]

    def test_larger_graphs_take_longer(self):
        times = []
        for n in (30, 120):
            g = random_labeled_graph(n, 1.5, 3, rng=6)
            index = build_sampling_tree_index(g, rng=6)
            times.append(index.build_seconds)
        assert times[1] > times[0]
