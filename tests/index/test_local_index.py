"""Tests for the local index (Algorithm 3), including Theorem 5.2.

The consistency theorem says the built ``II[u]`` equals the defined
``M(u, v | F(u))`` for every region vertex ``v``; the ground truth comes
from independent simple-path enumeration (tests/helpers.py).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcr import lcr_closure
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.landmarks import NO_REGION, bfs_traverse
from repro.index.local_index import RHO_UNKNOWN, build_local_index
from tests.helpers import graph_from_edges, ground_truth_cms


def small_two_region_graph() -> KnowledgeGraph:
    return graph_from_edges(
        [
            ("L1", "a", "p"),
            ("p", "b", "q"),
            ("q", "a", "L1"),
            ("p", "c", "r"),       # r belongs to L2's region via the race
            ("L2", "a", "r"),
            ("r", "b", "s"),
            ("s", "c", "L2"),
            ("q", "c", "s"),       # border edge region1 -> region2
        ]
    )


class TestBuildStructure:
    def test_every_landmark_gets_tables(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        assert set(index.ii) == {g.vid("L1"), g.vid("L2")}
        assert set(index.eit) == {g.vid("L1"), g.vid("L2")}
        assert set(index.d) == {g.vid("L1"), g.vid("L2")}

    def test_landmark_self_entry_is_empty_set(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1")])
        assert index.ii[g.vid("L1")].get(g.vid("L1")) == [0]

    def test_ii_covers_exactly_the_region(self):
        g = small_two_region_graph()
        L1, L2 = g.vid("L1"), g.vid("L2")
        index = build_local_index(g, landmarks=[L1, L2])
        for landmark in (L1, L2):
            members = set(index.partition.members[landmark])
            indexed = set(index.ii[landmark])
            # ii may omit unreachable members, never include outsiders
            assert indexed <= members

    def test_all_tables_are_antichains(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")], keep_ei=True)
        for table in index.ii.values():
            assert table.verify_antichains()
        for table in index.ei.values():
            assert table.verify_antichains()

    def test_build_seconds_recorded(self):
        g = small_two_region_graph()
        index = build_local_index(g, k=2, rng=0)
        assert index.build_seconds > 0.0


class TestTheorem52Consistency:
    """II[u] == ground-truth M(u, v | F(u)) by simple-path enumeration."""

    def check_graph(self, g: KnowledgeGraph, landmarks: list[int]) -> None:
        index = build_local_index(g, landmarks=landmarks, keep_ei=True)
        for u in index.partition.landmarks:
            region = set(index.partition.members[u])
            truth = ground_truth_cms(g, u, allowed=region)
            built = {v: set(masks) for v, masks in index.ii[u].items()}
            assert built == truth, f"landmark {g.name_of(u)}"

    def test_two_region_graph(self):
        g = small_two_region_graph()
        self.check_graph(g, [g.vid("L1"), g.vid("L2")])

    def test_figure3_graph(self):
        from repro.datasets.toy import figure3_graph

        g = figure3_graph()
        self.check_graph(g, [g.vid("v0"), g.vid("v4")])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_graphs(self, data):
        vertices = [f"v{i}" for i in range(8)]
        labels = ["a", "b", "c"]
        g = KnowledgeGraph("t52")
        for v in vertices:
            g.add_vertex(v)
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices),
                    st.sampled_from(labels),
                    st.sampled_from(vertices),
                ),
                max_size=16,
            )
        )
        for s, l, t in edges:
            g.add_edge(s, l, t)
        count = data.draw(st.integers(min_value=1, max_value=3))
        landmark_names = data.draw(
            st.lists(st.sampled_from(vertices), min_size=count, max_size=count, unique=True)
        )
        self.check_graph(g, [g.vid(n) for n in landmark_names])


class TestEitTransposition:
    def test_eit_is_lossless_transpose_of_ei(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")], keep_ei=True)
        for u, ei_table in index.ei.items():
            rebuilt = set()
            for mask, vertices in index.eit[u].items():
                for v in vertices:
                    rebuilt.add((v, mask))
            original = {
                (v, mask) for v, masks in ei_table.items() for mask in masks
            }
            assert rebuilt == original


class TestTheorem51Soundness:
    """EIT pairs (L_u, V_u) with L_u ⊆ L imply u ⇝_L v for all v ∈ V_u."""

    def test_push_targets_are_reachable(self):
        g = small_two_region_graph()
        L1 = g.vid("L1")
        index = build_local_index(g, landmarks=[L1, g.vid("L2")])
        full = g.labels.full_mask()
        closure = lcr_closure(g, L1, full)
        for target in index.push_targets(L1, full):
            assert target in closure

    def test_cut_targets_are_reachable_under_constraint(self):
        g = small_two_region_graph()
        L1 = g.vid("L1")
        index = build_local_index(g, landmarks=[L1, g.vid("L2")])
        mask = g.label_mask(["a", "b"])
        closure = lcr_closure(g, L1, mask)
        for target in index.cut_targets(L1, mask):
            assert target in closure

    def test_check_agrees_with_region_reachability(self):
        g = small_two_region_graph()
        L1 = g.vid("L1")
        index = build_local_index(g, landmarks=[L1, g.vid("L2")])
        mask = g.label_mask(["a", "b"])
        region = set(index.partition.members[L1])
        truth = ground_truth_cms(g, L1, allowed=region)
        for v in region:
            expected = any(m & ~mask == 0 for m in truth.get(v, set()))
            assert index.check(L1, v, mask) == expected


class TestRhoAndCorrelation:
    def test_same_region_rho_is_zero(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        p = g.vid("p")
        assert index.rho(g.vid("L1"), p) == 0.0

    def test_cross_region_rho_decreases_with_correlation(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        L1, L2 = g.vid("L1"), g.vid("L2")
        d = index.correlation(L1, L2)
        assert index.rho(L1, L2) == 1.0 / (1.0 + d)

    def test_unassigned_vertex_rho_is_max(self):
        g = graph_from_edges([("L1", "a", "b")], vertices=["isolated"])
        index = build_local_index(g, landmarks=[g.vid("L1")])
        assert index.partition.region_of(g.vid("isolated")) == NO_REGION
        assert index.rho(g.vid("isolated"), g.vid("L1")) == RHO_UNKNOWN

    def test_d_counts_border_targets_by_region(self):
        g = small_two_region_graph()
        L1, L2 = g.vid("L1"), g.vid("L2")
        index = build_local_index(g, landmarks=[L1, L2], keep_ei=True)
        counted = index.d[L1].get(L2, 0)
        manual = sum(
            1
            for border in index.ei[L1]
            if index.partition.region_of(border) == L2
        )
        assert counted == manual


class TestStats:
    def test_stats_counts(self):
        g = small_two_region_graph()
        index = build_local_index(g, landmarks=[g.vid("L1"), g.vid("L2")])
        stats = index.stats()
        assert stats.num_landmarks == 2
        assert stats.ii_entries > 0
        assert stats.total_entries == (
            stats.ii_entries + stats.eit_entries + stats.d_entries
        )

    def test_estimated_size_positive(self):
        g = small_two_region_graph()
        index = build_local_index(g, k=2, rng=0)
        assert index.estimated_size_bytes() > 0

    def test_deterministic_build(self):
        g = small_two_region_graph()
        a = build_local_index(g, k=2, rng=5)
        b = build_local_index(g, k=2, rng=5)
        assert a.partition.landmarks == b.partition.landmarks
        for u in a.ii:
            assert {v: sorted(m) for v, m in a.ii[u].items()} == {
                v: sorted(m) for v, m in b.ii[u].items()
            }
