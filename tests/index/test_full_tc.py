"""Tests for the full-transitive-closure strawman (Section 3.2)."""

import pytest

from repro.core.lcr import lcr_reachable
from repro.datasets.synthetic import line_graph, random_labeled_graph
from repro.exceptions import IndexingBudgetExceeded
from repro.index.full_tc import build_full_tc
from tests.helpers import graph_from_edges, ground_truth_cms


class TestCorrectness:
    def test_reaches_agrees_with_bfs(self):
        g = random_labeled_graph(20, 2.0, 3, rng=0)
        tc = build_full_tc(g)
        masks = [g.labels.full_mask(), g.label_mask(["l0"]), g.label_mask(["l1", "l2"])]
        for s in g.vertices():
            for t in range(0, g.num_vertices, 3):
                for mask in masks:
                    assert tc.reaches(s, t, mask) == lcr_reachable(g, s, t, mask)

    def test_cms_matches_ground_truth(self):
        g = graph_from_edges(
            [
                ("a", "x", "b"),
                ("b", "y", "c"),
                ("a", "z", "c"),
                ("c", "x", "a"),
            ]
        )
        tc = build_full_tc(g)
        for source in g.vertices():
            truth = ground_truth_cms(g, source)
            for target, masks in truth.items():
                if target == source:
                    continue
                assert set(tc.cms(source, target)) == masks

    def test_self_reachability(self):
        g = line_graph(2)
        tc = build_full_tc(g)
        assert tc.reaches(0, 0, 0)


class TestSpaceBlowup:
    def test_entries_grow_quadratically_on_cliquelike_graphs(self):
        # complete-ish graphs store Θ(|V|²) pairs — the paper's argument.
        small = build_full_tc(random_labeled_graph(8, 4.0, 2, rng=1))
        large = build_full_tc(random_labeled_graph(16, 4.0, 2, rng=1))
        assert large.stats()["pairs"] > 3 * small.stats()["pairs"]

    def test_budget_enforced(self):
        g = random_labeled_graph(300, 3.0, 5, rng=2)
        with pytest.raises(IndexingBudgetExceeded):
            build_full_tc(g, budget_seconds=1e-9)

    def test_stats_fields(self):
        g = line_graph(3)
        tc = build_full_tc(g)
        stats = tc.stats()
        assert stats["pairs"] >= 4
        assert stats["entries"] >= stats["pairs"]
        assert stats["build_seconds"] > 0
