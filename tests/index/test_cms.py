"""Tests for CMS minimal label-set collections."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labels import mask_is_subset
from repro.index.cms import CmsTable, any_subset_of, insert_minimal, minimal_antichain

masks = st.integers(min_value=0, max_value=0b11111)


class TestInsertMinimal:
    def test_insert_into_empty(self):
        collection = []
        assert insert_minimal(collection, 0b101)
        assert collection == [0b101]

    def test_duplicate_rejected(self):
        collection = [0b101]
        assert not insert_minimal(collection, 0b101)
        assert collection == [0b101]

    def test_superset_rejected(self):
        collection = [0b001]
        assert not insert_minimal(collection, 0b011)
        assert collection == [0b001]

    def test_subset_evicts_supersets(self):
        collection = [0b011, 0b110]
        assert insert_minimal(collection, 0b010)
        assert collection == [0b010]

    def test_incomparable_coexist(self):
        collection = [0b001]
        assert insert_minimal(collection, 0b110)
        assert sorted(collection) == [0b001, 0b110]

    def test_empty_set_dominates_everything(self):
        collection = [0b001, 0b110]
        assert insert_minimal(collection, 0)
        assert collection == [0]
        assert not insert_minimal(collection, 0b1)

    @settings(max_examples=200)
    @given(st.lists(masks, max_size=12))
    def test_result_is_always_minimal_antichain(self, sequence):
        collection = []
        for mask in sequence:
            insert_minimal(collection, mask)
        for a in collection:
            for b in collection:
                assert a == b or not mask_is_subset(a, b)

    @settings(max_examples=200)
    @given(st.lists(masks, max_size=12))
    def test_order_independence(self, sequence):
        forward, backward = [], []
        for mask in sequence:
            insert_minimal(forward, mask)
        for mask in reversed(sequence):
            insert_minimal(backward, mask)
        assert sorted(forward) == sorted(backward)

    @settings(max_examples=200)
    @given(st.lists(masks, max_size=12), masks)
    def test_coverage_preserved(self, sequence, probe):
        """Reducing to the antichain never changes subset queries."""
        collection = []
        for mask in sequence:
            insert_minimal(collection, mask)
        raw_answer = any(mask_is_subset(m, probe) for m in sequence)
        assert any_subset_of(collection, probe) == raw_answer


class TestMinimalAntichain:
    def test_reduces_and_sorts(self):
        assert minimal_antichain([0b11, 0b01, 0b10, 0b11]) == [0b01, 0b10]

    def test_empty(self):
        assert minimal_antichain([]) == []


class TestCmsTable:
    def test_insert_and_get(self):
        table = CmsTable()
        assert table.insert(3, 0b01)
        assert table.get(3) == [0b01]
        assert table.get(99) == []

    def test_insert_applies_minimality_per_vertex(self):
        table = CmsTable()
        table.insert(1, 0b011)
        assert not table.insert(1, 0b111)
        assert table.insert(1, 0b001)
        assert table.get(1) == [0b001]

    def test_vertices_independent(self):
        table = CmsTable()
        table.insert(1, 0b01)
        table.insert(2, 0b11)
        assert table.get(2) == [0b11]

    def test_reaches_under(self):
        table = CmsTable()
        table.insert(1, 0b011)
        assert table.reaches_under(1, 0b111)
        assert table.reaches_under(1, 0b011)
        assert not table.reaches_under(1, 0b001)
        assert not table.reaches_under(42, 0b111)

    def test_len_contains_iter(self):
        table = CmsTable()
        table.insert(1, 0)
        table.insert(5, 0b1)
        assert len(table) == 2
        assert 5 in table
        assert 4 not in table
        assert sorted(table) == [1, 5]

    def test_entry_count(self):
        table = CmsTable()
        table.insert(1, 0b001)
        table.insert(1, 0b110)
        table.insert(2, 0b010)
        assert table.entry_count() == 3

    def test_verify_antichains(self):
        table = CmsTable()
        table.insert(1, 0b001)
        table.insert(1, 0b110)
        assert table.verify_antichains()
        # corrupt it directly
        table._table[1].append(0b111)
        assert not table.verify_antichains()
