"""Tests for local-index persistence."""

import pytest

from repro.datasets.toy import figure3_graph
from repro.exceptions import IndexingError
from repro.index.local_index import build_local_index
from repro.index.storage import index_file_size, load_local_index, save_local_index
from tests.helpers import graph_from_edges


@pytest.fixture()
def graph():
    return figure3_graph()


@pytest.fixture()
def index(graph):
    return build_local_index(graph, k=2, rng=0)


class TestRoundtrip:
    def test_save_returns_size(self, tmp_path, index):
        size = save_local_index(index, tmp_path / "idx.json")
        assert size > 0
        assert index_file_size(tmp_path / "idx.json") == size

    def test_roundtrip_preserves_tables(self, tmp_path, graph, index):
        path = tmp_path / "idx.json"
        save_local_index(index, path)
        loaded = load_local_index(path, graph)
        assert loaded.partition.landmarks == index.partition.landmarks
        assert loaded.partition.region == index.partition.region
        for u in index.ii:
            assert {v: sorted(m) for v, m in loaded.ii[u].items()} == {
                v: sorted(m) for v, m in index.ii[u].items()
            }
        assert loaded.eit == index.eit
        assert loaded.d == index.d
        assert loaded.build_seconds == index.build_seconds

    def test_loaded_index_answers_queries(self, tmp_path, graph, index):
        from repro.core.ins import INS
        from repro.core.query import LSCRQuery
        from repro.datasets.toy import figure3_constraint

        path = tmp_path / "idx.json"
        save_local_index(index, path)
        loaded = load_local_index(path, graph)
        ins = INS(graph, loaded)
        query = LSCRQuery.create(
            "v0", "v4", ["likes", "follows"], figure3_constraint()
        )
        assert ins.decide(query) is True


class TestValidation:
    def test_wrong_graph_rejected(self, tmp_path, index):
        path = tmp_path / "idx.json"
        save_local_index(index, path)
        other = graph_from_edges([("a", "p", "b")])
        with pytest.raises(IndexingError, match="mismatch"):
            load_local_index(path, other)

    def test_bad_version_rejected(self, tmp_path, graph, index):
        import json

        path = tmp_path / "idx.json"
        save_local_index(index, path)
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(IndexingError, match="version"):
            load_local_index(path, graph)
