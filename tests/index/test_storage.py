"""Tests for local-index persistence."""

import pytest

from repro.core.ins import INS
from repro.core.query import LSCRQuery
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.exceptions import IndexingError
from repro.index.local_index import build_local_index
from repro.index.storage import (
    index_file_size,
    load_local_index,
    load_or_build_index,
    save_local_index,
)
from tests.helpers import graph_from_edges


@pytest.fixture()
def graph():
    return figure3_graph()


@pytest.fixture()
def index(graph):
    return build_local_index(graph, k=2, rng=0)


class TestRoundtrip:
    def test_save_returns_size(self, tmp_path, index):
        size = save_local_index(index, tmp_path / "idx.json")
        assert size > 0
        assert index_file_size(tmp_path / "idx.json") == size

    def test_roundtrip_preserves_tables(self, tmp_path, graph, index):
        path = tmp_path / "idx.json"
        save_local_index(index, path)
        loaded = load_local_index(path, graph)
        assert loaded.partition.landmarks == index.partition.landmarks
        assert loaded.partition.region == index.partition.region
        for u in index.ii:
            assert {v: sorted(m) for v, m in loaded.ii[u].items()} == {
                v: sorted(m) for v, m in index.ii[u].items()
            }
        assert loaded.eit == index.eit
        assert loaded.d == index.d
        assert loaded.build_seconds == index.build_seconds

    def test_loaded_index_answers_queries(self, tmp_path, graph, index):
        from repro.core.ins import INS
        from repro.core.query import LSCRQuery
        from repro.datasets.toy import figure3_constraint

        path = tmp_path / "idx.json"
        save_local_index(index, path)
        loaded = load_local_index(path, graph)
        ins = INS(graph, loaded)
        query = LSCRQuery.create(
            "v0", "v4", ["likes", "follows"], figure3_constraint()
        )
        assert ins.decide(query) is True


class TestWarmStart:
    """The service warm-start path: save -> load must answer like fresh."""

    QUERIES = [
        ("v0", "v4", ["likes", "follows"]),
        ("v0", "v3", ["likes", "follows"]),
        ("v3", "v4", ["likes", "hates", "friendOf"]),
        ("v1", "v4", ["likes", "follows", "friendOf"]),
    ]

    def _answers(self, graph, index):
        ins = INS(graph, index)
        constraint = figure3_constraint()
        return [
            ins.decide(LSCRQuery.create(s, t, labels, constraint))
            for s, t, labels in self.QUERIES
        ]

    def test_roundtrip_answers_agree_with_fresh_build(self, tmp_path, graph):
        path = tmp_path / "warm.json"
        fresh = build_local_index(graph, k=2, rng=0)
        save_local_index(fresh, path)
        loaded = load_local_index(path, graph)
        assert self._answers(graph, loaded) == self._answers(graph, fresh)

    def test_load_or_build_without_path_builds(self, graph):
        index = load_or_build_index(graph, None, k=2, rng=0)
        assert index.partition.landmarks == build_local_index(
            graph, k=2, rng=0
        ).partition.landmarks

    def test_load_or_build_builds_and_persists_when_missing(self, tmp_path, graph):
        path = tmp_path / "warm.json"
        built = load_or_build_index(graph, path, k=2, rng=0)
        assert path.is_file()
        loaded = load_or_build_index(graph, path, k=2, rng=0)
        assert loaded.partition.landmarks == built.partition.landmarks
        assert self._answers(graph, loaded) == self._answers(graph, built)

    def test_load_or_build_save_if_built_false(self, tmp_path, graph):
        path = tmp_path / "warm.json"
        load_or_build_index(graph, path, k=2, rng=0, save_if_built=False)
        assert not path.exists()

    def test_load_or_build_same_seed_is_deterministic(self, tmp_path, graph):
        cold = load_or_build_index(graph, tmp_path / "a.json", k=2, rng=7)
        warm = load_or_build_index(graph, tmp_path / "a.json", k=2, rng=7)
        assert warm.partition.landmarks == cold.partition.landmarks
        assert warm.eit == cold.eit
        assert warm.d == cold.d

    def test_load_or_build_validates_graph(self, tmp_path, index):
        path = tmp_path / "warm.json"
        save_local_index(index, path)
        other = graph_from_edges([("a", "p", "b")])
        with pytest.raises(IndexingError, match="mismatch"):
            load_or_build_index(other, path)


class TestValidation:
    def test_wrong_graph_rejected(self, tmp_path, index):
        path = tmp_path / "idx.json"
        save_local_index(index, path)
        other = graph_from_edges([("a", "p", "b")])
        with pytest.raises(IndexingError, match="mismatch"):
            load_local_index(path, other)

    def test_bad_version_rejected(self, tmp_path, graph, index):
        import json

        path = tmp_path / "idx.json"
        save_local_index(index, path)
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(IndexingError, match="version"):
            load_local_index(path, graph)
