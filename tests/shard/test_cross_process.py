"""Cross-process agreement: real ``serve --worker`` processes vs oracle.

``test_agreement_shard.py`` pins the wire protocol with in-thread HTTP
servers; this suite goes the rest of the way — slices are cut to files,
each one boots an actual ``python -m repro serve --worker`` subprocess
on an ephemeral port, and a coordinator attaches them by URL exactly as
``serve --shards N --worker-url ...`` would (handshake included).  Over
five seeded graphs the deployment must answer bit-identically to an
unsharded :class:`QueryService` oracle through three phases per seed —
fresh boot, after a ``POST /edges``-shaped insert batch (including a
brand-new source vertex), and after a mixed insert/remove batch — for
200 seed/query comparisons, each batch mirrored on the oracle and
pushed to the worker processes over the two-phase slice-update wire.
"""

from __future__ import annotations

import random
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.shard import ShardedQueryService, build_shard_plan, cut_slices
from repro.shard.slicefile import dump_slice

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SEEDS = [0, 1, 2, 3, 4]
SHARDS = 2
NUM_VERTICES = 24
NUM_LABELS = 4
QUERIES_PER_PHASE = 10

READY = re.compile(r"listening on (http://\S+)")


def make_graph(seed):
    return random_labeled_graph(
        NUM_VERTICES, 2.0, NUM_LABELS, rng=seed, name=f"xproc-{seed}"
    )


def make_index(graph, seed):
    """Even seeds shard along a loaded index, odd seeds index-free."""
    return build_local_index(graph, k=3, rng=seed) if seed % 2 == 0 else None


def build_plan(frozen, index, seed):
    """The exact plan ShardedQueryService will build — hash must match."""
    if index is not None:
        partition = index.partition
        correlations = index.region_correlations()
    else:
        landmarks = select_landmarks(frozen, rng=seed)
        partition = bfs_traverse(frozen, landmarks)
        correlations = structural_correlations(frozen, partition)
    return build_shard_plan(frozen, partition, SHARDS, correlations)


def boot_worker(slice_path):
    """Start one worker process; returns ``(proc, url)`` once it's ready."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--worker", str(slice_path),
         "--host", "127.0.0.1", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    for line in proc.stdout:
        match = READY.search(line)
        if match:
            return proc, match.group(1)
    proc.wait(timeout=5)
    raise AssertionError(
        f"worker for {slice_path} exited (rc={proc.returncode}) before "
        "printing its ready line"
    )


def stop_workers(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def random_specs(rng, count=QUERIES_PER_PHASE, extra_vertices=()):
    vertices = [f"n{i}" for i in range(NUM_VERTICES)] + list(extra_vertices)
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    specs = []
    for _ in range(count):
        label = rng.choice(labels)
        anchor = rng.choice(vertices)
        constraint = rng.choice(
            [
                f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}",
                f"SELECT ?x WHERE {{ ?x <{label}> {anchor} . }}",
                f"SELECT ?x WHERE {{ {anchor} <{label}> ?x . }}",
                f"SELECT ?x WHERE {{ ?x <{label}> ?y . ?y <l0> ?z . }}",
            ]
        )
        specs.append(
            (
                rng.choice(vertices),
                rng.choice(vertices),
                rng.sample(labels, rng.randint(1, NUM_LABELS - 1)),
                constraint,
            )
        )
    return specs


def assert_agreement(sharded, oracle, specs, *, seed, phase):
    for source, target, labels, text in specs:
        expected, _ = oracle.query(source, target, labels, text,
                                   use_cache=False)
        actual, meta = sharded.query(source, target, labels, text,
                                     use_cache=False)
        assert actual.answer == expected.answer, (
            f"seed={seed} phase={phase} {source}->{target} L={labels} "
            f"S={text!r}: remote={actual.answer} oracle={expected.answer} "
            f"({meta.get('reason')})"
        )


class TestCrossProcessAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_worker_processes_agree_with_oracle_across_updates(
        self, seed, tmp_path
    ):
        graph = make_graph(seed)
        index = make_index(graph, seed)
        frozen = graph.freeze()
        plan = build_plan(frozen, index, seed)
        fingerprint = frozen.content_fingerprint()
        procs, urls = [], []
        sharded = oracle = None
        try:
            for graph_slice in cut_slices(frozen, plan):
                path = tmp_path / f"shard-{graph_slice.shard_id}.slice.json"
                dump_slice(graph_slice, plan, path, epoch=0,
                           fingerprint=fingerprint)
                proc, url = boot_worker(path)
                procs.append(proc)
                urls.append(url)
            sharded = ShardedQueryService(
                graph, index, seed=seed, shards=SHARDS, worker_urls=urls,
                probe_interval=0,
            )
            # The handshake accepted both workers without a resync: the
            # files were cut from the same plan the coordinator built.
            assert sharded.slice_epoch == 0
            oracle = QueryService(graph.copy(), seed=seed)
            rng = random.Random(seed * 7919 + 17)

            assert_agreement(sharded, oracle, random_specs(rng),
                             seed=seed, phase="boot")

            # Insert batch, POST /edges-shaped: existing vertices plus a
            # brand-new source vertex, mirrored on the oracle and pushed
            # to both worker processes over the slice-update wire.
            inserts = [
                [f"n{rng.randrange(NUM_VERTICES)}",
                 f"l{rng.randrange(NUM_LABELS)}",
                 f"n{rng.randrange(NUM_VERTICES)}"]
                for _ in range(4)
            ] + [["fresh", "l0", f"n{rng.randrange(NUM_VERTICES)}"]]
            summary = sharded.handle_updates({"edges": inserts})
            oracle.apply_updates([tuple(edge) for edge in inserts])
            assert summary["slice_epoch"] == sharded.slice_epoch > 0
            assert "shards_unpublished" not in summary
            for worker in sharded.workers:
                assert worker.probe()["epoch"] == sharded.slice_epoch

            specs = random_specs(rng, extra_vertices=["fresh"])
            specs.append(("fresh", inserts[-1][2], ["l0"],
                          "SELECT ?x WHERE { ?x <l0> ?y . }"))
            assert_agreement(sharded, oracle, specs,
                             seed=seed, phase="post-insert")

            # Mixed batch: remove one edge just added, insert two more.
            mixed = [tuple(inserts[0]) + ("remove",)] + [
                (f"n{rng.randrange(NUM_VERTICES)}",
                 f"l{rng.randrange(NUM_LABELS)}",
                 "fresh")
                for _ in range(2)
            ]
            before = sharded.slice_epoch
            sharded.apply_updates(mixed)
            oracle.apply_updates(mixed)
            assert sharded.slice_epoch > before
            assert_agreement(
                sharded, oracle, random_specs(rng, extra_vertices=["fresh"]),
                seed=seed, phase="post-mixed",
            )
        finally:
            if sharded is not None:
                sharded.close()
            if oracle is not None:
                oracle.close()
            stop_workers(procs)
