"""Coordinator closures vs the single-graph BFS oracle.

The distributed closure is the primitive everything sharded rests on;
these tests pin it to :func:`repro.core.lcr.lcr_closure` (plain BFS,
shares no code with the shard stack) over randomized graphs, masks and
shard counts, plus the early-stop contract and round telemetry.
"""

from __future__ import annotations

import random

import pytest

from repro.core.lcr import lcr_closure
from repro.datasets.synthetic import random_labeled_graph
from repro.index.landmarks import bfs_traverse, select_landmarks
from repro.shard.coordinator import ShardCoordinator
from repro.shard.partitioner import build_shard_plan, cut_slices
from repro.shard.worker import ShardWorker

SEEDS = list(range(12))


def make_coordinator(seed, shards, *, parallel=False, num_vertices=20):
    graph = random_labeled_graph(
        num_vertices, 2.0, 4, rng=seed, name=f"coord-{seed}"
    ).freeze()
    landmarks = select_landmarks(graph, k=4, rng=seed)
    partition = bfs_traverse(graph, landmarks)
    plan = build_shard_plan(graph, partition, shards)
    workers = [
        ShardWorker(s, local_service=False) for s in cut_slices(graph, plan)
    ]
    return graph, ShardCoordinator(graph, plan, workers, parallel=parallel)


class TestClosure:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_bfs_closure(self, seed):
        shards = 1 + seed % 4
        graph, coordinator = make_coordinator(seed, shards)
        rng = random.Random(seed * 31 + 7)
        try:
            for _ in range(6):
                source = rng.randrange(graph.num_vertices)
                mask = rng.randrange(1, 1 << graph.num_labels)
                reached, telemetry = coordinator.closure({source}, mask)
                assert reached == lcr_closure(graph, source, mask), (
                    seed,
                    shards,
                    source,
                    mask,
                )
                assert telemetry["rounds"] >= 1
        finally:
            coordinator.close()

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_multi_seed_closure_is_union(self, seed):
        graph, coordinator = make_coordinator(seed, 3)
        rng = random.Random(seed * 17 + 3)
        try:
            seeds = {rng.randrange(graph.num_vertices) for _ in range(3)}
            mask = (1 << graph.num_labels) - 1
            reached, _ = coordinator.closure(seeds, mask)
            expected = set()
            for s in seeds:
                expected |= lcr_closure(graph, s, mask)
            assert reached == expected
        finally:
            coordinator.close()

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_early_stop_contains_target(self, seed):
        graph, coordinator = make_coordinator(seed, 3)
        mask = (1 << graph.num_labels) - 1
        try:
            full = lcr_closure(graph, 0, mask)
            for target in sorted(full):
                reached, _ = coordinator.closure({0}, mask, stop=target)
                assert target in reached
                assert reached <= full  # never over-approximates
        finally:
            coordinator.close()

    def test_single_shard_is_one_expand_round(self):
        graph, coordinator = make_coordinator(0, 1)
        try:
            mask = (1 << graph.num_labels) - 1
            reached, telemetry = coordinator.closure({0}, mask)
            assert reached == lcr_closure(graph, 0, mask)
            # One shard owns everything: no crossings, a single round.
            assert telemetry["rounds"] == 1
            assert telemetry["crossings"] == 0
        finally:
            coordinator.close()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_parallel_scatter_agrees_with_serial(self, seed):
        graph, serial = make_coordinator(seed, 4, parallel=False)
        _graph, parallel = make_coordinator(seed, 4, parallel=True)
        mask = (1 << graph.num_labels) - 1
        try:
            for source in range(0, graph.num_vertices, 3):
                left, _ = serial.closure({source}, mask)
                right, _ = parallel.closure({source}, mask)
                assert left == right
        finally:
            serial.close()
            parallel.close()

    def test_scatter_falls_back_to_serial_after_close(self):
        # The registry contract: a straggler query on a removed service
        # still finishes — closing the pool mid-flight must not crash.
        graph, coordinator = make_coordinator(0, 4, parallel=True)
        mask = (1 << graph.num_labels) - 1
        expected, _ = coordinator.closure({0}, mask)
        coordinator.close()
        after_close, _ = coordinator.closure({0}, mask)
        assert after_close == expected

    def test_worker_count_must_match_plan(self):
        graph, coordinator = make_coordinator(0, 2)
        try:
            with pytest.raises(ValueError):
                ShardCoordinator(graph, coordinator.plan, coordinator.workers[:1])
        finally:
            coordinator.close()
