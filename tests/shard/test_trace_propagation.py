"""Trace propagation across the shard wire: one stitched span tree.

The acceptance scenario: a 2-shard query served through *remote*
HTTP workers yields a single trace in which the coordinator span
parents every worker ``expand`` span (shipped back over the wire as a
dict and stitched in), round spans carry per-round frontier sizes, and
the span counts agree with the coordinator's own telemetry.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.obs.trace import Trace, use_trace
from repro.service.http import create_server
from repro.shard import ShardedQueryService
from repro.shard.coordinator import ShardCoordinator
from repro.shard.worker import HttpShardWorker

CONSTRAINT = "SELECT ?x WHERE { ?x <l0> ?y . }"


def _spans(node: dict, name: str) -> list[dict]:
    """Every span called ``name`` anywhere under ``node`` (dict tree)."""
    found = []
    for child in node.get("children", []):
        if child.get("name") == name:
            found.append(child)
        found.extend(_spans(child, name))
    return found


def _traced_answer(coordinator, query) -> dict:
    trace = Trace("query")
    with use_trace(trace):
        coordinator.answer(query)
    return trace.finish().to_dict()


def _queries(graph):
    names = [f"n{i}" for i in range(graph.num_vertices)][:6]
    for source in names[:3]:
        for target in names[3:]:
            yield LSCRQuery.create(
                source, target, ["l0", "l1", "l2"], CONSTRAINT
            )


class TestRemoteTracePropagation:
    def test_two_shard_remote_query_yields_one_stitched_tree(self):
        graph = random_labeled_graph(24, 2.0, 4, rng=3, name="trace-remote")
        sharded = ShardedQueryService(
            graph, seed=3, shards=2, local_fast_path=False
        )
        workers = {
            str(position): worker
            for position, worker in enumerate(sharded.workers)
        }
        server = create_server(sharded, "127.0.0.1", 0, workers)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        remote = ShardCoordinator(
            sharded.graph,
            sharded.shard_plan,
            [HttpShardWorker(base, position) for position in range(2)],
            local_fast_path=False,
            parallel=False,
        )
        try:
            scattered = None
            for query in _queries(graph):
                document = _traced_answer(remote, query)
                coordinators = _spans(document, "coordinator")
                assert len(coordinators) == 1
                coordinator = coordinators[0]
                rounds = _spans(coordinator, "round")
                expands = _spans(coordinator, "expand")
                # Telemetry and the span tree must tell the same story.
                assert coordinator["attrs"]["rounds"] == len(rounds)
                assert coordinator["attrs"]["expand_calls"] == len(expands)
                # Every expand was parented under a round, not loose.
                assert sum(
                    len(_spans(round_span, "expand")) for round_span in rounds
                ) == len(expands)
                for round_span in rounds:
                    assert round_span["attrs"]["frontier_size"] >= 1
                    assert round_span["attrs"]["phase"] in ("phase1", "phase2")
                for expand in expands:
                    # The wire carried the trace id out and the span back.
                    assert expand["attrs"]["trace_id"] == (
                        document["trace_id"]
                    )
                    assert expand["attrs"]["remote"] == base
                    assert expand["attrs"]["shard"] in (0, 1)
                    assert expand["seconds"] >= 0.0
                if expands and {
                    expand["attrs"]["shard"] for expand in expands
                } == {0, 1}:
                    scattered = document
            # At least one of the probe queries genuinely fanned out to
            # both remote shards — the scenario the ISSUE names.
            assert scattered is not None
        finally:
            remote.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            sharded.close()

    def test_untraced_remote_query_ships_no_span(self):
        graph = random_labeled_graph(16, 2.0, 3, rng=1, name="untraced")
        sharded = ShardedQueryService(
            graph, seed=1, shards=2, local_fast_path=False
        )
        workers = {
            str(position): worker
            for position, worker in enumerate(sharded.workers)
        }
        server = create_server(sharded, "127.0.0.1", 0, workers)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        worker = HttpShardWorker(base, 0)
        try:
            seeds = [
                vid for vid in range(sharded.graph.num_vertices)
                if sharded.shard_plan.shard_of[vid] == 0
            ][:2]
            mask = (1 << sharded.graph.num_labels) - 1
            result = worker.expand(seeds, mask)
            assert result.span is None          # no trace, no payload tax
            traced = worker.expand(seeds, mask, trace="abc123")
            assert traced.span is not None
            assert traced.span["attrs"]["trace_id"] == "abc123"
            assert traced.reached == result.reached
        finally:
            worker.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            sharded.close()


class TestInProcessServiceTrace:
    def test_sharded_handle_query_returns_stitched_trace(self):
        graph = random_labeled_graph(24, 2.0, 4, rng=3, name="trace-local")
        service = ShardedQueryService(
            graph, seed=3, shards=2, local_fast_path=False, slow_ms=0.0
        )
        try:
            names = [f"n{i}" for i in range(graph.num_vertices)]
            document = None
            for source in names[:4]:
                for target in names[-4:]:
                    candidate = service.handle_query(
                        {
                            "source": source,
                            "target": target,
                            "labels": ["l0", "l1", "l2"],
                            "constraint": CONSTRAINT,
                        },
                        trace=True,
                    )
                    if _spans(candidate["trace"], "expand"):
                        document = candidate
                        break
                if document:
                    break
            assert document is not None
            trace = document["trace"]
            assert trace["name"] == "query"
            coordinator = _spans(trace, "coordinator")[0]
            expands = _spans(coordinator, "expand")
            assert coordinator["attrs"]["expand_calls"] == len(expands)
            for expand in expands:
                assert expand["attrs"]["trace_id"] == trace["trace_id"]
                assert "remote" not in expand["attrs"]   # in-process worker
        finally:
            service.close()
