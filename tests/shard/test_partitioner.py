"""Partitioner invariants: the facts scatter-gather correctness rests on.

The coordinator's exactness proof has two structural premises, enforced
here over randomized graphs:

* **edge partition** — every edge of the source graph lands in exactly
  one slice (the slice of the shard owning its source vertex), so the
  union of slice-local closures is the global closure;
* **border completeness** — each slice's border table names exactly the
  out-neighbours owned elsewhere, so a frontier can never leave a shard
  without the coordinator hearing about it.

Plus the placement properties: total deterministic vertex ownership,
balanced region assignment without correlations, and ``D``-guided
assignment keeping correlated regions together when balance allows.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.index.landmarks import (
    NO_REGION,
    Partition,
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.shard.partitioner import (
    assign_regions,
    build_shard_plan,
    cut_slices,
)

SEEDS = list(range(10))


def make_parts(seed, num_vertices=24, density=2.2, num_labels=4, shards=3):
    graph = random_labeled_graph(
        num_vertices, density, num_labels, rng=seed, name=f"part-{seed}"
    ).freeze()
    landmarks = select_landmarks(graph, k=5, rng=seed)
    partition = bfs_traverse(graph, landmarks)
    correlations = structural_correlations(graph, partition)
    plan = build_shard_plan(graph, partition, shards, correlations)
    return graph, partition, plan, cut_slices(graph, plan)


class TestEdgePartition:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_edge_lands_in_exactly_one_slice(self, seed):
        graph, _partition, _plan, slices = make_parts(seed)
        collected: list[tuple[int, int, int]] = []
        for graph_slice in slices:
            collected.extend(graph_slice.edges())
        assert len(collected) == graph.num_edges  # no duplicates across slices
        assert set(collected) == set(graph.edges())
        assert sum(s.num_edges for s in slices) == graph.num_edges

    @pytest.mark.parametrize("seed", SEEDS)
    def test_vertex_ownership_is_total_and_consistent(self, seed):
        graph, partition, plan, slices = make_parts(seed)
        assert len(plan.shard_of) == graph.num_vertices
        assert all(0 <= owner < plan.num_shards for owner in plan.shard_of)
        # Slices partition the vertex set.
        owned = [vid for s in slices for vid in s.vertex_ids]
        assert sorted(owned) == list(range(graph.num_vertices))
        # Region members stay together on their region's shard.
        for vid in range(graph.num_vertices):
            region = partition.region[vid]
            if region != NO_REGION:
                assert plan.shard_of[vid] == plan.region_shard[region]

    @pytest.mark.parametrize("seed", SEEDS[:5])
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_shard_count_variants_partition_edges(self, seed, shards):
        graph, _partition, _plan, slices = make_parts(seed, shards=shards)
        assert len(slices) == shards
        assert sum(s.num_edges for s in slices) == graph.num_edges


class TestBorderTables:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_border_tables_complete_and_exact(self, seed):
        graph, _partition, plan, slices = make_parts(seed)
        for graph_slice in slices:
            sid = graph_slice.shard_id
            for vid in graph_slice.vertex_ids:
                external = sorted(
                    {
                        target
                        for _label, target in graph.out_edges(vid)
                        if plan.shard_of[target] != sid
                    }
                )
                recorded = list(graph_slice.border_targets.get(vid, ()))
                assert recorded == external, (seed, sid, vid)
            # border_vertices is exactly the set of keys, sorted.
            assert list(graph_slice.border_vertices) == sorted(
                graph_slice.border_targets
            )
            # peer_shards covers every shard any border target lands in.
            peers = {
                plan.shard_of[t]
                for targets in graph_slice.border_targets.values()
                for t in targets
            }
            assert set(graph_slice.peer_shards) == peers

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_slice_graph_roundtrip(self, seed):
        graph, _partition, _plan, slices = make_parts(seed)
        for graph_slice in slices:
            standalone = graph_slice.to_graph()
            assert standalone.num_edges == graph_slice.num_edges
            # Every owned vertex is present by name, isolated ones included.
            for vid in graph_slice.vertex_ids:
                assert standalone.has_vertex(graph.name_of(vid))
            # Named edges agree with the slice's global-id edges.
            expected = {
                (graph.name_of(s), graph.label_name(l), graph.name_of(t))
                for s, l, t in graph_slice.edges()
            }
            assert set(standalone.edges_named()) == expected


class TestRegionAssignment:
    def test_deterministic(self):
        graph, partition, _plan, _slices = make_parts(0)
        correlations = structural_correlations(graph, partition)
        first = assign_regions(partition, 3, correlations)
        second = assign_regions(partition, 3, correlations)
        assert first == second

    def test_balanced_without_correlations(self):
        graph, partition, _plan, _slices = make_parts(1)
        assignment = assign_regions(partition, 3, None)
        loads = [0, 0, 0]
        sizes = {u: len(partition.members[u]) for u in partition.landmarks}
        for u, sid in assignment.items():
            loads[sid] += sizes[u]
        # First-fit-decreasing: no shard exceeds the ideal load by more
        # than the largest single region.
        ideal = sum(sizes.values()) / 3
        assert max(loads) <= ideal + max(sizes.values())

    def test_correlated_regions_prefer_one_shard(self):
        # Two region pairs with strong mutual correlation and no
        # cross-pair correlation: each pair should land on one shard.
        partition = Partition(
            landmarks=[0, 1, 2, 3],
            region=[0, 1, 2, 3],
            members={0: [0], 1: [1], 2: [2], 3: [3]},
        )
        correlations = {0: {1: 10}, 1: {0: 10}, 2: {3: 10}, 3: {2: 10}}
        assignment = assign_regions(partition, 2, correlations)
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_invalid_shard_count_rejected(self):
        partition = Partition(landmarks=[0], region=[0], members={0: [0]})
        with pytest.raises(ValueError):
            assign_regions(partition, 0)


class TestStructuralCorrelations:
    def test_counts_distinct_cross_region_targets(self):
        from tests.helpers import graph_from_edges

        # Region 0 = {a, b}, region 1 = {c, d}; two edges into c count
        # once (distinct targets), the edge into d separately.
        graph = graph_from_edges(
            [
                ("a", "l", "b"),
                ("a", "x", "c"),
                ("b", "y", "c"),
                ("b", "z", "d"),
                ("c", "l", "d"),
            ]
        )
        a, b, c, d = (graph.vid(n) for n in "abcd")
        partition = Partition(
            landmarks=[a, c],
            region=[a, a, c, c],
            members={a: [a, b], c: [c, d]},
        )
        correlations = structural_correlations(graph, partition)
        assert correlations == {a: {c: 2}}
