"""ShardedQueryService as a tenant: registry, HTTP, stats, lifecycle."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.exceptions import ServiceConfigError
from repro.service.http import create_server
from repro.service.registry import TenantRegistry
from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


def get(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return json.loads(response.read())


def post(base, path, payload):
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestConstruction:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ServiceConfigError):
            ShardedQueryService(make_graph(), shards=0)

    def test_default_algorithm_reports_sharded(self):
        service = ShardedQueryService(make_graph(), shards=2)
        try:
            assert service.default_algorithm == "sharded"
            assert service.health()["shards"] == 2
        finally:
            service.close()

    def test_more_shards_than_vertices_still_answers(self):
        service = ShardedQueryService(make_graph(), shards=9)
        try:
            result, _ = service.query(**{k: QUERY[k] for k in
                                         ("source", "target", "labels", "constraint")})
            assert result.answer is True
        finally:
            service.close()


class TestTenantIntegration:
    def test_registers_and_serves_like_any_tenant(self):
        registry = TenantRegistry(default_tenant="flat")
        registry.add("flat", ShardedQueryService(make_graph(), shards=1))
        registry.add("wide", ShardedQueryService(make_graph(), shards=3))
        server = create_server(registry, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            for tenant in ("flat", "wide"):
                document = post(base, f"/t/{tenant}/query", QUERY)
                assert document["answer"] is True
                assert document["algorithm"] == "sharded"
            # Registry-level aggregation folds sharded tenants in too.
            stats = get(base, "/stats")
            assert stats["totals"]["queries"]["total"] == 2
            assert "sharded" in stats["totals"]["algorithms"]
            health = get(base, "/healthz")
            assert health["tenants_loaded"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            registry.remove("flat")
            registry.remove("wide")

    def test_stats_snapshot_has_shard_section(self):
        service = ShardedQueryService(make_graph(), shards=2)
        try:
            service.query(**QUERY)
            document = service.stats_snapshot()
            shards = document["shards"]
            assert shards["plan"]["num_shards"] == 2
            assert sum(shards["plan"]["vertices_per_shard"]) == 4
            assert shards["coordinator"]["queries"] + shards[
                "coordinator"
            ]["fast_path_hits"] >= 1
            assert len(shards["workers"]) == 2
            for worker_doc in shards["workers"]:
                assert {"shard", "vertices", "edges", "expand_calls"} <= set(
                    worker_doc
                )
            # Per-slice service counters merged like cross-tenant totals.
            totals = shards["workers_totals"]
            assert totals["queries"]["total"] == sum(
                w["local_queries"] for w in shards["workers"]
            )
            assert document["config"]["shards"] == 2
            # Latency histograms surfaced alongside (satellite check).
            assert document["service"]["latency"]["query"]["count"] >= 1
        finally:
            service.close()

    def test_close_is_idempotent(self):
        service = ShardedQueryService(make_graph(), shards=2)
        service.close()
        service.close()

    def test_use_cache_false_never_served_from_worker_caches(self):
        # The co-located fast path must not answer an uncached request
        # from a worker-level result cache (regression: workers used to
        # cache local_query answers regardless of the request's flag).
        service = ShardedQueryService(make_graph(), shards=1)
        try:
            for _ in range(3):
                result, meta = service.query(**QUERY, use_cache=False)
                assert result.answer is True and not meta["cached"]
            for worker in service.workers:
                stats = worker.service.results.stats()
                assert stats.hits == 0
                assert stats.size == 0
        finally:
            service.close()

    def test_cache_size_zero_disables_worker_caches_too(self):
        service = ShardedQueryService(make_graph(), shards=2, cache_size=0)
        try:
            service.query(**QUERY)
            for worker in service.workers:
                assert worker.service.results.max_size == 0
                assert worker.service.candidates.max_size == 0
        finally:
            service.close()


class TestSnapshotPersistence:
    def test_sharded_service_snapshot_roundtrip(self, tmp_path):
        path = tmp_path / "warm.json"
        first = ShardedQueryService(make_graph(), shards=2)
        try:
            result, meta = first.query(**QUERY)
            assert result.answer is True and not meta["cached"]
            first.save_snapshot(path)
        finally:
            first.close()
        second = ShardedQueryService(make_graph(), shards=2)
        try:
            warmed = second.load_snapshot(path)
            assert warmed["results"] >= 1
            result, meta = second.query(**QUERY)
            assert result.answer is True
            assert meta["cached"]  # served from the warmed cache
            # Restored traffic counters carried over.
            assert second.stats.snapshot()["queries"]["total"] >= 2
        finally:
            second.close()
