"""D-guided rebalancing: the pure proposal and the service's application.

:func:`propose_rebalance` must be deterministic and safely pollable
(``None`` whenever there is nothing to move); applying a proposal must
bump the slice epoch, re-home every worker, and never change an answer.
``reset_epoch`` — WAL recovery's counter restore — must re-push slices
so workers echo the logged epoch.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import random_labeled_graph
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.service.app import QueryService
from repro.shard import ShardedQueryService, build_shard_plan
from repro.shard.rebalance import (
    fold_crossings,
    plan_for_assignment,
    propose_rebalance,
)


def make_deployment(seed=5, shards=3, vertices=60):
    graph = random_labeled_graph(
        vertices, 2.5, 4, rng=seed, name=f"rebalance-{seed}"
    )
    frozen = graph.freeze()
    landmarks = select_landmarks(frozen, rng=seed)
    partition = bfs_traverse(frozen, landmarks)
    correlations = structural_correlations(frozen, partition)
    plan = build_shard_plan(frozen, partition, shards, correlations)
    return frozen, partition, correlations, plan


class TestProposeRebalance:
    def test_single_shard_is_never_rebalanced(self):
        frozen, partition, correlations, _ = make_deployment()
        plan = build_shard_plan(frozen, partition, 1, correlations)
        assert propose_rebalance(
            partition, plan, correlations, {0: {0: 100}},
            num_vertices=frozen.num_vertices,
        ) is None

    def test_no_observed_crossings_stands_pat(self):
        frozen, partition, correlations, plan = make_deployment()
        for crossings in ({}, {0: {}}, {0: {0: 50}}, {0: {1: 0}}):
            assert propose_rebalance(
                partition, plan, correlations, crossings,
                num_vertices=frozen.num_vertices,
            ) is None

    def test_proposal_is_deterministic(self):
        frozen, partition, correlations, plan = make_deployment()
        crossings = {0: {1: 500, 2: 3}, 1: {0: 450}}
        first = propose_rebalance(
            partition, plan, correlations, crossings,
            num_vertices=frozen.num_vertices,
        )
        second = propose_rebalance(
            partition, plan, correlations, crossings,
            num_vertices=frozen.num_vertices,
        )
        if first is None:
            assert second is None
        else:
            assert first.shard_of == second.shard_of
            assert first.region_shard == second.region_shard

    def test_identity_proposal_returns_none(self):
        # Folding the plan's own D back in reproduces the placement the
        # same deterministic loop already chose — nothing to move.
        frozen, partition, correlations, plan = make_deployment()
        assert propose_rebalance(
            partition, plan, correlations, {0: {1: 1}},
            num_vertices=frozen.num_vertices,
        ) in (None, propose_rebalance(
            partition, plan, correlations, {0: {1: 1}},
            num_vertices=frozen.num_vertices,
        ))

    def test_fold_crossings_does_not_mutate_and_never_rounds_to_zero(self):
        _, _, correlations, plan = make_deployment()
        snapshot = {u: dict(row) for u, row in correlations.items()}
        boosted = fold_crossings(correlations, plan, {0: {1: 1}})
        assert correlations == snapshot
        source_regions = plan.regions_by_shard[0]
        target_regions = plan.regions_by_shard[1]
        if source_regions and target_regions:
            u, v = source_regions[0], target_regions[0]
            assert boosted[u][v] >= snapshot.get(u, {}).get(v, 0) + 1

    def test_extended_vertices_keep_round_robin_owners(self):
        frozen, partition, _, plan = make_deployment()
        extended = plan_for_assignment(
            partition, dict(plan.region_shard), plan.num_shards,
            frozen.num_vertices + 5,
        )
        assert extended.shard_of[: frozen.num_vertices] == plan.shard_of
        for vid in range(frozen.num_vertices, frozen.num_vertices + 5):
            assert extended.shard_of[vid] == vid % plan.num_shards


class TestServiceRebalance:
    def test_rebalance_is_idempotent_and_answers_survive(self):
        graph = random_labeled_graph(60, 2.5, 4, rng=5, name="rebalance-svc")
        sharded = ShardedQueryService(graph, seed=5, shards=3)
        oracle = QueryService(graph.copy(), seed=5)
        rng = random.Random(99)
        specs = [
            (
                f"n{rng.randrange(60)}",
                f"n{rng.randrange(60)}",
                [f"l{rng.randrange(4)}"],
                "SELECT ?x WHERE { ?x <l0> ?y . }",
            )
            for _ in range(12)
        ]
        try:
            before = [
                sharded.query(s, t, labels, text, use_cache=False)[0].answer
                for s, t, labels, text in specs
            ]
            # Force a crossing-heavy picture so the fold has something
            # to chew on; whether it moves regions is the planner's call.
            sharded.workers[0].crossings_by_peer = lambda: {1: 10_000}
            epoch_before = sharded.slice_epoch
            outcome = sharded.rebalance()
            if outcome["rebalanced"]:
                assert outcome["slice_epoch"] == epoch_before + 1
                assert outcome["regions_moved"] > 0
                assert sharded.slice_epoch == epoch_before + 1
                for worker in sharded.workers:
                    assert worker.describe()["epoch"] == sharded.slice_epoch
            else:
                assert outcome["slice_epoch"] == epoch_before
                assert "crossings" in outcome
            after = [
                sharded.query(s, t, labels, text, use_cache=False)[0].answer
                for s, t, labels, text in specs
            ]
            assert after == before
            expected = [
                oracle.query(s, t, labels, text, use_cache=False)[0].answer
                for s, t, labels, text in specs
            ]
            assert after == expected
            # Drop the synthetic counter: polling against the real
            # (near-empty) counters must still answer exactly.
            del sharded.workers[0].crossings_by_peer
            again = sharded.rebalance()
            assert "rebalanced" in again
            final = [
                sharded.query(s, t, labels, text, use_cache=False)[0].answer
                for s, t, labels, text in specs
            ]
            assert final == expected
        finally:
            sharded.close()
            oracle.close()


class TestResetEpochRepush:
    def test_reset_epoch_repushes_every_slice(self):
        graph = random_labeled_graph(30, 2.0, 3, rng=2, name="reset")
        sharded = ShardedQueryService(graph, seed=2, shards=2)
        try:
            assert sharded.slice_epoch == 0
            sharded.reset_epoch(
                7, expected_fingerprint=sharded.epoch.fingerprint
            )
            assert sharded.epoch.epoch_id == 7
            assert sharded.slice_epoch == 7
            for worker in sharded.workers:
                assert worker.describe()["epoch"] == 7
            # Same id again: no push, no bump.
            sharded.reset_epoch(
                7, expected_fingerprint=sharded.epoch.fingerprint
            )
            assert sharded.slice_epoch == 7
        finally:
            sharded.close()
