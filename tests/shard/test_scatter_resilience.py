"""Scatter pool lifecycle races: shutdown pools degrade to serial calls."""

from __future__ import annotations

import pytest

from repro.shard import ShardedQueryService
from tests.helpers import graph_from_edges


def make_graph():
    return graph_from_edges(
        [
            ("s", "go", "m"),
            ("m", "go", "t"),
            ("m", "mark", "m"),
            ("t", "go", "u"),
            ("u", "mark", "s"),
        ],
        name="tiny",
    )


QUERY = {
    "source": "s",
    "target": "t",
    "labels": ["go"],
    "constraint": "SELECT ?x WHERE { ?x <mark> ?y . }",
}


@pytest.fixture
def service():
    # scatter_timeout forces the bounded (pool) path even for one-shard
    # rounds, so the shutdown race below is actually exercised;
    # approx=False keeps the witness tier from answering repeats before
    # the coordinator (which is the object under test).
    svc = ShardedQueryService(
        make_graph(), shards=3, local_fast_path=False, scatter_timeout=5.0,
        approx=False,
    )
    yield svc
    svc.close()


class TestPoolShutdownRaces:
    def test_shutdown_pool_falls_back_to_serial(self, service):
        coordinator = service.coordinator
        baseline, _ = service.query(**QUERY, use_cache=False)
        assert baseline.answer is True
        # Simulate close() racing an in-flight query: the pool rejects
        # new submissions but the coordinator must still answer.
        coordinator._pool.shutdown(wait=False)
        result, _ = service.query(**QUERY, use_cache=False)
        assert result.answer is True
        assert result.degraded is None
        stats = coordinator.stats()
        assert stats["scatter_serial_fallbacks"] >= 1

    def test_answer_after_close_uses_serial_path(self, service):
        service.coordinator.close()
        assert service.coordinator._pool is None
        result, _ = service.query(**QUERY, use_cache=False)
        assert result.answer is True
        assert result.degraded is None
        # Each pool-less round is counted as a serial fallback too.
        assert service.coordinator.stats()["scatter_serial_fallbacks"] >= 1

    def test_close_is_idempotent(self, service):
        service.coordinator.close()
        service.coordinator.close()
        assert service.coordinator._pool is None

    def test_fallback_is_visible_in_service_stats(self, service):
        service.coordinator._pool.shutdown(wait=False)
        service.query(**QUERY, use_cache=False)
        document = service.stats_snapshot()
        coordinator_doc = document["shards"]["coordinator"]
        assert coordinator_doc["scatter_serial_fallbacks"] >= 1
