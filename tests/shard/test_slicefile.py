"""Slice files: deterministic roundtrip and defensive loading.

The serialization contract ``serve --worker`` boots on: ``dump → load →
dump`` is byte-identical (a slice file is a content-addressable
artifact), the deployment metadata (epoch, fingerprint, plan hash)
survives the roundtrip, and every way a file can lie — truncation,
version skew, tampered plan, tampered adjacency or border table —
raises :class:`SliceFileError` instead of booting a worker on garbage.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.exceptions import SliceFileError
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.shard import build_shard_plan, cut_slices
from repro.shard.slicefile import (
    SLICE_FORMAT_VERSION,
    dump_slice,
    load_slice,
    plan_fingerprint,
    slice_document,
    slice_from_document,
)

SHARDS = 3


@pytest.fixture(scope="module")
def deployment():
    graph = random_labeled_graph(120, 4.0, 6, rng=3, name="slicefile")
    frozen = graph.freeze()
    landmarks = select_landmarks(frozen, rng=3)
    partition = bfs_traverse(frozen, landmarks)
    correlations = structural_correlations(frozen, partition)
    plan = build_shard_plan(frozen, partition, SHARDS, correlations)
    slices = cut_slices(frozen, plan)
    return frozen, plan, slices


class TestRoundtrip:
    def test_dump_load_dump_is_byte_identical(self, deployment, tmp_path):
        frozen, plan, slices = deployment
        fingerprint = frozen.content_fingerprint()
        for graph_slice in slices:
            first = tmp_path / f"first-{graph_slice.shard_id}.json"
            second = tmp_path / f"second-{graph_slice.shard_id}.json"
            dump_slice(graph_slice, plan, first, epoch=7,
                       fingerprint=fingerprint)
            loaded = load_slice(first)
            dump_slice(loaded.slice, loaded.plan, second, epoch=loaded.epoch,
                       fingerprint=loaded.fingerprint)
            assert first.read_bytes() == second.read_bytes()

    def test_metadata_survives(self, deployment, tmp_path):
        frozen, plan, slices = deployment
        fingerprint = frozen.content_fingerprint()
        path = tmp_path / "slice.json"
        dump_slice(slices[1], plan, path, epoch=42, fingerprint=fingerprint)
        loaded = load_slice(path)
        assert loaded.shard_id == 1
        assert loaded.epoch == 42
        assert loaded.fingerprint == fingerprint
        assert loaded.plan_hash == plan_fingerprint(plan)
        assert loaded.plan.shard_of == plan.shard_of
        assert loaded.path == path

    def test_rebuilt_slice_matches_the_original(self, deployment, tmp_path):
        frozen, plan, slices = deployment
        fingerprint = frozen.content_fingerprint()
        original = slices[0]
        path = tmp_path / "slice.json"
        dump_slice(original, plan, path, epoch=0, fingerprint=fingerprint)
        rebuilt = load_slice(path).slice
        assert rebuilt.num_edges == original.num_edges
        assert rebuilt.border_targets == original.border_targets
        assert rebuilt.peer_shards == original.peer_shards
        assert sorted(rebuilt.edges()) == sorted(original.edges())

    def test_document_roundtrip_without_a_file(self, deployment):
        frozen, plan, slices = deployment
        fingerprint = frozen.content_fingerprint()
        document = slice_document(slices[2], plan, epoch=3,
                                  fingerprint=fingerprint)
        loaded = slice_from_document(json.loads(json.dumps(document)))
        assert loaded.document() == document


class TestDefensiveLoading:
    def _document(self, deployment):
        frozen, plan, slices = deployment
        return slice_document(
            slices[0], plan, epoch=0,
            fingerprint=frozen.content_fingerprint(),
        )

    def _dump(self, deployment, tmp_path, mutate):
        document = self._document(deployment)
        mutate(document)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SliceFileError, match="cannot read"):
            load_slice(tmp_path / "nope.json")

    def test_truncated_file(self, deployment, tmp_path):
        path = self._dump(deployment, tmp_path, lambda d: None)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(SliceFileError, match="corrupt or truncated"):
            load_slice(path)

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SliceFileError, match="not a JSON object"):
            load_slice(path)

    def test_version_mismatch(self, deployment, tmp_path):
        path = self._dump(
            deployment, tmp_path,
            lambda d: d.update(format_version=SLICE_FORMAT_VERSION + 1),
        )
        with pytest.raises(SliceFileError, match="not supported"):
            load_slice(path)

    def test_wrong_kind(self, deployment, tmp_path):
        path = self._dump(
            deployment, tmp_path, lambda d: d.update(kind="wal-snapshot")
        )
        with pytest.raises(SliceFileError, match="kind"):
            load_slice(path)

    def test_shard_id_outside_plan(self, deployment, tmp_path):
        path = self._dump(
            deployment, tmp_path, lambda d: d.update(shard_id=SHARDS)
        )
        with pytest.raises(SliceFileError, match="outside plan"):
            load_slice(path)

    def test_tampered_plan_fails_the_hash(self, deployment, tmp_path):
        def flip_owner(document):
            shard_of = document["plan"]["shard_of"]
            shard_of[0] = (shard_of[0] + 1) % SHARDS

        path = self._dump(deployment, tmp_path, flip_owner)
        with pytest.raises(SliceFileError, match="plan_hash"):
            load_slice(path)

    def test_tampered_adjacency_fails_the_border_check(
        self, deployment, tmp_path
    ):
        def drop_row(document):
            # Empty one owned vertex's adjacency: edge/border bookkeeping
            # no longer matches the declared tables.
            for row in document["adjacency"]:
                if row:
                    del row[:]
                    break

        path = self._dump(deployment, tmp_path, drop_row)
        with pytest.raises(SliceFileError):
            load_slice(path)

    def test_tampered_edge_count(self, deployment, tmp_path):
        path = self._dump(
            deployment, tmp_path,
            lambda d: d.update(num_edges=d["num_edges"] + 1),
        )
        with pytest.raises(SliceFileError, match="edges"):
            load_slice(path)
