"""Randomized agreement: sharded serving vs the unsharded path vs naive.

The acceptance bar for the shard subsystem: over ≥ 50 seeded random
graphs, :class:`~repro.shard.ShardedQueryService` must return the same
Boolean answer as (a) the naive two-procedure oracle (correctness) and
(b) a plain :class:`~repro.service.app.QueryService` on the same graph
(the production property: turning sharding on never changes an answer).
Shard counts rotate 1–4 per seed, index-backed and index-free services
alternate (mirroring ``tests/service/test_agreement_service.py``), the
second pass of every query must come off the result cache, and the
batch path is held to the same standard.  A final group runs the
scatter-gather over *remote* workers — a second coordinator driving the
in-process workers through real HTTP — to pin the wire protocol to the
in-process semantics.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.datasets.synthetic import random_labeled_graph
from repro.index.local_index import build_local_index
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.shard import HttpShardWorker, ShardCoordinator, ShardedQueryService

#: ≥ 50 generated graphs, every seed fixed for reproducibility.
SEEDS = list(range(50))
QUERIES_PER_GRAPH = 8
NUM_LABELS = 3
NUM_VERTICES = 9


def make_graph(seed):
    return random_labeled_graph(
        NUM_VERTICES, 1.8, NUM_LABELS, rng=seed, name=f"shard-agree-{seed}"
    )


def shard_count(seed):
    """Rotate 1-4 shards across seeds (1 = degenerate single shard)."""
    return 1 + seed % 4


def make_sharded(graph, seed):
    """Alternate indexed and index-free sharded services by seed.

    Even seeds shard along the loaded index's own partition (and its
    ``D`` table guides placement); odd seeds build a fresh landmark
    partition with structural correlations — both construction paths
    stay under agreement test.
    """
    index = build_local_index(graph, k=3, rng=seed) if seed % 2 == 0 else None
    return ShardedQueryService(graph, index, seed=seed, shards=shard_count(seed))


def constraint_pool(rng):
    label = f"l{rng.randrange(NUM_LABELS)}"
    anchor = f"n{rng.randrange(NUM_VERTICES)}"
    pool = [
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> {anchor} . }}",
        f"SELECT ?x WHERE {{ {anchor} <{label}> ?x . }}",
        f"SELECT ?x WHERE {{ ?x <{label}> ?y . ?y <l0> ?z . }}",
    ]
    return rng.choice(pool)


def random_specs(rng, count=QUERIES_PER_GRAPH):
    vertices = [f"n{i}" for i in range(NUM_VERTICES)]
    labels = [f"l{i}" for i in range(NUM_LABELS)]
    return [
        (
            rng.choice(vertices),
            rng.choice(vertices),
            rng.sample(labels, rng.randint(1, NUM_LABELS)),
            constraint_pool(rng),
        )
        for _ in range(count)
    ]


def naive_answer(graph, source, target, labels, constraint_text, cache):
    if constraint_text not in cache:
        cache[constraint_text] = SubstructureConstraint.from_sparql(constraint_text)
    query = LSCRQuery(
        source=source,
        target=target,
        labels=LabelConstraint(labels),
        constraint=cache[constraint_text],
    )
    return NaiveTwoProcedure(graph).decide(query)


class TestShardedAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_agrees_with_naive_and_unsharded(self, seed):
        graph = make_graph(seed)
        sharded = make_sharded(graph, seed)
        plain = QueryService(graph, seed=seed)
        rng = random.Random(seed * 7919 + 1)
        parsed = {}
        try:
            for source, target, labels, text in random_specs(rng):
                expected = naive_answer(graph, source, target, labels, text, parsed)
                single, _ = plain.query(source, target, labels, text)
                assert single.answer == expected
                first, meta1 = sharded.query(source, target, labels, text)
                assert first.answer == expected, (
                    f"seed={seed} shards={shard_count(seed)} "
                    f"{source}->{target} L={labels} S={text!r}: "
                    f"sharded={first.answer} naive={expected} ({meta1['reason']})"
                )
                # Executed answers carry the coordinator's stamp —
                # unless the approx tier soundly short-circuited before
                # anything scattered ("bounds"/"witness").
                if not meta1["trivial"]:
                    assert first.algorithm in ("sharded", "bounds", "witness")
                # Second pass: identical answer off the cache (or the
                # re-planned trivial path).
                second, meta2 = sharded.query(source, target, labels, text)
                assert second.answer == expected
                if meta1["trivial"]:
                    assert meta2["trivial"]
                else:
                    assert meta2["cached"]
        finally:
            sharded.close()
            plain.close()

    @pytest.mark.parametrize("seed", SEEDS[::5])
    def test_batch_path_agrees(self, seed):
        graph = make_graph(seed)
        sharded = make_sharded(graph, seed)
        rng = random.Random(seed * 104729 + 3)
        parsed = {}
        raw = random_specs(rng, count=12)
        expected = [
            naive_answer(graph, s, t, labels, text, parsed)
            for s, t, labels, text in raw
        ]
        specs = [
            {"source": s, "target": t, "labels": labels, "constraint": text}
            for s, t, labels, text in raw
        ]
        try:
            answered = sharded.query_batch(specs)
            assert [result.answer for result, _ in answered] == expected
            again = sharded.query_batch(specs)
            assert [result.answer for result, _ in again] == expected
            assert all(meta["cached"] or meta["trivial"] for _, meta in again)
        finally:
            sharded.close()

    @pytest.mark.parametrize("seed", SEEDS[::10])
    def test_forced_algorithm_bypasses_sharding_and_agrees(self, seed):
        # plan.forced routes around the coordinator; answers still match.
        graph = make_graph(seed)
        sharded = make_sharded(graph, seed)
        rng = random.Random(seed * 13 + 5)
        parsed = {}
        try:
            for source, target, labels, text in random_specs(rng, count=4):
                expected = naive_answer(graph, source, target, labels, text, parsed)
                result, meta = sharded.query(
                    source, target, labels, text, algorithm="uis", use_cache=False
                )
                assert result.answer == expected
                if not meta["trivial"]:
                    assert result.algorithm == "UIS"
        finally:
            sharded.close()


class TestEarlyExits:
    def test_unreachable_target_skips_phase_two(self):
        # s reaches a satisfying vertex but never the target: the
        # answer is decided after phase one (no second closure).
        from tests.helpers import graph_from_edges

        graph = graph_from_edges(
            [("s", "go", "v"), ("v", "mark", "v"), ("x", "go", "t")]
        )
        # approx=False: the bounds tier would answer this definite-No
        # before the coordinator runs, and phase one is what's under
        # test here.
        service = ShardedQueryService(graph, seed=0, shards=2,
                                      local_fast_path=False, approx=False)
        try:
            result, _ = service.query(
                "s", "t", ["go"], "SELECT ?x WHERE { ?x <mark> ?y . }"
            )
            assert result.answer is False
            # passed_vertices counts phase one only: {s, v}.
            assert result.passed_vertices == 2
        finally:
            service.close()

    def test_empty_candidate_set_skips_both_phases(self):
        from tests.helpers import graph_from_edges

        # 'mark' label exists (so the planner doesn't trivialise the
        # constraint structurally) but nothing satisfies the anchored
        # pattern below: V(S, G) is empty at evaluation time.
        graph = graph_from_edges(
            [("s", "go", "t"), ("a", "mark", "b")]
        )
        service = ShardedQueryService(graph, seed=0, shards=2,
                                      local_fast_path=False)
        try:
            result, meta = service.query(
                "s", "t", ["go"], "SELECT ?x WHERE { ?x <mark> s . }"
            )
            assert result.answer is False
            if not meta["trivial"]:
                assert result.passed_vertices == 0  # no closure ran
        finally:
            service.close()


class TestRemoteWorkerAgreement:
    """The HTTP wire protocol answers exactly like in-process workers."""

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_remote_coordinator_agrees_with_oracle(self, seed):
        graph = random_labeled_graph(
            24, 2.0, 4, rng=seed, name=f"remote-{seed}"
        )
        sharded = ShardedQueryService(graph, seed=seed, shards=3)
        workers = {
            str(position): worker
            for position, worker in enumerate(sharded.workers)
        }
        server = create_server(sharded, "127.0.0.1", 0, workers)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        remote = ShardCoordinator(
            sharded.graph,
            sharded.shard_plan,
            [HttpShardWorker(base, position) for position in range(3)],
            parallel=False,
        )
        oracle = NaiveTwoProcedure(sharded.graph)
        rng = random.Random(seed * 37 + 11)
        try:
            for _ in range(8):
                source = f"n{rng.randrange(24)}"
                target = f"n{rng.randrange(24)}"
                labels = rng.sample([f"l{i}" for i in range(4)], rng.randint(1, 3))
                query = LSCRQuery.create(
                    source, target, labels, constraint_pool(rng)
                )
                assert remote.answer(query).answer == oracle.decide(query), (
                    seed,
                    source,
                    target,
                    labels,
                )
        finally:
            remote.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            sharded.close()
