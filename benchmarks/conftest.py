"""Shared infrastructure for the table/figure benchmarks.

Every ``bench_*.py`` module regenerates one paper artifact:

* micro-benchmarks (the ``benchmark`` fixture) time the individual
  algorithms on prepared workloads, so ``pytest benchmarks/
  --benchmark-only`` produces comparable per-algorithm timings;
* each module also has a ``*_report`` benchmark that runs the full
  harness experiment once and registers the rendered paper-shaped table;
  the tables are printed in the terminal summary at the end of the run
  (so they land in ``bench_output.txt`` even with captured stdout).

Sizes use :data:`PYTEST_SCALE` — between SMOKE and the full BENCH preset
so the whole suite stays in the minutes range.
"""

from __future__ import annotations

from repro.bench.experiments import BenchScale

#: Scale for the pytest-benchmark run (EXPERIMENTS.md uses BENCH).
PYTEST_SCALE = BenchScale(
    name="pytest",
    datasets=("D1", "D2"),
    indexing_datasets=("D0", "D1"),
    queries_per_group=6,
    traditional_budget_seconds=10.0,
    fig5_densities=(2.0, 3.5, 5.0),
    fig5_fixed_vertices=120,
    fig5_vertices=(60, 120, 240),
    yago_entities=600,
    yago_magnitudes=(10, 40),
)

_RECORDED_TABLES: list[str] = []


def record_tables(text: str) -> None:
    """Register a rendered experiment table for the terminal summary."""
    _RECORDED_TABLES.append(text)


def pytest_terminal_summary(terminalreporter) -> None:
    if not _RECORDED_TABLES:
        return
    terminalreporter.section("paper tables and figures (pytest scale)")
    for text in _RECORDED_TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
