"""Builders shared by the figure benchmarks (import-light, cached)."""

from __future__ import annotations

import random
from functools import lru_cache

from repro.core.ins import INS
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.datasets.lubm import constraint as lubm_constraint
from repro.datasets.lubm import generate_dataset
from repro.index.local_index import LocalIndex, build_local_index
from repro.workloads.generator import Workload, generate_workload

from benchmarks.conftest import PYTEST_SCALE


@lru_cache(maxsize=None)
def dataset(name: str):
    """One shared graph per dataset name (read-only after creation)."""
    return generate_dataset(name, rng=0)


@lru_cache(maxsize=None)
def local_index(name: str) -> LocalIndex:
    """One shared local index per dataset."""
    return build_local_index(dataset(name), rng=1)


@lru_cache(maxsize=None)
def figure_workload(dataset_name: str, constraint_name: str) -> Workload:
    """The Section 6.1.1 workload of one figure cell."""
    return generate_workload(
        dataset(dataset_name),
        lubm_constraint(constraint_name),
        num_true=PYTEST_SCALE.queries_per_group,
        num_false=PYTEST_SCALE.queries_per_group,
        rng=2,
    )


def make_algorithm(name: str, dataset_name: str):
    """Fresh algorithm instance bound to the shared dataset/index."""
    graph = dataset(dataset_name)
    if name == "UIS":
        return UIS(graph)
    if name == "UIS*":
        return UISStar(graph, rng=random.Random(3))
    if name == "INS":
        return INS(graph, local_index(dataset_name), rng=random.Random(4))
    raise ValueError(name)


def answer_group(algorithm, queries) -> int:
    """Answer every query; returns how many were true (sanity output)."""
    true_count = 0
    for item in queries:
        if algorithm.answer(item.query).answer:
            true_count += 1
    return true_count
