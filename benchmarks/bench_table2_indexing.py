"""Table 2 — indexing time and space: local index vs traditional [19].

Micro-benchmarks time each index build; the report benchmark regenerates
the full Table 2 (the traditional column shows "-" where the build
exceeds its budget, mirroring the paper's 8-hour cut-off).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import render_results, run_experiment
from repro.exceptions import IndexingBudgetExceeded
from repro.index.local_index import build_local_index
from repro.index.traditional import build_traditional_index

from benchmarks._support import dataset
from benchmarks.conftest import PYTEST_SCALE, record_tables


@pytest.mark.parametrize("name", ["D0", "D1"])
def test_local_index_build(benchmark, name):
    graph = dataset(name)
    index = benchmark.pedantic(
        lambda: build_local_index(graph, rng=1), rounds=2, iterations=1
    )
    assert index.stats().ii_entries > 0


def test_traditional_index_build_d0(benchmark):
    graph = dataset("D0")

    def build():
        try:
            return build_traditional_index(
                graph, budget_seconds=PYTEST_SCALE.traditional_budget_seconds
            )
        except IndexingBudgetExceeded:
            return None

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    # either it finished within budget (paper: D0 succeeds) or the budget
    # tripped — both are valid Table 2 outcomes at this scale
    assert result is None or result.stats()["full_entries"] > 0


def test_table2_report(benchmark):
    results = benchmark.pedantic(
        lambda: run_experiment("table2", PYTEST_SCALE, seed=0),
        rounds=1,
        iterations=1,
    )
    record_tables(render_results(results))
    assert results[0].rows
