"""Ablation (extension): what each INS mechanism contributes.

Benchmarks the four INS variants — full, no index pruning, no informed
priorities, neither — on the same workload, substantiating the design
rationale of the paper's Section 5.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import render_results, run_experiment
from repro.core.ins import INS

from benchmarks._support import answer_group, dataset, figure_workload, local_index
from benchmarks.conftest import PYTEST_SCALE, record_tables

BENCH_DATASET = "D2"

VARIANTS = {
    "full": dict(),
    "noprune": dict(use_index_pruning=False),
    "noprio": dict(use_priorities=False),
    "neither": dict(use_index_pruning=False, use_priorities=False),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_variant(benchmark, variant):
    graph = dataset(BENCH_DATASET)
    workload = figure_workload(BENCH_DATASET, "S1")
    queries = workload.all_queries()
    if not queries:
        pytest.skip("no queries generated")
    algorithm = INS(
        graph,
        local_index(BENCH_DATASET),
        rng=random.Random(0),
        **VARIANTS[variant],
    )
    true_count = benchmark(answer_group, algorithm, queries)
    assert true_count == sum(1 for q in queries if q.expected)


def test_ablation_report(benchmark):
    results = benchmark.pedantic(
        lambda: run_experiment("ablation", PYTEST_SCALE, seed=0),
        rounds=1,
        iterations=1,
    )
    record_tables(render_results(results))
    assert results[0].rows
