"""Figure 15 — random substructure constraints on the YAGO substitute.

Times the three algorithms per |V(S,G)| magnitude; the report benchmark
regenerates all four panels of the figure.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.bench.harness import render_results, run_experiment
from repro.core.ins import INS
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.index.local_index import build_local_index
from repro.workloads.constraints import random_constraint_with_magnitude
from repro.workloads.generator import generate_workload

from benchmarks._support import answer_group
from benchmarks.conftest import PYTEST_SCALE, record_tables


@lru_cache(maxsize=None)
def yago_setup():
    graph = generate_yago_like(
        YagoConfig(num_entities=PYTEST_SCALE.yago_entities), rng=0
    )
    index = build_local_index(graph, rng=1)
    return graph, index


@lru_cache(maxsize=None)
def magnitude_workload(magnitude: int):
    graph, _index = yago_setup()
    generated = random_constraint_with_magnitude(graph, magnitude, rng=magnitude)
    return generate_workload(
        graph,
        generated.constraint,
        num_true=PYTEST_SCALE.queries_per_group,
        num_false=PYTEST_SCALE.queries_per_group,
        rng=magnitude + 1,
    )


@pytest.mark.parametrize("algorithm_name", ["UIS", "UIS*", "INS"])
@pytest.mark.parametrize("magnitude", list(PYTEST_SCALE.yago_magnitudes))
def test_fig15_query_group(benchmark, algorithm_name, magnitude):
    graph, index = yago_setup()
    workload = magnitude_workload(magnitude)
    queries = workload.all_queries()
    if not queries:
        pytest.skip("workload generation produced no queries")
    if algorithm_name == "UIS":
        algorithm = UIS(graph)
    elif algorithm_name == "UIS*":
        algorithm = UISStar(graph)
    else:
        algorithm = INS(graph, index)
    true_count = benchmark(answer_group, algorithm, queries)
    assert true_count == sum(1 for q in queries if q.expected)


def test_fig15_report(benchmark):
    results = benchmark.pedantic(
        lambda: run_experiment("fig15", PYTEST_SCALE, seed=0), rounds=1, iterations=1
    )
    record_tables(render_results(results))
    assert len(results) == 4
