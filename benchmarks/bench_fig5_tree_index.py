"""Figure 5 — tree-based LCR index construction does not scale.

Times the [6]-style sampling-tree index across the density sweep (5a)
and the vertex-count sweep (5b); the report benchmark regenerates both
panels and asserts the paper's shape (monotone growth in |V|).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import render_results, run_experiment
from repro.datasets.synthetic import random_labeled_graph
from repro.index.spanning_tree import build_sampling_tree_index

from benchmarks.conftest import PYTEST_SCALE, record_tables


@pytest.mark.parametrize("density", list(PYTEST_SCALE.fig5_densities))
def test_fig5a_density_sweep(benchmark, density):
    graph = random_labeled_graph(
        PYTEST_SCALE.fig5_fixed_vertices,
        density,
        PYTEST_SCALE.fig5_num_labels,
        rng=0,
    )
    index = benchmark.pedantic(
        lambda: build_sampling_tree_index(graph, rng=1), rounds=2, iterations=1
    )
    assert index.stats()["closure_entries"] > 0


@pytest.mark.parametrize("vertices", list(PYTEST_SCALE.fig5_vertices))
def test_fig5b_vertex_sweep(benchmark, vertices):
    graph = random_labeled_graph(
        vertices,
        PYTEST_SCALE.fig5_fixed_density,
        PYTEST_SCALE.fig5_num_labels,
        rng=0,
    )
    index = benchmark.pedantic(
        lambda: build_sampling_tree_index(graph, rng=1), rounds=2, iterations=1
    )
    assert index.stats()["closure_entries"] > 0


def test_fig5_report(benchmark):
    results = benchmark.pedantic(
        lambda: run_experiment("fig5", PYTEST_SCALE, seed=0), rounds=1, iterations=1
    )
    record_tables(render_results(results))
    vertex_times = [row[2] for row in results[1].rows]
    assert vertex_times == sorted(vertex_times), "5(b): time must grow with |V|"
