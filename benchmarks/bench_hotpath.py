"""Hot-path throughput benchmark: the frozen serving stack vs the seed's.

Measures the two serving shapes that matter for the ROADMAP's "as fast
as the hardware allows" north star:

* **single-query throughput** — INS and UIS* answered serially through
  an :class:`~repro.session.LSCRSession` (result cache out of the
  picture), in up to three configurations per algorithm:

  - ``baseline`` — the dict-backed :class:`KnowledgeGraph` with no
    ``V(S, G)`` memoisation: how every query executed before this
    optimisation pass;
  - ``dict_cached`` — dict-backed graph plus the
    :class:`~repro.service.cache.CandidateCache` the service now wires
    into its sessions (isolates the cache's contribution);
  - ``frozen`` — the :class:`~repro.graph.csr.FrozenGraph` CSR snapshot
    plus the candidate cache: the serving default after this pass.

  Each cell reports q/s; ``speedup`` is frozen vs baseline (the gate
  number) and ``csr_speedup`` is frozen vs dict_cached (the layout's
  isolated contribution).  Same graph, same local index, same query
  stream everywhere, and the harness asserts all configurations return
  identical answers;

* **batched service throughput** — the full
  :class:`~repro.service.app.QueryService` path (planner → sessions →
  batch executor) with the result cache bypassed, ``freeze=True`` vs
  ``freeze=False`` (the candidate cache is part of the service in both,
  so this compares graph layouts under real batch fan-out).  With
  ``--shards N`` the same workload also runs through a
  :class:`~repro.shard.ShardedQueryService` (scatter-gather over N
  in-process slice workers), recorded as ``service_batch.sharded`` with
  ``sharded_vs_unsharded`` — the coordination overhead / co-location
  win tracked PR over PR; the harness asserts the sharded answers match
  the unsharded ones per query.  The same flag also grows a
  ``service_batch.sharded.remote`` dimension: the slices are dumped to
  files, one real ``serve --worker`` subprocess boots per slice on an
  ephemeral port, and the coordinator attaches them by URL — the full
  cross-host wire (handshake, pooled keep-alive HTTP, slice-epoch
  echo) timed under the identical workload, with the same per-query
  agreement gate.

The workload mixes the paper's two Table 3 constraint shapes — anchored
patterns (small, cheap ``V(S, G)``) and star patterns (expensive
``V(S, G)`` joins) — over a dense random graph whose label alphabet is
several times larger than any one constraint.

The report is written as JSON (default: ``BENCH_hotpath.json`` at the
repo root) so successive PRs accumulate a perf trajectory.  Without
``--compare`` only the frozen numbers are measured (fast enough for a
tracking run); with ``--compare`` the baselines and speedups are
included in the same run — that is the mode whose output is committed.

Run::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --compare
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.query import LSCRQuery  # noqa: E402
from repro.datasets.synthetic import random_labeled_graph  # noqa: E402
from repro.index.local_index import build_local_index  # noqa: E402
from repro.service.app import QueryService  # noqa: E402
from repro.service.cache import CandidateCache  # noqa: E402
from repro.session import LSCRSession  # noqa: E402
from repro.shard import (  # noqa: E402
    ShardedQueryService,
    build_shard_plan,
    cut_slices,
    dump_slice,
)

SCHEMA_VERSION = 1

#: (vertices, density, labels, queries, rounds) per mode.  Density and
#: label-alphabet size follow the paper's KG-shaped datasets: high-degree
#: vertices and a label universe several times larger than any one
#: constraint, so the per-vertex mask pre-test has something to reject.
FULL = dict(vertices=2000, density=6.0, labels=10, queries=120, rounds=3)
QUICK = dict(vertices=300, density=4.0, labels=8, queries=24, rounds=2)

ALGORITHMS = ("ins", "uis*")


def build_workload(config: dict, seed: int):
    """One random graph, its local index, and a query stream."""
    graph = random_labeled_graph(
        config["vertices"], config["density"], config["labels"], rng=seed,
        name="hotpath",
    )
    index = build_local_index(graph, rng=seed)
    rng = random.Random(seed * 7919 + 11)
    label_names = [f"l{i}" for i in range(config["labels"])]
    # Table 3's two constraint shapes: anchored (selective, cheap
    # V(S,G)) and star-joined (expensive V(S,G) the candidate cache
    # amortises).  Four texts over the whole stream, like the paper's
    # workloads reusing a handful of constraints across thousands of
    # queries.
    constraints = [
        "SELECT ?x WHERE { ?x <l0> ?y . ?x <l1> ?z . ?x <l2> ?w . }",
        "SELECT ?x WHERE { ?x <l1> ?y . ?y <l0> n42 . }",
        "SELECT ?x WHERE { ?x <l3> ?y . ?x <l4> ?z . ?x <l0> ?w . }",
        "SELECT ?x WHERE { ?x <l1> n7 . ?x <l0> ?z . }",
    ]
    specs = []
    for _ in range(config["queries"]):
        specs.append(
            {
                "source": f"n{rng.randrange(config['vertices'])}",
                "target": f"n{rng.randrange(config['vertices'])}",
                "labels": rng.sample(label_names, rng.randint(2, 3)),
                "constraint": rng.choice(constraints),
            }
        )
    return graph, index, specs


def prepared_queries(specs) -> list[LSCRQuery]:
    """Specs parsed once up front — the bench times search, not parsing."""
    return [
        LSCRQuery.create(
            spec["source"], spec["target"], spec["labels"], spec["constraint"]
        )
        for spec in specs
    ]


def bench_single(
    graph, index, queries, algorithm: str, rounds: int, *, cached: bool
) -> dict:
    """Serial per-query throughput for one algorithm on one configuration."""
    session = LSCRSession(
        graph,
        algorithm=algorithm,
        index=index if algorithm == "ins" else None,
        seed=0,
        candidate_cache=CandidateCache() if cached else None,
    )
    answers = [session.answer(query).answer for query in queries]  # warm-up
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for query in queries:
            session.answer(query)
        best = min(best, time.perf_counter() - started)
    return {
        "queries": len(queries),
        "true_answers": sum(answers),
        "best_seconds": best,
        "qps": len(queries) / best,
        "answers": answers,
    }


def bench_service(
    graph, index, specs, *, freeze: bool, rounds: int, shards: int = 0
) -> dict:
    """Batched throughput through the full QueryService path.

    ``shards > 0`` swaps in a :class:`ShardedQueryService` (always
    frozen) so the same workload measures the scatter-gather topology.
    """
    if shards:
        service = ShardedQueryService(graph, index, seed=0, shards=shards)
    else:
        service = QueryService(graph, index, seed=0, freeze=freeze)
    try:
        service.query_batch(specs, use_cache=False)  # warm-up
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            answered = service.query_batch(specs, use_cache=False)
            best = min(best, time.perf_counter() - started)
        return {
            "queries": len(specs),
            "true_answers": sum(result.answer for result, _ in answered),
            "best_seconds": best,
            "qps": len(specs) / best,
            "answers": [result.answer for result, _ in answered],
        }
    finally:
        service.close()


def bench_service_remote(graph, index, specs, *, shards: int, rounds: int) -> dict:
    """Batched throughput over real ``serve --worker`` subprocesses.

    Cuts the shard plan's slices to files exactly as ``python -m repro
    cut`` would — same partition, same correlation table, so the plan
    hash matches and the coordinator's handshake needs no resync — then
    boots one worker process per slice on an ephemeral port and
    attaches a :class:`ShardedQueryService` to them by URL.  This is
    the cross-host wire end to end: descriptor handshake, pooled
    keep-alive HTTP, per-expand slice-epoch echo.  Probes are disabled
    (``probe_interval=0``) so the bench times the scatter path, not the
    health loop.
    """
    frozen = graph.freeze()
    plan = build_shard_plan(
        frozen, index.partition, shards, index.region_correlations()
    )
    fingerprint = frozen.content_fingerprint()
    tmp = Path(tempfile.mkdtemp(prefix="bench-remote-"))
    procs: list[subprocess.Popen] = []
    urls: list[str] = []
    try:
        for graph_slice in cut_slices(frozen, plan):
            path = tmp / f"shard-{graph_slice.shard_id}.slice.json"
            dump_slice(graph_slice, plan, path, epoch=0, fingerprint=fingerprint)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--worker", str(path),
                 "--host", "127.0.0.1", "--port", "0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            )
            procs.append(proc)
            for line in proc.stdout:
                match = re.search(r"listening on (http://\S+)", line)
                if match:
                    urls.append(match.group(1))
                    break
            else:
                raise SystemExit(
                    f"remote bench: worker for shard {graph_slice.shard_id} "
                    "exited before printing its ready line"
                )
            # Keep the pipe drained for the rest of the run so a chatty
            # worker can never block on a full pipe buffer.
            threading.Thread(
                target=proc.stdout.read, daemon=True
            ).start()
        service = ShardedQueryService(
            graph, index, seed=0, shards=shards, worker_urls=urls,
            probe_interval=0,
        )
        try:
            service.query_batch(specs, use_cache=False)  # warm-up
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                answered = service.query_batch(specs, use_cache=False)
                best = min(best, time.perf_counter() - started)
            return {
                "queries": len(specs),
                "true_answers": sum(result.answer for result, _ in answered),
                "best_seconds": best,
                "qps": len(specs) / best,
                "workers": len(urls),
                "answers": [result.answer for result, _ in answered],
            }
        finally:
            service.close()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        shutil.rmtree(tmp, ignore_errors=True)


def bench_updates(graph, index, specs, *, rounds: int, seed: int) -> dict:
    """Mixed read/update throughput through the epoch-swap path.

    Alternates ``apply_updates`` batches (random new edges over existing
    vertices) with full query batches, measuring post-swap batch
    latency — the number that shows whether a swap degrades the serving
    hot path.  Afterwards the mutated service's answers are checked
    against a service built fresh on the mutated graph (the agreement
    criterion), so the bench doubles as a smoke gate.
    """
    rng = random.Random(seed * 31 + 5)
    # The service gets its own graph copy (and an index clone bound to
    # it) so the shared workload graph/index stay pristine for the
    # other configurations.
    base = graph.copy()
    service = QueryService(base, index.clone_for(base) if index else None,
                           seed=0)
    vertices = [f"n{i}" for i in range(graph.num_vertices)]
    labels = [f"l{i}" for i in range(graph.num_labels)]
    try:
        service.query_batch(specs, use_cache=False)  # warm-up
        swap_seconds = []
        post_swap_seconds = []
        for _ in range(rounds):
            batch = [
                (rng.choice(vertices), rng.choice(labels), rng.choice(vertices))
                for _ in range(20)
            ]
            started = time.perf_counter()
            service.apply_updates(batch)
            swap_seconds.append(time.perf_counter() - started)
            started = time.perf_counter()
            answered = service.query_batch(specs, use_cache=False)
            post_swap_seconds.append(time.perf_counter() - started)
        final_answers = [result.answer for result, _ in answered]
        fresh = QueryService(service.graph.copy(), seed=0)
        try:
            fresh_answers = [
                result.answer
                for result, _ in fresh.query_batch(specs, use_cache=False)
            ]
        finally:
            fresh.close()
        if final_answers != fresh_answers:
            raise SystemExit(
                "updates mode: post-swap answers disagree with a service "
                "built fresh on the mutated graph"
            )
        best = min(post_swap_seconds)
        return {
            "epochs": rounds,
            "queries": len(specs),
            "best_seconds": best,
            "qps": len(specs) / best,
            "mean_swap_seconds": sum(swap_seconds) / len(swap_seconds),
        }
    finally:
        service.close()


def bench_approx(config: dict, *, rounds: int, seed: int) -> dict:
    """The approx tier on the workload it exists for: sparse + repetitive.

    The dense hot-path graph is one giant SCC, so its bounds index can
    never refuse anything — this dimension instead builds a sparse
    graph (density 1.5: roughly two thirds of ordered pairs are
    label-blind unreachable) and draws the query stream from a small
    pool, so repeats hit the witness tier.  A routed service and an
    ``approx=False`` twin answer the same stream in exact mode, with an
    identical ``apply_updates`` batch applied to both between rounds
    (epoch swap: result caches rotate, witnesses re-verify and
    survive).  The harness asserts bit-identical answers every round —
    the tier's soundness claim under churn — and reports the
    short-circuit share plus an opt-in ``mode=approximate`` pass with
    ``recheck_rate=1.0`` so the recorded false rate is a full recount.
    """
    rng = random.Random(seed * 104729 + 13)
    vertices = config["vertices"]
    labels = config["labels"]
    graph = random_labeled_graph(
        vertices, 1.5, labels, rng=seed + 1, name="hotpath-approx"
    )
    label_names = [f"l{i}" for i in range(labels)]
    constraints = [
        "SELECT ?x WHERE { ?x <l0> ?y . ?x <l1> ?z . }",
        "SELECT ?x WHERE { ?x <l1> ?y . ?y <l0> ?z . }",
        "SELECT ?x WHERE { ?x <l2> ?y . ?x <l0> ?z . }",
    ]
    pool = [
        {
            "source": f"n{rng.randrange(vertices)}",
            "target": f"n{rng.randrange(vertices)}",
            "labels": rng.sample(label_names, rng.randint(2, 3)),
            "constraint": rng.choice(constraints),
        }
        for _ in range(max(8, config["queries"] // 3))
    ]
    specs = [rng.choice(pool) for _ in range(config["queries"])]
    vertex_names = [f"n{i}" for i in range(vertices)]
    routed = QueryService(graph.copy(), seed=0, approx_recheck=1.0)
    plain = QueryService(graph.copy(), seed=0, approx=False)
    try:
        routed.query_batch(specs, use_cache=False)  # warm-up (+ witnesses)
        plain.query_batch(specs, use_cache=False)
        routed_best = float("inf")
        plain_best = float("inf")
        approx_best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            routed_answers = routed.query_batch(specs, use_cache=False)
            routed_best = min(routed_best, time.perf_counter() - started)
            started = time.perf_counter()
            plain_answers = plain.query_batch(specs, use_cache=False)
            plain_best = min(plain_best, time.perf_counter() - started)
            if [r.answer for r, _ in routed_answers] != [
                r.answer for r, _ in plain_answers
            ]:
                raise SystemExit(
                    "approx mode: routed exact answers disagree with the "
                    "approx=False twin"
                )
            started = time.perf_counter()
            routed.query_batch(specs, use_cache=False, mode="approximate")
            approx_best = min(approx_best, time.perf_counter() - started)
            batch = [
                (rng.choice(vertex_names), rng.choice(label_names),
                 rng.choice(vertex_names))
                for _ in range(10)
            ]
            routed.apply_updates(batch)
            plain.apply_updates(batch)
        stats = routed.approx.stats()
        return {
            "workload": {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "distinct_queries": len(pool),
                "queries": len(specs),
                "rounds": rounds,
                "update_edges_per_round": 10,
            },
            "routed_exact": {
                "best_seconds": routed_best,
                "qps": len(specs) / routed_best,
            },
            "plain_exact": {
                "best_seconds": plain_best,
                "qps": len(specs) / plain_best,
            },
            "approximate_mode": {
                "best_seconds": approx_best,
                "qps": len(specs) / approx_best,
                "recheck_rate": stats["recheck_rate"],
                "false_rate": stats["false_rate"],
                "approximate_answers": stats["approximate_answers"],
            },
            "speedup": plain_best / routed_best,
            "short_circuit_rate": stats["short_circuit_rate"],
            "short_circuit_no": stats["short_circuit_no"],
            "short_circuit_yes": stats["short_circuit_yes"],
            "exact_fallthrough": stats["exact_fallthrough"],
            "bounds": routed.epoch.bounds.describe(),
        }
    finally:
        routed.close()
        plain.close()


def run(quick: bool, compare: bool, seed: int, shards: int = 0,
        updates: bool = False, approx: bool = False) -> dict:
    config = QUICK if quick else FULL
    graph, index, specs = build_workload(config, seed)
    frozen = graph.freeze()

    report = {
        "schema": SCHEMA_VERSION,
        "generated_by": "benchmarks/bench_hotpath.py",
        "mode": {"quick": quick, "compare": compare, "seed": seed,
                 "shards": shards, "updates": updates, "approx": approx},
        "workload": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
            "queries": len(specs),
            "rounds": config["rounds"],
            "landmarks": len(index.partition.landmarks),
        },
        "single_query": {},
        "service_batch": {},
    }

    queries = prepared_queries(specs)
    rounds = config["rounds"]
    combined: dict[str, float] = {"baseline": 0.0, "frozen": 0.0}
    for algorithm in ALGORITHMS:
        cell: dict = {}
        frozen_result = bench_single(
            frozen, index, queries, algorithm, rounds, cached=True
        )
        cell["frozen"] = frozen_result
        combined["frozen"] += frozen_result["best_seconds"]
        print(f"single/{algorithm:5s} frozen:     {frozen_result['qps']:9.1f} q/s")
        if compare:
            baseline = bench_single(
                graph, index, queries, algorithm, rounds, cached=False
            )
            dict_cached = bench_single(
                graph, index, queries, algorithm, rounds, cached=True
            )
            cell["baseline"] = baseline
            cell["dict_cached"] = dict_cached
            cell["speedup"] = frozen_result["qps"] / baseline["qps"]
            cell["csr_speedup"] = frozen_result["qps"] / dict_cached["qps"]
            combined["baseline"] += baseline["best_seconds"]
            print(
                f"single/{algorithm:5s} baseline:   {baseline['qps']:9.1f} q/s   "
                f"speedup {cell['speedup']:.2f}x"
            )
            print(
                f"single/{algorithm:5s} dict+cache: {dict_cached['qps']:9.1f} q/s   "
                f"csr alone {cell['csr_speedup']:.2f}x"
            )
            # Per-query agreement: a wrong-answer regression must fail
            # the run even if true/false flips happen to cancel out.
            if not (
                baseline["answers"]
                == dict_cached["answers"]
                == frozen_result["answers"]
            ):
                raise SystemExit(
                    f"{algorithm}: configurations disagree on per-query "
                    "answers (baseline vs dict+cache vs frozen)"
                )
        for result in cell.values():
            if isinstance(result, dict):
                result.pop("answers", None)
        report["single_query"][algorithm] = cell
    if compare:
        report["single_query"]["ins_uis_star_combined"] = {
            "speedup": combined["baseline"] / combined["frozen"],
        }
        print(
            "single/combined INS+UIS* speedup "
            f"{combined['baseline'] / combined['frozen']:.2f}x"
        )

    cell = {}
    frozen_result = bench_service(graph, index, specs, freeze=True,
                                  rounds=config["rounds"])
    cell["frozen"] = frozen_result
    print(f"service/batch frozen: {frozen_result['qps']:9.1f} q/s")
    if compare:
        dict_result = bench_service(graph, index, specs, freeze=False,
                                    rounds=config["rounds"])
        cell["dict"] = dict_result
        cell["speedup"] = frozen_result["qps"] / dict_result["qps"]
        print(
            f"service/batch dict:   {dict_result['qps']:9.1f} q/s "
            f"(frozen speedup {cell['speedup']:.2f}x)"
        )
        if frozen_result["answers"] != dict_result["answers"]:
            raise SystemExit(
                "service batch: frozen and dict services disagree on "
                "per-query answers"
            )
    if shards:
        sharded_result = bench_service(
            graph, index, specs, freeze=True, rounds=config["rounds"],
            shards=shards,
        )
        sharded_result["shards"] = shards
        cell["sharded"] = sharded_result
        cell["sharded_vs_unsharded"] = (
            sharded_result["qps"] / frozen_result["qps"]
        )
        print(
            f"service/batch sharded({shards}): {sharded_result['qps']:9.1f} q/s "
            f"(vs unsharded {cell['sharded_vs_unsharded']:.2f}x)"
        )
        if sharded_result["answers"] != frozen_result["answers"]:
            raise SystemExit(
                "service batch: sharded and unsharded services disagree on "
                "per-query answers"
            )
        remote_result = bench_service_remote(
            graph, index, specs, shards=shards, rounds=config["rounds"]
        )
        if remote_result["answers"] != frozen_result["answers"]:
            raise SystemExit(
                "service batch: remote-worker deployment disagrees with the "
                "unsharded service on per-query answers"
            )
        remote_result.pop("answers", None)
        remote_result["remote_vs_inprocess"] = (
            remote_result["qps"] / sharded_result["qps"]
        )
        sharded_result["remote"] = remote_result
        print(
            f"service/batch remote({shards}):  {remote_result['qps']:9.1f} q/s "
            f"(vs in-process {remote_result['remote_vs_inprocess']:.2f}x, "
            f"{remote_result['workers']} worker processes)"
        )
    if updates:
        updates_result = bench_updates(
            graph, index, specs, rounds=config["rounds"], seed=seed
        )
        cell["updates"] = updates_result
        cell["updates_vs_frozen"] = updates_result["qps"] / frozen_result["qps"]
        print(
            f"service/batch updates: {updates_result['qps']:9.1f} q/s post-swap "
            f"({updates_result['epochs']} epochs, mean swap "
            f"{updates_result['mean_swap_seconds'] * 1000:.1f}ms, vs frozen "
            f"{cell['updates_vs_frozen']:.2f}x)"
        )
    for result in (cell.get("frozen"), cell.get("dict"), cell.get("sharded")):
        if result is not None:
            result.pop("answers", None)
    report["service_batch"] = cell
    if approx:
        approx_cell = bench_approx(config, rounds=config["rounds"], seed=seed)
        report["approx"] = approx_cell
        print(
            f"approx/routed exact:  {approx_cell['routed_exact']['qps']:9.1f} q/s "
            f"(vs plain {approx_cell['speedup']:.2f}x, short-circuit rate "
            f"{approx_cell['short_circuit_rate']:.0%})"
        )
        print(
            f"approx/approximate:   {approx_cell['approximate_mode']['qps']:9.1f} q/s "
            f"(false rate {approx_cell['approximate_mode']['false_rate']:.3f} "
            f"at recheck 1.0)"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--compare", action="store_true",
                        help="also measure the dict-backed baseline and speedups")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="also run the batched workload through a ShardedQueryService "
        "with N in-process shard workers (0 = skip)",
    )
    parser.add_argument(
        "--updates", action="store_true",
        help="also run a mixed read/update phase (apply_updates epoch swaps "
        "interleaved with query batches) and record post-swap throughput",
    )
    parser.add_argument(
        "--approx", action="store_true",
        help="also bench the approx tier on a sparse repetitive workload "
        "(routed vs approx=False twin, plus an opt-in approximate-mode "
        "pass with full recheck accounting)",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_hotpath.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    report = run(args.quick, args.compare, args.seed, args.shards,
                 args.updates, args.approx)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
