"""Factory for the Figures 10-14 benchmark modules.

The five constraint figures differ only in the Table 3 constraint they
evaluate; each ``bench_fig1X_*.py`` module calls
:func:`build_figure_benchmarks` and re-exports the generated test
functions, so the per-figure files stay declarative while pytest still
collects one named benchmark per (figure, algorithm, group).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import render_results, run_experiment

from benchmarks._support import answer_group, figure_workload, make_algorithm
from benchmarks.conftest import PYTEST_SCALE, record_tables

BENCH_DATASET = "D2"
ALGORITHMS = ("UIS", "UIS*", "INS")


def build_figure_benchmarks(figure: str, constraint_name: str) -> dict:
    """Return the test callables for one constraint figure."""

    @pytest.mark.parametrize("algorithm_name", ALGORITHMS)
    @pytest.mark.parametrize("group", ["true", "false"])
    def test_query_group(benchmark, algorithm_name, group):
        workload = figure_workload(BENCH_DATASET, constraint_name)
        queries = workload.true_queries if group == "true" else workload.false_queries
        if not queries:
            pytest.skip(f"no {group} queries generated for {constraint_name}")
        algorithm = make_algorithm(algorithm_name, BENCH_DATASET)
        true_count = benchmark(answer_group, algorithm, queries)
        expected = sum(1 for q in queries if q.expected)
        assert true_count == expected

    def test_report(benchmark):
        results = benchmark.pedantic(
            lambda: run_experiment(figure, PYTEST_SCALE, seed=0),
            rounds=1,
            iterations=1,
        )
        record_tables(render_results(results))
        assert len(results) == 4

    prefix = f"test_{figure}"
    return {
        f"{prefix}_query_group": test_query_group,
        f"{prefix}_report": test_report,
    }
