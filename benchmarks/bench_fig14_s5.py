"""Figure 14 — LSCR queries under the Table 3 constraint S5 on D1-D5.

Generated from the shared factory; see benchmarks/_figure_bench.py.
"""

from benchmarks._figure_bench import build_figure_benchmarks

globals().update(build_figure_benchmarks("fig14", "S5"))
