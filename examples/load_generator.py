"""Configurable load driver for a running LSCR query service.

Hammers an HTTP endpoint with ``--clients`` concurrent threads for
``--duration`` seconds, then prints per-endpoint throughput and
client-side latency percentiles (p50/p90/p99) — the numbers that size a
thread pool (``serve --workers``) or a shard count (``serve --shards``).
Each client alternates ``POST /query`` and ``POST /batch`` requests
(ratio set by ``--batch-every``), cycling a workload of specs with the
result cache bypassed so every request does real work.

Two ways to point it at a server:

* **self-contained** (default) — generates a random graph, starts an
  in-process server on an ephemeral port, drives it, and shuts it down;
  add ``--shards N`` to size the sharded topology instead:

      python examples/load_generator.py --clients 8 --duration 5
      python examples/load_generator.py --clients 8 --shards 4

* **external** — drive an already-running server (the specs must match
  its graph; ``--spec-file`` takes a JSON array of query specs, e.g.
  written by your own tooling):

      python -m repro serve --graph g.tsv --port 8080 &
      python examples/load_generator.py --url http://127.0.0.1:8080 \\
          --spec-file specs.json --clients 16 --duration 10
"""

from __future__ import annotations

import argparse
import json
import math
import re
import threading
import time
import urllib.error
import urllib.request
from collections import defaultdict

PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

_LE_LABEL = re.compile(r'le="([^"]+)"')
_ENDPOINT_QUERY = re.compile(r'endpoint="query"')
_RESULT_CACHE = re.compile(r'cache="result"')


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (fraction in (0, 1])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def post(base: str, path: str, payload: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def scrape_metrics(base: str) -> dict[str, float] | None:
    """``GET /metrics`` → ``{sample-key: value}``, or None when the
    server has no metrics route (pre-observability builds).

    Kept deliberately tiny and inline — ``--url`` mode drives servers on
    other machines, so the script must not depend on the repro package.
    The key is the raw ``name{labels}`` prefix of each sample line,
    which is stable across scrapes of the same server.
    """
    try:
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            text = response.read().decode("utf-8")
    except Exception:
        return None
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        if not key:
            continue
        try:
            samples[key] = math.inf if raw == "+Inf" else float(raw)
        except ValueError:
            continue
    return samples


def _metric_delta(delta: dict[str, float], name: str) -> float:
    """Sum the delta across every label set of one metric family."""
    return sum(
        value for key, value in delta.items()
        if key == name or key.startswith(name + "{")
    )


def _histogram_p99(delta: dict[str, float]) -> float | None:
    """p99 (ms) of the query-endpoint latency histogram *delta* — the
    distribution of just this run's requests, not the server's lifetime."""
    buckets: dict[float, float] = defaultdict(float)
    for key, value in delta.items():
        if not key.startswith("repro_request_latency_seconds_bucket{"):
            continue
        if not _ENDPOINT_QUERY.search(key):
            continue
        match = _LE_LABEL.search(key)
        if match is None:
            continue
        le = match.group(1)
        bound = math.inf if le == "+Inf" else float(le)
        buckets[bound] += value
    if not buckets:
        return None
    ordered = sorted(buckets.items())
    total = ordered[-1][1]          # the +Inf bucket is cumulative: all
    if total <= 0:
        return None
    rank = math.ceil(0.99 * total)
    for bound, cumulative in ordered:
        if cumulative >= rank:
            return bound * 1000.0 if bound != math.inf else float("inf")
    return None


def report_server_delta(
    before: dict[str, float] | None, after: dict[str, float] | None
) -> None:
    """Server-side numbers for this run, from the /metrics scrape pair."""
    if before is None or after is None:
        print("\nserver-side: /metrics unavailable — skipping server report")
        return
    delta = {key: after[key] - before.get(key, 0.0) for key in after}
    queries = _metric_delta(delta, "repro_queries_total")
    cached = _metric_delta(delta, "repro_queries_cached_total")
    hits = sum(
        value for key, value in delta.items()
        if key.startswith("repro_cache_hits_total{")
        and _RESULT_CACHE.search(key)
    )
    misses = sum(
        value for key, value in delta.items()
        if key.startswith("repro_cache_misses_total{")
        and _RESULT_CACHE.search(key)
    )
    probes = hits + misses
    hit_ratio = hits / probes if probes else 0.0
    p99 = _histogram_p99(delta)
    p99_text = f"{p99:.2f} ms" if p99 is not None else "n/a"
    print(
        f"\nserver-side (from /metrics deltas): {queries:.0f} queries, "
        f"{cached:.0f} cache-answered, result-cache hit ratio "
        f"{hit_ratio:.1%}, query p99={p99_text}"
    )
    routed = _metric_delta(delta, "repro_approx_routed_total")
    if routed:
        # The approx tier's share of this run, not the server's lifetime.
        no = _metric_delta(delta, "repro_approx_short_circuit_no_total")
        yes = _metric_delta(delta, "repro_approx_short_circuit_yes_total")
        guessed = _metric_delta(delta, "repro_approx_answers_total")
        rechecks = _metric_delta(delta, "repro_approx_rechecks_total")
        mismatches = _metric_delta(
            delta, "repro_approx_recheck_mismatches_total"
        )
        false_text = (
            f"{mismatches / rechecks:.1%} of {rechecks:.0f} rechecks"
            if rechecks else "n/a"
        )
        print(
            f"  approx tier: {routed:.0f} routed, "
            f"short-circuit rate {(no + yes) / routed:.1%} "
            f"(No={no:.0f}, Yes={yes:.0f}), "
            f"{guessed:.0f} approximate answers, "
            f"observed false rate {false_text}"
        )


def default_specs(num_vertices: int, num_labels: int) -> list[dict]:
    """A mixed workload over the self-contained random graph."""
    labels = [f"l{i}" for i in range(num_labels)]
    constraints = [
        "SELECT ?x WHERE { ?x <l0> ?y . }",
        "SELECT ?x WHERE { ?x <l1> ?y . ?x <l0> ?z . }",
        f"SELECT ?x WHERE {{ ?x <l0> n{num_vertices // 2} . }}",
    ]
    specs = []
    for position in range(48):
        specs.append(
            {
                "source": f"n{(position * 7) % num_vertices}",
                "target": f"n{(position * 13 + 5) % num_vertices}",
                "labels": labels[: 2 + position % (num_labels - 1)],
                "constraint": constraints[position % len(constraints)],
            }
        )
    return specs


class LoadStats:
    """Latency samples per endpoint, merged across client threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies: dict[str, list[float]] = defaultdict(list)
        self.requests: dict[str, int] = defaultdict(int)
        self.queries: dict[str, int] = defaultdict(int)
        self.rejected: dict[str, int] = defaultdict(int)
        self.errors = 0

    def record(self, endpoint: str, seconds: float, queries: int) -> None:
        with self._lock:
            self.latencies[endpoint].append(seconds)
            self.requests[endpoint] += 1
            self.queries[endpoint] += queries

    def record_rejected(self, kind: str) -> None:
        """A structured refusal (504/503/429) — expected under faults."""
        with self._lock:
            self.rejected[kind] += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1


def client_loop(
    base: str,
    specs: list[dict],
    stats: LoadStats,
    stop_at: float,
    batch_every: int,
    batch_size: int,
    offset: int,
    deadline_ms: float | None = None,
    mode: str | None = None,
) -> None:
    position = offset  # stagger clients so they don't lockstep the cache
    params = []
    if deadline_ms:
        params.append(f"deadline_ms={deadline_ms:g}")
    if mode:
        params.append(f"mode={mode}")
    suffix = "?" + "&".join(params) if params else ""
    while time.perf_counter() < stop_at:
        if batch_every and position % batch_every == 0:
            chunk = [
                specs[(position + i) % len(specs)] for i in range(batch_size)
            ]
            payload = {"queries": chunk, "use_cache": False}
            endpoint, path, count = "batch", "/batch", len(chunk)
        else:
            payload = {**specs[position % len(specs)], "use_cache": False}
            endpoint, path, count = "query", "/query", 1
        started = time.perf_counter()
        try:
            post(base, path + suffix, payload)
        except urllib.error.HTTPError as error:
            # Structured refusals — deadline-exceeded, shard-unavailable,
            # overloaded — are the server degrading as designed; count
            # them by kind instead of lumping them with real failures.
            kind = None
            if error.code in (429, 503, 504):
                try:
                    body = json.loads(error.read())
                    kind = body["error"]["type"]
                except Exception:
                    kind = None
            if kind is not None:
                stats.record_rejected(kind)
            else:
                stats.record_error()
        except Exception:
            stats.record_error()
        else:
            stats.record(endpoint, time.perf_counter() - started, count)
        position += 1


def run_load(
    base: str,
    specs: list[dict],
    clients: int,
    duration: float,
    batch_every: int,
    batch_size: int,
    deadline_ms: float | None = None,
    mode: str | None = None,
) -> LoadStats:
    stats = LoadStats()
    stop_at = time.perf_counter() + duration
    threads = [
        threading.Thread(
            target=client_loop,
            args=(base, specs, stats, stop_at, batch_every, batch_size,
                  position * 17, deadline_ms, mode),
            daemon=True,
        )
        for position in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats.wall = time.perf_counter() - started  # type: ignore[attr-defined]
    return stats


def report(stats: LoadStats, clients: int) -> None:
    wall = getattr(stats, "wall", 0.0) or 1e-9
    total_requests = sum(stats.requests.values())
    total_queries = sum(stats.queries.values())
    print(
        f"\n{clients} client(s), {wall:.1f}s wall: "
        f"{total_requests} requests ({total_requests / wall:.1f} req/s), "
        f"{total_queries} queries ({total_queries / wall:.1f} q/s), "
        f"{stats.errors} error(s)"
    )
    if stats.rejected:
        rejected = ", ".join(
            f"{kind}={count}" for kind, count in sorted(stats.rejected.items())
        )
        print(f"  structured refusals: {rejected}")
    for endpoint in sorted(stats.latencies):
        samples = [value * 1000.0 for value in stats.latencies[endpoint]]
        line = "  ".join(
            f"{name}={percentile(samples, fraction):.2f} ms"
            for name, fraction in PERCENTILES
        )
        print(
            f"  {endpoint:6s} {stats.requests[endpoint]:6d} requests   "
            f"{line}  max={max(samples):.2f} ms"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="drive a running server instead of self-hosting")
    parser.add_argument("--spec-file", default=None,
                        help="JSON array of query specs (required with --url)")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of sustained load")
    parser.add_argument("--batch-every", type=int, default=4,
                        help="every Nth request is a batch (0 = never)")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--shards", type=int, default=0,
                        help="self-contained mode: shard count (0 = unsharded)")
    parser.add_argument("--vertices", type=int, default=400,
                        help="self-contained mode: graph size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="send ?deadline_ms= with every request and "
                        "count structured 504/503/429 refusals separately")
    parser.add_argument("--mode", choices=("exact", "approximate"),
                        default=None,
                        help="send ?mode= with every request (approximate "
                        "drives the server's bounded-answer tier)")
    args = parser.parse_args(argv)

    if args.url is not None:
        if args.spec_file is None:
            parser.error("--url needs --spec-file (specs must match its graph)")
        with open(args.spec_file) as handle:
            specs = json.load(handle)
        print(f"driving {args.url} with {len(specs)} specs ...")
        before = scrape_metrics(args.url)
        stats = run_load(args.url, specs, args.clients, args.duration,
                         args.batch_every, args.batch_size,
                         deadline_ms=args.deadline_ms, mode=args.mode)
        report(stats, args.clients)
        report_server_delta(before, scrape_metrics(args.url))
        return 0

    # Self-contained: generate, serve in-process, drive, tear down.
    from repro.datasets.synthetic import random_labeled_graph
    from repro.service.app import QueryService
    from repro.service.http import create_server
    from repro.shard import ShardedQueryService

    num_labels = 6
    print(f"generating random graph (|V|={args.vertices}, |L|={num_labels}) ...")
    graph = random_labeled_graph(args.vertices, 4.0, num_labels, rng=args.seed,
                                 name="loadgen")
    if args.shards:
        service = ShardedQueryService(graph, seed=args.seed, shards=args.shards)
        print(f"serving sharded ({args.shards} in-process workers)")
    else:
        service = QueryService(graph, seed=args.seed)
        print("serving unsharded")
    server = create_server(service, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"server on {base}; driving {args.clients} client(s) "
          f"for {args.duration:.1f}s ...")
    try:
        before = scrape_metrics(base)
        stats = run_load(base, default_specs(args.vertices, num_labels),
                         args.clients, args.duration,
                         args.batch_every, args.batch_size,
                         deadline_ms=args.deadline_ms, mode=args.mode)
        report(stats, args.clients)
        # The server's own view of the same run, for cross-checking the
        # client-side numbers — scraped over /metrics like production
        # monitoring would, not read from in-process state.
        report_server_delta(before, scrape_metrics(base))
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
