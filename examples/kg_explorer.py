"""Exploring a scale-free KG: random constraints and index persistence.

Mirrors the paper's Section 6.2 setup: generate a YAGO-like scale-free
knowledge graph, grow random substructure constraints whose
satisfying-set size hits a target order of magnitude, persist the local
index to disk, and answer reachability questions after reloading it —
the workflow a downstream user of this library would follow for a real
RDF dump.

Run:  python examples/kg_explorer.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import INS, LSCRQuery, UIS
from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.graph.stats import graph_stats
from repro.index import build_local_index, load_local_index, save_local_index
from repro.workloads import random_constraint_with_magnitude


def main() -> None:
    graph = generate_yago_like(YagoConfig(num_entities=1200), rng=0)
    stats = graph_stats(graph)
    print(f"KG: {stats.describe()}")
    print(f"Top labels: {list(sorted(stats.label_counts, key=stats.label_counts.get, reverse=True))[:5]}\n")

    # Build once, persist, reload — the index is a plain JSON document.
    index = build_local_index(graph, k=max(4, graph.num_vertices // 48), rng=1)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "yago.index.json"
        size = save_local_index(index, path)
        print(f"Index saved to disk: {size / 1024:.1f} KiB")
        index = load_local_index(path, graph)
    print(f"Index reloaded: {index.stats().total_entries} entries\n")

    # Grow constraints at three magnitudes (Section 6.2 protocol).
    for magnitude in (10, 50, 200):
        generated = random_constraint_with_magnitude(graph, magnitude, rng=magnitude)
        print(f"target |V(S,G)| ≈ {magnitude:4d}  ->  got {generated.cardinality:4d}")
        print(f"  S = {generated.constraint.to_sparql()}")

        # Ask reachability questions through that constraint, scanning a
        # few entity pairs so at least one positive chain shows up.
        labels = [label for label in graph.labels if label.startswith("yago:")]
        uis = UIS(graph)
        ins = INS(graph, index)
        shown = 0
        for offset in range(0, 900, 90):
            source = f"yago:e{offset}"
            target = f"yago:e{offset + 37}"
            query = LSCRQuery.create(source, target, labels, generated.constraint)
            uis_result = uis.answer(query)
            ins_result = ins.answer(query)
            assert uis_result.answer == ins_result.answer
            if uis_result.answer or shown == 0:
                print(
                    f"  {source} -> {target}: answer={uis_result.answer}  "
                    f"UIS {uis_result.seconds * 1000:.2f} ms vs "
                    f"INS {ins_result.seconds * 1000:.2f} ms "
                    f"(index resolutions: {ins_result.index_resolutions})"
                )
                shown += 1
            if shown >= 2:
                break
        print()


if __name__ == "__main__":
    main()
