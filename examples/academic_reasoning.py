"""Academic-domain reasoning on a LUBM-like knowledge graph.

Generates a university KG (the substrate of the paper's Figures 10–14),
poses the Table 3 substructure constraints S1–S5, and answers reasoning
questions such as "can influence flow from this undergraduate to that
professor through someone interested in Research12?" with UIS, UIS* and
INS side by side.

Run:  python examples/academic_reasoning.py
"""

from __future__ import annotations

import random

from repro import INS, UIS, UISStar
from repro.bench.measure import run_query_group
from repro.datasets.lubm import ALL_CONSTRAINTS, constraint, generate_lubm
from repro.index import build_local_index
from repro.workloads import generate_workload


def main() -> None:
    graph = generate_lubm(departments=10, rng=0, name="campus")
    print(f"University KG: {graph}")
    print(f"Labels: {', '.join(sorted(graph.labels))}\n")

    print("Table 3 constraint selectivities on this graph:")
    for name, text in ALL_CONSTRAINTS.items():
        count = len(constraint(name).satisfying_vertices(graph))
        print(f"  {name}: |V(S,G)| = {count:4d}   {text[:68]}...")
    print()

    index = build_local_index(graph, k=max(4, graph.num_vertices // 48), rng=1)
    stats = index.stats()
    print(
        f"Local index: {stats.num_landmarks} landmarks, "
        f"{stats.total_entries} entries, built in {stats.build_seconds:.2f}s\n"
    )

    algorithms = [
        UIS(graph),
        UISStar(graph, rng=random.Random(2)),
        INS(graph, index, rng=random.Random(3)),
    ]

    for name in ("S1", "S3", "S5"):
        workload = generate_workload(
            graph, constraint(name), num_true=5, num_false=5, rng=4
        )
        print(
            f"--- {name}: {len(workload.true_queries)} true / "
            f"{len(workload.false_queries)} false generated queries ---"
        )
        for group_name, queries in (
            ("true", workload.true_queries),
            ("false", workload.false_queries),
        ):
            if not queries:
                continue
            aggregates = run_query_group(algorithms, queries)
            row = "  ".join(
                f"{algo}: {aggregates[algo].mean_milliseconds:7.2f} ms"
                for algo in ("UIS", "UIS*", "INS")
            )
            print(f"  {group_name:5s}  {row}")
        print()


if __name__ == "__main__":
    main()
