"""End-to-end demo of the LSCR query service over real HTTP.

Generates a LUBM-like dataset, warm-starts a :class:`QueryService` from
TSV + persisted index files (building and saving the index on first
run), binds the stdlib HTTP server to an ephemeral port, and exercises
every endpoint the way an external client would — ``GET /healthz``,
``POST /query`` (twice, to show the result cache), ``POST /batch``, and
``GET /stats``.

Run:  python examples/service_client.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.datasets.lubm import generate_dataset
from repro.datasets.lubm.queries import S1
from repro.graph.io import dump_tsv
from repro.service.app import QueryService
from repro.service.http import create_server

PROFESSOR = "Department0.University0/FullProfessor0"
UNIVERSITY = "University0"
LABELS = ["ub:worksFor", "ub:subOrganizationOf"]
HEAD_OF = "SELECT ?x WHERE { ?x <ub:headOf> ?y . }"


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    graph_path = workdir / "d0.tsv"
    index_path = workdir / "d0.index.json"

    print("generating LUBM-like dataset D0 ...")
    graph = generate_dataset("D0", rng=0)
    dump_tsv(graph, graph_path)

    print(f"warm-starting service from {graph_path.name} (+ building index) ...")
    service = QueryService.from_files(graph_path, index_path, seed=0)
    server = create_server(service, "127.0.0.1", 0)  # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"service listening on {base}\n")

    health = get(base, "/healthz")
    print(f"GET /healthz -> {health}\n")

    query = {
        "source": PROFESSOR,
        "target": UNIVERSITY,
        "labels": LABELS,
        "constraint": HEAD_OF,
    }
    first = post(base, "/query", query)
    print(f"POST /query  {PROFESSOR} -> {UNIVERSITY}")
    print(f"  answer={first['answer']} algorithm={first['algorithm']} "
          f"cached={first['cached']} ({first['seconds'] * 1000:.2f} ms)")
    second = post(base, "/query", query)
    print(f"  repeated:  answer={second['answer']} cached={second['cached']}\n")

    batch = post(base, "/batch", {
        "queries": [
            query,
            # Same endpoints, Table 3's S1 as the substructure constraint.
            {**query, "constraint": S1},
            # A label set the LUBM graph lacks: trivially false, no search.
            {**query, "labels": ["no-such-label"]},
            # An unknown vertex: also trivially false.
            {**query, "source": "Nowhere0"},
        ]
    })
    print(f"POST /batch ({batch['count']} queries)")
    for position, entry in enumerate(batch["results"]):
        print(f"  [{position}] answer={entry['answer']} cached={entry['cached']} "
              f"trivial={entry['trivial']} ({entry['reason']})")

    stats = get(base, "/stats")
    queries = stats["service"]["queries"]
    cache = stats["result_cache"]
    print("\nGET /stats")
    print(f"  queries: total={queries['total']} executed={queries['executed']} "
          f"cached={queries['cached']} trivial={queries['trivial']}")
    print(f"  result cache: hits={cache['hits']} misses={cache['misses']} "
          f"hit_rate={cache['hit_rate']:.2f}")
    for name, cell in stats["service"]["algorithms"].items():
        print(f"  {name}: {cell['count']} queries, "
              f"mean {cell['mean_milliseconds']:.2f} ms")

    server.shutdown()
    server.server_close()
    print("\ndone; server stopped.")


if __name__ == "__main__":
    main()
