"""End-to-end demo of the multi-tenant LSCR query service over real HTTP.

Generates two datasets — a LUBM-like graph and a small random graph —
hosts both in one process behind a :class:`TenantRegistry` (the LUBM
graph as the default tenant, warm-started from TSV + persisted index
files; the random graph registered lazily by path), binds the stdlib
HTTP server to an ephemeral port, and exercises every endpoint the way
an external client would: ``GET /healthz`` and ``GET /tenants`` for the
cross-tenant view, ``POST /query`` (twice, to show the result cache),
``POST /t/<tenant>/query`` for the second tenant, a third tenant
registered at runtime via ``POST /tenants``, ``POST /batch``, and
``GET /stats`` with its aggregated totals.

Run:  python examples/service_client.py
"""

from __future__ import annotations

import json
import math
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.datasets.lubm import generate_dataset
from repro.datasets.lubm.queries import S1
from repro.datasets.synthetic import random_labeled_graph
from repro.graph.io import dump_tsv
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.service.registry import TenantRegistry

PROFESSOR = "Department0.University0/FullProfessor0"
UNIVERSITY = "University0"
LABELS = ["ub:worksFor", "ub:subOrganizationOf"]
HEAD_OF = "SELECT ?x WHERE { ?x <ub:headOf> ?y . }"


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (fraction in (0, 1])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    graph_path = workdir / "d0.tsv"
    index_path = workdir / "d0.index.json"
    random_path = workdir / "random.tsv"
    extra_path = workdir / "extra.tsv"

    print("generating LUBM-like dataset D0 + a random tenant graph ...")
    dump_tsv(generate_dataset("D0", rng=0), graph_path)
    dump_tsv(random_labeled_graph(60, 2.0, 4, rng=1, name="random"), random_path)
    dump_tsv(random_labeled_graph(40, 1.5, 3, rng=2, name="extra"), extra_path)

    print(f"warm-starting default tenant from {graph_path.name} (+ index) ...")
    registry = TenantRegistry()
    registry.add("default", QueryService.from_files(graph_path, index_path, seed=0))
    # The second tenant is registered by path only: the graph loads and
    # its index builds lazily, on the first request that names it.
    registry.register_files("random", random_path, seed=0)
    server = create_server(registry, "127.0.0.1", 0)  # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"service listening on {base}\n")

    tenants = get(base, "/tenants")
    print(f"GET /tenants -> {tenants['count']} tenant(s), "
          f"default={tenants['default_tenant']}")
    for name, entry in tenants["tenants"].items():
        print(f"  {name}: loaded={entry['loaded']}")

    query = {
        "source": PROFESSOR,
        "target": UNIVERSITY,
        "labels": LABELS,
        "constraint": HEAD_OF,
    }
    first = post(base, "/query", query)
    print(f"\nPOST /query  {PROFESSOR} -> {UNIVERSITY}   (default tenant)")
    print(f"  answer={first['answer']} algorithm={first['algorithm']} "
          f"cached={first['cached']} ({first['seconds'] * 1000:.2f} ms)")
    second = post(base, "/query", query)
    print(f"  repeated:  answer={second['answer']} cached={second['cached']}")

    # The same process answers for a completely different graph, with a
    # different label alphabet, behind /t/random/ — first query triggers
    # the lazy warm start.
    random_query = {
        "source": "n0", "target": "n1",
        "labels": ["l0", "l1", "l2", "l3"],
        "constraint": "SELECT ?x WHERE { ?x <l0> ?y . }",
    }
    entry = post(base, "/t/random/query", random_query)
    print(f"\nPOST /t/random/query  n0 -> n1   (lazy tenant)")
    print(f"  answer={entry['answer']} algorithm={entry['algorithm']} "
          f"({entry['reason']})")

    registered = post(base, "/tenants", {"name": "extra", "graph": str(extra_path)})
    print(f"\nPOST /tenants -> registered {registered['registered']!r} at runtime")
    entry = post(base, "/t/extra/query", {**random_query, "labels": ["l0", "l1"]})
    print(f"  POST /t/extra/query -> answer={entry['answer']}")

    batch = post(base, "/batch", {
        "queries": [
            query,
            # Same endpoints, Table 3's S1 as the substructure constraint.
            {**query, "constraint": S1},
            # A label set the LUBM graph lacks: trivially false, no search.
            {**query, "labels": ["no-such-label"]},
            # An unknown vertex: also trivially false.
            {**query, "source": "Nowhere0"},
        ]
    })
    print(f"\nPOST /batch ({batch['count']} queries, default tenant)")
    for position, item in enumerate(batch["results"]):
        print(f"  [{position}] answer={item['answer']} cached={item['cached']} "
              f"trivial={item['trivial']} ({item['reason']})")

    # Manual load probe: a larger batch cycling the specs above with the
    # result cache bypassed, so every answer is a real execution and the
    # per-query `seconds` telemetry gives a latency distribution.
    probe_specs = [
        spec
        for _ in range(12)
        for spec in (query, {**query, "constraint": S1})
    ]
    probe = post(base, "/batch", {"queries": probe_specs, "use_cache": False})
    latencies = [item["seconds"] * 1000.0 for item in probe["results"]]
    print(f"\nPOST /batch load probe ({probe['count']} uncached queries)")
    print(
        f"  per-query latency: p50={percentile(latencies, 0.50):.2f} ms  "
        f"p90={percentile(latencies, 0.90):.2f} ms  "
        f"p99={percentile(latencies, 0.99):.2f} ms  "
        f"max={max(latencies):.2f} ms"
    )

    health = get(base, "/healthz")
    print(f"\nGET /healthz -> status={health['status']} "
          f"tenants={health['tenant_count']} loaded={health['tenants_loaded']} "
          f"total |V|={health['totals']['vertices']}")

    stats = get(base, "/stats")
    queries = stats["service"]["queries"]            # the default tenant
    totals = stats["totals"]["queries"]              # every tenant merged
    cache = stats["result_cache"]
    print("GET /stats")
    print(f"  default tenant: total={queries['total']} "
          f"executed={queries['executed']} cached={queries['cached']} "
          f"trivial={queries['trivial']}")
    print(f"  cross-tenant totals: total={totals['total']} "
          f"executed={totals['executed']}")
    print(f"  result cache: hits={cache['hits']} misses={cache['misses']} "
          f"hit_rate={cache['hit_rate']:.2f}")
    for name, cell in stats["totals"]["algorithms"].items():
        print(f"  {name}: {cell['count']} queries, "
              f"mean {cell['mean_milliseconds']:.2f} ms")

    server.shutdown()
    server.server_close()
    print("\ndone; server stopped.")


if __name__ == "__main__":
    main()
