"""Quickstart: the paper's running example end to end.

Builds the Figure 3 knowledge graph, expresses the substructure
constraint S0 as SPARQL, and answers the paper's example LSCR queries
with all four algorithms — including the recall case that plain DFS/BFS
cannot handle.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import INS, LSCRQuery, NaiveTwoProcedure, UIS, UISStar
from repro.datasets.toy import figure3_constraint, figure3_graph
from repro.index import build_local_index


def main() -> None:
    graph = figure3_graph()
    constraint = figure3_constraint()

    print(f"Graph: {graph}")
    print("Edges:")
    for source, label, target in sorted(graph.edges_named()):
        print(f"  {source} --{label}--> {target}")
    print(f"\nSubstructure constraint S0: {constraint.to_sparql()}")

    satisfying = [graph.name_of(v) for v in constraint.satisfying_vertices(graph)]
    print(f"V(S0, G0) = {sorted(satisfying)}   (the paper: {{v1, v2}})\n")

    index = build_local_index(graph, k=2, rng=0)
    algorithms = [
        NaiveTwoProcedure(graph),
        UIS(graph),
        UISStar(graph),
        INS(graph, index),
    ]

    cases = [
        ("v0", "v4", ["likes", "follows"], "Section 2: true"),
        ("v0", "v3", ["likes", "follows"], "Section 2: false"),
        ("v3", "v4", ["likes", "hates", "friendOf"], "Section 3: needs recall"),
    ]
    for source, target, labels, note in cases:
        query = LSCRQuery.create(source, target, labels, constraint)
        print(f"Q = ({source} -> {target}, L={labels})   [{note}]")
        for algorithm in algorithms:
            result = algorithm.answer(query)
            print(
                f"  {algorithm.name:6s} answer={str(result.answer):5s} "
                f"passed_vertices={result.passed_vertices:2d} "
                f"time={result.seconds * 1000:.3f} ms"
            )
        print()


if __name__ == "__main__":
    main()
