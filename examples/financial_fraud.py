"""Financial crime detection — the paper's Figure 1 scenario, scaled up.

Models a transaction knowledge graph: people transfer money (edges
labeled by occurrence month) and hold social relationships (marriedTo,
friendOf, parentOf).  The investigation question from the paper's
introduction — "is there an indirect transaction from suspect C to
suspect P inside April 2019 whose middleman is married to Amy?" — is an
LSCR query: label constraint = the allowed months, substructure
constraint = the marriage pattern.

The script generates a few hundred accounts with decoy paths and shows
how the same query template screens candidate suspects.

Run:  python examples/financial_fraud.py
"""

from __future__ import annotations

import random

from repro import INS, LSCRQuery, UIS, find_witness
from repro.constraints import SubstructureConstraint
from repro.graph import GraphBuilder
from repro.index import build_local_index

MONTHS = ["2019-03", "2019-04", "2019-05"]


def build_transaction_graph(accounts: int = 300, seed: int = 7):
    """A synthetic transfer network with one planted April-2019 chain."""
    rng = random.Random(seed)
    builder = GraphBuilder("transactions")
    builder.declare_class("Person")
    people = [f"acct{i}" for i in range(accounts)]
    for person in people:
        builder.typed(person, "Person")

    # Background noise: random transfers in random months.
    for _ in range(accounts * 4):
        source, target = rng.sample(people, 2)
        builder.edge(source, rng.choice(MONTHS), target)

    # Some marriages (including Amy's).
    builder.typed("Amy", "Person")
    spouse_of_amy = people[42]
    builder.edge(spouse_of_amy, "marriedTo", "Amy")
    builder.edge("Amy", "marriedTo", spouse_of_amy)
    for _ in range(20):
        a, b = rng.sample(people, 2)
        builder.edge(a, "marriedTo", b)
        builder.edge(b, "marriedTo", a)

    # The planted chain: C -> ... -> spouse_of_amy -> ... -> P in April.
    builder.edge("suspectC", "2019-04", people[10])
    builder.edge(people[10], "2019-04", spouse_of_amy)
    builder.edge(spouse_of_amy, "2019-04", people[77])
    builder.edge(people[77], "2019-04", "suspectP")
    builder.typed("suspectC", "Person")
    builder.typed("suspectP", "Person")

    # A decoy chain that leaves April midway.
    builder.edge("suspectC", "2019-04", people[100])
    builder.edge(people[100], "2019-03", "suspectP")

    return builder.build(), spouse_of_amy


def main() -> None:
    graph, spouse = build_transaction_graph()
    print(f"Transaction KG: {graph}")
    print(f"(planted middleman married to Amy: {spouse})\n")

    married_to_amy = SubstructureConstraint.from_sparql(
        "SELECT ?x WHERE { ?x <marriedTo> Amy . }"
    )

    index = build_local_index(graph, k=max(4, graph.num_vertices // 48), rng=1)
    uis = UIS(graph)
    ins = INS(graph, index)

    investigations = [
        ("suspectC", "suspectP", ["2019-04"], "April 2019 only"),
        ("suspectC", "suspectP", ["2019-03"], "March 2019 only"),
        ("suspectC", "suspectP", ["2019-03", "2019-05"], "excluding April"),
    ]
    for source, target, months, note in investigations:
        query = LSCRQuery.create(source, target, months, married_to_amy)
        uis_result = uis.answer(query)
        ins_result = ins.answer(query)
        assert uis_result.answer == ins_result.answer
        verdict = "SUSPICIOUS CHAIN FOUND" if uis_result.answer else "clean"
        print(f"{note:18s}: {verdict}")
        print(
            f"{'':20s}UIS {uis_result.seconds * 1000:7.2f} ms "
            f"({uis_result.passed_vertices} vertices), "
            f"INS {ins_result.seconds * 1000:7.2f} ms "
            f"({ins_result.passed_vertices} vertices)"
        )
        if uis_result.answer:
            witness = find_witness(graph, query)
            assert witness is not None
            chain = " -> ".join(str(v) for v in witness.vertices())
            print(f"{'':20s}evidence: {chain}")
            print(f"{'':20s}middleman married to Amy: {witness.satisfying_vertex}")
    print(
        "\nThe April-only query finds the planted chain through Amy's "
        "spouse; the\nMarch/May variants correctly reject the decoys."
    )


if __name__ == "__main__":
    main()
