"""Traditional landmark indexing in the style of Valstar et al. [19].

This is the Table 2 comparator: the state-of-the-art LCR index whose
construction cost the paper argues is unbearable on large KGs
(``O(|E||V|2^|L| + |V|²2^{2|L|})`` with their parameter choices).  The
reproduction is faithful in structure and asymptotics:

* ``k = 1250 + √|V|`` landmarks (the paper's setting; capped so the
  formula stays meaningful on downscaled graphs), chosen by highest
  total degree — the selection Section 5.1.2 criticises;
* for every landmark, the **full CMS** to every reachable vertex over
  the *whole* graph (Figure 9(a)), computed by the same minimal-insert
  BFS as the local index but without a region boundary;
* for every non-landmark vertex, ``b = 20`` partial CMS entries from a
  truncated run of the same BFS.

Construction accepts a wall-clock budget and raises
:class:`IndexingBudgetExceeded` when exceeded — Table 2 limits indexing
to eight hours and reports "-" for every dataset beyond the smallest;
the benchmark harness reproduces those dashes by catching this error.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.exceptions import IndexingBudgetExceeded
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.cms import CmsTable
from repro.utils.timing import Stopwatch, Timer

__all__ = ["TraditionalLandmarkIndex", "build_traditional_index", "paper_landmark_count"]

#: How many BFS pops between budget checks.
_BUDGET_CHECK_INTERVAL = 2048


def paper_landmark_count(num_vertices: int) -> int:
    """[19]'s experimental setting ``k = 1250 + √|V|`` (capped at |V|/4).

    The cap keeps the comparator meaningful on downscaled graphs where
    the paper's constant would exceed the vertex count (DESIGN.md §4).
    """
    if num_vertices == 0:
        return 0
    k = 1250 + round(math.sqrt(num_vertices))
    return max(1, min(k, max(1, num_vertices // 4)))


@dataclass
class TraditionalLandmarkIndex:
    """Full per-landmark CMS plus partial non-landmark entries."""

    graph: KnowledgeGraph
    landmarks: list[int]
    #: ``landmark → CmsTable`` over the whole graph.
    full: dict[int, CmsTable]
    #: ``non-landmark → CmsTable`` truncated at ``b`` entries.
    partial: dict[int, CmsTable]
    build_seconds: float = 0.0

    def reaches(self, source: int, target: int, constraint_mask: int) -> bool:
        """Exact LCR answer ``source ⇝_L target`` using the index.

        Landmark sources answer from their full CMS; other sources run
        an online BFS that short-circuits through landmark tables (the
        query strategy of [19], simplified).
        """
        if source == target:
            return True
        table = self.full.get(source)
        if table is not None:
            return table.reaches_under(target, constraint_mask)
        partial = self.partial.get(source)
        if partial is not None and partial.reaches_under(target, constraint_mask):
            return True
        # Online fallback: masked BFS that may jump through landmarks.
        visited = bytearray(self.graph.num_vertices)
        visited[source] = 1
        queue = deque((source,))
        while queue:
            u = queue.popleft()
            landmark_table = self.full.get(u)
            if landmark_table is not None:
                if landmark_table.reaches_under(target, constraint_mask):
                    return True
                continue  # everything beyond u is covered by its table
            for _label, w in self.graph.out_masked(u, constraint_mask):
                if w == target:
                    return True
                if not visited[w]:
                    visited[w] = 1
                    queue.append(w)
        return False

    def stats(self) -> dict[str, float]:
        """Entry counts and build time (Table 2 columns)."""
        full_entries = sum(t.entry_count() for t in self.full.values())
        partial_entries = sum(t.entry_count() for t in self.partial.values())
        return {
            "num_landmarks": len(self.landmarks),
            "full_entries": full_entries,
            "partial_entries": partial_entries,
            "build_seconds": self.build_seconds,
        }

    def estimated_size_bytes(self) -> int:
        """Same size model as the local index (Theorem 5.4 element size)."""
        stats = self.stats()
        id_bytes = max(1, (self.graph.num_vertices.bit_length() + 7) // 8)
        mask_bytes = max(1, (self.graph.num_labels + 7) // 8)
        per_entry = id_bytes + mask_bytes
        total_entries = int(stats["full_entries"] + stats["partial_entries"])
        return total_entries * per_entry


def build_traditional_index(
    graph: KnowledgeGraph,
    k: int | None = None,
    b: int = 20,
    budget_seconds: float | None = None,
) -> TraditionalLandmarkIndex:
    """Build the [19]-style index, enforcing the wall-clock budget."""
    stopwatch = Stopwatch(budget_seconds)
    with Timer() as timer:
        if k is None:
            k = paper_landmark_count(graph.num_vertices)
        by_degree = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
        landmarks = by_degree[:k]
        landmark_set = set(landmarks)

        full: dict[int, CmsTable] = {}
        for u in landmarks:
            full[u] = _global_cms(graph, u, stopwatch, max_entries=None)

        partial: dict[int, CmsTable] = {}
        for v in by_degree[k:]:
            partial[v] = _global_cms(graph, v, stopwatch, max_entries=b)

    index = TraditionalLandmarkIndex(
        graph=graph, landmarks=landmarks, full=full, partial=partial
    )
    index.build_seconds = timer.elapsed
    return index


def _global_cms(
    graph: KnowledgeGraph,
    source: int,
    stopwatch: Stopwatch,
    max_entries: int | None,
) -> CmsTable:
    """Minimal-insert BFS over the whole graph from ``source``.

    ``max_entries`` truncates the run once that many vertices carry an
    entry (the non-landmark ``b`` budget of [19]).
    """
    table = CmsTable()
    table.insert(source, 0)
    queue: deque[tuple[int, int]] = deque(((source, 0),))
    enqueued: set[tuple[int, int]] = {(source, 0)}
    first_pop = True
    pops = 0
    while queue:
        pops += 1
        if pops % _BUDGET_CHECK_INTERVAL == 0 and stopwatch.over_budget():
            raise IndexingBudgetExceeded(stopwatch.elapsed, stopwatch.budget_seconds or 0.0)
        v, mask = queue.popleft()
        if first_pop:
            proceed = True
            first_pop = False
        else:
            proceed = table.insert(v, mask)
        if not proceed:
            continue
        if max_entries is not None and len(table) > max_entries:
            break
        for label_id, w in graph.out_edges(v):
            state = (w, mask | (1 << label_id))
            if state not in enqueued:
                enqueued.add(state)
                queue.append(state)
    return table
