"""Index structures: the local index (Alg. 3) and the two comparators."""

from repro.index.cms import CmsTable, any_subset_of, insert_minimal, minimal_antichain
from repro.index.full_tc import FullTransitiveClosure, build_full_tc
from repro.index.landmarks import (
    NO_REGION,
    Partition,
    bfs_traverse,
    default_landmark_count,
    select_landmarks,
)
from repro.index.local_index import LocalIndex, LocalIndexStats, build_local_index
from repro.index.spanning_tree import SamplingTreeIndex, build_sampling_tree_index
from repro.index.storage import (
    index_file_size,
    load_local_index,
    load_or_build_index,
    save_local_index,
)
from repro.index.traditional import (
    TraditionalLandmarkIndex,
    build_traditional_index,
    paper_landmark_count,
)

__all__ = [
    "CmsTable",
    "FullTransitiveClosure",
    "LocalIndex",
    "build_full_tc",
    "LocalIndexStats",
    "NO_REGION",
    "Partition",
    "SamplingTreeIndex",
    "TraditionalLandmarkIndex",
    "any_subset_of",
    "bfs_traverse",
    "build_local_index",
    "build_sampling_tree_index",
    "build_traditional_index",
    "default_landmark_count",
    "index_file_size",
    "insert_minimal",
    "load_local_index",
    "load_or_build_index",
    "minimal_antichain",
    "paper_landmark_count",
    "save_local_index",
    "select_landmarks",
]
