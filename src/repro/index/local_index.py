"""The local index (Section 5.1) — INS's precomputed structure.

For every landmark ``u`` (regions assigned by
:func:`~repro.index.landmarks.bfs_traverse`) the index stores the entry
``II[u] ∪ EIT[u] ∪ D[u]``:

* ``II[u]`` — for each vertex ``v ∈ F(u)``, the CMS
  ``M(u, v | F(u))`` of minimal path label sets from the landmark to
  ``v`` *inside the region* (Definition 5.1);
* ``EI[u]`` — for each border target ``w ∉ F(u)`` with an edge
  ``(v, l, w)`` leaving the region: the minimal sets
  ``{L ∪ {l} | L ∈ M(u, v | F(u))}`` (Theorem 5.1: if one of them is
  ⊆ the query constraint then ``u ⇝_L w``);
* ``EIT[u]`` — ``EI[u]`` transposed into ``label set → border vertices``
  key-value pairs, the orientation INS's ``Push`` consumes;
* ``D[u]`` — for each other landmark ``v``, the number of distinct
  ``EI[u]`` border targets that land in ``F(v)`` — a correlation degree
  between regions, from which the search's distance estimate ``ρ`` is
  derived.

Because each landmark is precomputed only over its own region (the
bijection ``F``, Figure 9(b)) instead of the whole graph (Figure 9(a)),
indexing cost is bounded by Theorems 5.3/5.4 regardless of the number of
landmarks — the property Table 2 demonstrates against [19].

Deviation noted in DESIGN.md §5.4: ``II[u]`` is seeded with the
landmark's trivial entry ``(u, {∅})`` so cyclic re-derivations
``(u, L ≠ ∅)`` are subsumed instead of stored, and ``Cut`` can mark the
landmark itself.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import IndexingError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.cms import CmsTable
from repro.index.landmarks import (
    NO_REGION,
    Partition,
    bfs_traverse,
    select_landmarks,
)
from repro.utils.timing import Timer

__all__ = ["LocalIndex", "LocalIndexStats", "build_local_index"]

#: ρ of a vertex pair involving an unassigned vertex — strictly worse
#: than any connected pair (connected pairs score in [0, 1]).
RHO_UNKNOWN = 2.0

#: Cap on memoised (landmark, constraint-mask) Cut/Push results.
_TARGET_MEMO_LIMIT = 4096


@dataclass(frozen=True)
class LocalIndexStats:
    """Construction metrics reported in Table 2."""

    num_landmarks: int
    assigned_vertices: int
    ii_entries: int
    eit_entries: int
    d_entries: int
    build_seconds: float

    @property
    def total_entries(self) -> int:
        """All stored pairs across ``II ∪ EIT ∪ D``."""
        return self.ii_entries + self.eit_entries + self.d_entries


class LocalIndex:
    """Per-landmark ``II / EIT / D`` tables plus the region assignment."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        partition: Partition,
    ) -> None:
        self.graph = graph
        self.partition = partition
        self.ii: dict[int, CmsTable] = {}
        self.eit: dict[int, dict[int, list[int]]] = {}
        self.d: dict[int, dict[int, int]] = {}
        #: ``EI`` tables, retained only when the builder is asked to
        #: (tests verify the ``EIT`` transposition against them).
        self.ei: dict[int, CmsTable] | None = None
        self.build_seconds: float = 0.0
        self._landmark_set = partition.landmark_set
        # Serving-time memos for Cut/Push under a given constraint mask.
        # The tables are immutable once built/loaded, so entries never go
        # stale; capped so adversarial mask churn cannot grow them
        # unboundedly (overflow recomputes per call).  Benign races only
        # under concurrent queries: competing writers store equal tuples.
        self._cut_memo: dict[tuple[int, int], tuple[int, ...]] = {}
        self._push_memo: dict[tuple[int, int], tuple[int, ...]] = {}

    def __repr__(self) -> str:
        return (
            f"LocalIndex({self.graph.name!r}, landmarks={len(self._landmark_set)}, "
            f"built in {self.build_seconds:.3f}s)"
        )

    # ------------------------------------------------------------------
    # lookups used by INS
    # ------------------------------------------------------------------

    def is_landmark(self, vertex_id: int) -> bool:
        """``vertex_id ∈ I``."""
        return vertex_id in self._landmark_set

    def region_of(self, vertex_id: int) -> int:
        """Owning landmark (``NO_REGION`` when unassigned) — ``v.AF``."""
        return self.partition.region[vertex_id]

    def correlation(self, from_landmark: int, to_landmark: int) -> int:
        """``D(u, v)``: border targets of ``F(u)`` landing in ``F(v)``."""
        return self.d.get(from_landmark, {}).get(to_landmark, 0)

    def region_correlations(self) -> dict[int, dict[int, int]]:
        """A defensive copy of the full ``D`` table.

        The export :mod:`repro.shard` consumes for placement: shards
        grouping highly correlated regions together see fewer border
        crossings per scatter-gather round.  Copied so shard planning
        can never alias the live index tables.
        """
        return {u: dict(row) for u, row in self.d.items()}

    def rho(self, x: int, y: int) -> float:
        """Estimated distance ``ρ(x, y)`` (DESIGN.md §5.3).

        0 for same-region pairs, ``1/(1 + D(x.AF, y.AF))`` across
        regions (higher correlation → closer), :data:`RHO_UNKNOWN` when
        either side is unassigned.
        """
        rx = self.partition.region[x]
        ry = self.partition.region[y]
        if rx == NO_REGION or ry == NO_REGION:
            return RHO_UNKNOWN
        if rx == ry:
            return 0.0
        return 1.0 / (1.0 + self.correlation(rx, ry))

    def check(self, landmark: int, target: int, constraint_mask: int) -> bool:
        """``Check(II[w], t*)``: ``w ⇝_L t*`` inside ``F(w)`` (line 22)."""
        table = self.ii.get(landmark)
        if table is None:
            return False
        return table.reaches_under(target, constraint_mask)

    def cut_targets(self, landmark: int, constraint_mask: int) -> tuple[int, ...]:
        """Vertices of ``F(landmark)`` reachable under the constraint.

        The vertex set ``Cut(II[w])`` marks (INS line 25): every ``x``
        with some ``L_i ∈ M(w, x | F(w))``, ``L_i ⊆ L``.  Memoised per
        ``(landmark, mask)`` — a workload reuses a handful of masks, so
        each filter runs once per index lifetime, not once per query.
        """
        key = (landmark, constraint_mask)
        cached = self._cut_memo.get(key)
        if cached is not None:
            return cached
        table = self.ii.get(landmark)
        if table is None:
            result: tuple[int, ...] = ()
        else:
            result = tuple(
                x
                for x, masks in table.items()
                if any(m & ~constraint_mask == 0 for m in masks)
            )
        if len(self._cut_memo) < _TARGET_MEMO_LIMIT:
            self._cut_memo[key] = result
        return result

    def push_targets(self, landmark: int, constraint_mask: int) -> tuple[int, ...]:
        """Border vertices ``Push(EIT[w])`` enqueues (INS line 25).

        Every vertex in the value set of an ``EIT`` pair whose key label
        set is ⊆ the constraint, deduplicated in first-seen order.
        Memoised like :meth:`cut_targets`.
        """
        key = (landmark, constraint_mask)
        cached = self._push_memo.get(key)
        if cached is not None:
            return cached
        transposed = self.eit.get(landmark)
        if not transposed:
            result: tuple[int, ...] = ()
        else:
            seen: set[int] = set()
            ordered: list[int] = []
            for mask, vertices in transposed.items():
                if mask & ~constraint_mask != 0:
                    continue
                for vertex in vertices:
                    if vertex not in seen:
                        seen.add(vertex)
                        ordered.append(vertex)
            result = tuple(ordered)
        if len(self._push_memo) < _TARGET_MEMO_LIMIT:
            self._push_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # incremental maintenance (extension — the paper treats the KG as
    # static; real deployments append facts)
    # ------------------------------------------------------------------

    def sync_vertices(self) -> int:
        """Extend the region assignment to vertices added after build.

        New vertices join no region (``NO_REGION``): the partition is a
        snapshot, and an unassigned vertex is always handled by plain
        traversal, so correctness is unaffected.  Returns how many
        vertices were newly registered.
        """
        region = self.partition.region
        added = self.graph.num_vertices - len(region)
        for _ in range(added):
            region.append(NO_REGION)
        return max(0, added)

    def refresh_after_edge(self, source: int, label_id: int, target: int) -> bool:
        """Repair the index after one edge mutation at ``(source,
        label_id, target)`` — an insertion *or* a removal — has been
        applied to the graph.

        Only the region owning ``source`` can be affected: ``II[u]``
        covers paths inside ``F(u)`` and ``EI[u]`` covers edges leaving
        it, and both kinds of derivation start from edges whose source
        lies in ``F(u)`` — so a removed edge's now-stale entries live in
        exactly the region an inserted edge's missing entries would.
        That one landmark entry is rebuilt from scratch against the
        *current* graph (regions are small by design, so this is cheap),
        which makes the repair direction-agnostic: whatever the mutation
        was, the rebuilt tables describe the graph as it now is.
        Returns True when a rebuild happened; False means the edge
        starts outside every region and the index was already correct.
        """
        self.sync_vertices()
        region = self.partition.region[source]
        if region == NO_REGION:
            return False
        return self.refresh_regions((region,)) == 1

    def refresh_regions(self, regions: "set[int] | tuple[int, ...]") -> int:
        """Rebuild the ``II/EIT/D`` entries of the named regions.

        The batch form of :meth:`refresh_after_edge`: an update batch
        touching many edges in one region repairs that region *once*,
        not once per edge.  Each entry is rebuilt from scratch against
        the current graph, so insertions and removals repair
        identically — callers pass the regions of every mutated edge's
        *source*, whichever way it mutated.  Unknown region ids and
        :data:`NO_REGION` are ignored.  Returns how many regions were
        rebuilt.

        Any rebuild also drops the serving-time Cut/Push memos — they
        cache projections of the tables being replaced, and a stale memo
        would keep answering for the pre-update region.
        """
        self.sync_vertices()
        refreshed = 0
        for region in set(regions):
            if region == NO_REGION or region not in self._landmark_set:
                continue
            ii, ei = _local_full_index(
                self.graph, self.partition.region, region, None
            )
            self.ii[region] = ii
            if self.ei is not None:
                self.ei[region] = ei
            self.eit[region] = _transpose_ei(ei)
            self.d[region] = _region_correlations(self.partition.region, ei)
            refreshed += 1
        if refreshed:
            self._cut_memo.clear()
            self._push_memo.clear()
        return refreshed

    def clone_for(self, graph: KnowledgeGraph) -> "LocalIndex":
        """An independent index over ``graph`` sharing unrefreshed tables.

        The epoch-swap counterpart of :meth:`KnowledgeGraph.copy`:
        ``graph`` must share this index's vertex/label interning (a copy
        of the indexed graph, possibly already mutated).  Per-region
        table *objects* are shared — both refresh paths replace a
        region's entry wholesale, never mutate one in place — so cloning
        is O(landmarks + |V|), and refreshing the clone leaves this
        index, still serving the previous epoch, untouched.  Memos start
        empty (they are serving-time caches, not index content).
        """
        partition = Partition(
            landmarks=list(self.partition.landmarks),
            region=list(self.partition.region),
            members={u: list(vs) for u, vs in self.partition.members.items()},
        )
        clone = LocalIndex(graph, partition)
        clone.ii = dict(self.ii)
        clone.eit = dict(self.eit)
        clone.d = dict(self.d)
        if self.ei is not None:
            clone.ei = dict(self.ei)
        clone.build_seconds = self.build_seconds
        return clone

    def stats(self) -> LocalIndexStats:
        """Entry counts and build time (Table 2 columns)."""
        ii_entries = sum(table.entry_count() for table in self.ii.values())
        eit_entries = sum(
            len(vertices)
            for transposed in self.eit.values()
            for vertices in transposed.values()
        )
        d_entries = sum(len(row) for row in self.d.values())
        return LocalIndexStats(
            num_landmarks=len(self._landmark_set),
            assigned_vertices=self.partition.assigned_count(),
            ii_entries=ii_entries,
            eit_entries=eit_entries,
            d_entries=d_entries,
            build_seconds=self.build_seconds,
        )

    def estimated_size_bytes(self) -> int:
        """Size model: each stored id/mask costs ``log|V| + |L|`` bits
        (Theorem 5.4's element size), rounded up to whole bytes."""
        stats = self.stats()
        id_bytes = max(1, (self.graph.num_vertices.bit_length() + 7) // 8)
        mask_bytes = max(1, (self.graph.num_labels + 7) // 8)
        per_entry = id_bytes + mask_bytes
        region_bytes = self.graph.num_vertices * id_bytes
        return stats.total_entries * per_entry + region_bytes


def build_local_index(
    graph: KnowledgeGraph,
    k: int | None = None,
    rng: int | random.Random | None = None,
    landmarks: list[int] | None = None,
    keep_ei: bool = False,
    max_queue_entries: int | None = None,
) -> LocalIndex:
    """Run Algorithm 3: select landmarks, partition, index each region.

    ``max_queue_entries`` is a safety valve for adversarial label-dense
    graphs (the 2^|L| worst case of Theorem 5.3): exceeding it raises
    :class:`IndexingError` rather than thrashing.
    """
    with Timer() as timer:
        if landmarks is None:
            landmarks = select_landmarks(graph, k=k, rng=rng)     # line 1
        partition = bfs_traverse(graph, landmarks)                # line 2
        index = LocalIndex(graph, partition)
        if keep_ei:
            index.ei = {}
        for u in partition.landmarks:                             # lines 3-4
            ii_table, ei_table = _local_full_index(
                graph, partition.region, u, max_queue_entries
            )
            index.ii[u] = ii_table
            if index.ei is not None:
                index.ei[u] = ei_table
            index.eit[u] = _transpose_ei(ei_table)                # line 15
            index.d[u] = _region_correlations(partition.region, ei_table)
    index.build_seconds = timer.elapsed
    return index


def _local_full_index(
    graph: KnowledgeGraph,
    region: list[int],
    u: int,
    max_queue_entries: int | None,
) -> tuple[CmsTable, CmsTable]:
    """``LocalFullIndex(u)`` (Algorithm 3, lines 5–15)."""
    ii = CmsTable()
    ii.insert(u, 0)  # seeded trivial entry (u, {∅}); DESIGN.md §5.4
    ei = CmsTable()
    queue: deque[tuple[int, int]] = deque(((u, 0),))              # line 7
    enqueued: set[tuple[int, int]] = {(u, 0)}
    first_pop = True
    while queue:                                                  # line 8
        v, mask = queue.popleft()                                 # line 9
        if first_pop:
            # Insert's special case (line 17): the landmark with the
            # empty set proceeds without re-storing.
            proceed = True
            first_pop = False
        else:
            proceed = ii.insert(v, mask)                          # line 10
        if not proceed:
            continue
        for label_id, w in graph.out_edges(v):                    # line 11
            new_mask = mask | (1 << label_id)
            if region[w] == u:                                    # line 12
                state = (w, new_mask)
                if state not in enqueued:
                    if (
                        max_queue_entries is not None
                        and len(enqueued) >= max_queue_entries
                    ):
                        raise IndexingError(
                            f"LocalFullIndex({u}) exceeded "
                            f"{max_queue_entries} queue entries; the region "
                            "is too label-dense — lower k or split labels"
                        )
                    enqueued.add(state)
                    queue.append(state)                           # line 13
            else:
                ei.insert(w, new_mask)                            # line 14
    return ii, ei


def _transpose_ei(ei: CmsTable) -> dict[int, list[int]]:
    """``EI[u] → EIT[u]``: group border vertices by label-set key."""
    transposed: dict[int, list[int]] = {}
    for vertex, masks in ei.items():
        for mask in masks:
            transposed.setdefault(mask, []).append(vertex)
    for vertices in transposed.values():
        vertices.sort()
    return transposed


def _region_correlations(region: list[int], ei: CmsTable) -> dict[int, int]:
    """``D[u]``: distinct border targets per destination region."""
    correlations: dict[int, int] = {}
    for vertex in ei:
        target_region = region[vertex]
        if target_region != NO_REGION:
            correlations[target_region] = correlations.get(target_region, 0) + 1
    return correlations
