"""CMS — collections of minimal sufficient path label sets.

Definition 2.3: ``M(s, t)`` is the set of label sets of paths from ``s``
to ``t`` that are minimal under set inclusion (an *antichain*).  Given a
label constraint ``L``, ``s ⇝_L t`` holds iff some member of
``M(s, t)`` is a subset of ``L`` — which is the only query the paper's
indexes ever pose, so a CMS is stored simply as a list of label-set
bitmasks kept minimal on insertion.

:func:`insert_minimal` is the ``Insert`` function of Algorithm 3
(lines 16–24) specialised to one collection: it rejects masks that are
supersets of an existing member and evicts existing members that are
strict supersets of the new mask.

:class:`CmsTable` maps vertices to their CMS — the shape of ``II[u]``
and ``EI[u]`` entries.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.labels import mask_is_subset

__all__ = ["insert_minimal", "any_subset_of", "CmsTable", "minimal_antichain"]


def insert_minimal(collection: list[int], mask: int) -> bool:
    """Insert ``mask`` into the antichain ``collection`` (in place).

    Returns False (collection unchanged) when an existing member is a
    subset of ``mask`` — including ``mask`` itself.  Otherwise removes
    every member that is a strict superset of ``mask``, appends ``mask``
    and returns True.
    """
    for existing in collection:
        if existing & ~mask == 0:  # existing ⊆ mask: mask is redundant
            return False
    # No member is ⊆ mask, so members ⊇ mask are strict supersets: evict.
    collection[:] = [member for member in collection if mask & ~member != 0]
    collection.append(mask)
    return True


def any_subset_of(collection: list[int], constraint_mask: int) -> bool:
    """True iff some member of the CMS is a subset of ``constraint_mask``.

    This is the reachability test: ``∃ L_i ∈ M(s, t): L_i ⊆ L``.
    """
    for member in collection:
        if member & ~constraint_mask == 0:
            return True
    return False


def minimal_antichain(masks: Iterator[int] | list[int]) -> list[int]:
    """Reduce an arbitrary collection of masks to its minimal antichain."""
    result: list[int] = []
    for mask in masks:
        insert_minimal(result, mask)
    return sorted(result)


class CmsTable:
    """``vertex id → CMS`` mapping (the value shape of ``II`` / ``EI``)."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._table

    def __iter__(self) -> Iterator[int]:
        return iter(self._table)

    def insert(self, vertex_id: int, mask: int) -> bool:
        """Algorithm 3's ``Insert(v, L, index[u])`` for one pair."""
        collection = self._table.get(vertex_id)
        if collection is None:
            self._table[vertex_id] = [mask]
            return True
        return insert_minimal(collection, mask)

    def get(self, vertex_id: int) -> list[int]:
        """The CMS of ``vertex_id`` (empty list when absent)."""
        return self._table.get(vertex_id, [])

    def reaches_under(self, vertex_id: int, constraint_mask: int) -> bool:
        """``∃ L_i ∈ M(·, vertex_id): L_i ⊆ constraint_mask``."""
        collection = self._table.get(vertex_id)
        if not collection:
            return False
        return any_subset_of(collection, constraint_mask)

    def items(self) -> Iterator[tuple[int, list[int]]]:
        """All ``(vertex id, CMS)`` pairs."""
        return iter(self._table.items())

    def entry_count(self) -> int:
        """Total number of ``(vertex, mask)`` pairs stored."""
        return sum(len(masks) for masks in self._table.values())

    def verify_antichains(self) -> bool:
        """Every stored CMS is an antichain (test invariant)."""
        for masks in self._table.values():
            for i, a in enumerate(masks):
                for j, b in enumerate(masks):
                    if i != j and mask_is_subset(a, b):
                        return False
        return True
