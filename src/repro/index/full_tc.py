"""Full CMS transitive closure — the Section 3.2 strawman.

The paper's opening argument against index-based LCR on KGs is that a
*full transitive closure* stores all minimal sufficient path label sets
for every vertex pair: answer time O(1)-ish, space ``O(|V|² · 2^|𝕃|)``.
This module implements that strawman exactly, for three uses:

* a third independent reachability oracle for the test suite (its
  answers must match BFS and the other indexes);
* a space-measurement subject: :meth:`FullTransitiveClosure.stats`
  exhibits the quadratic entry growth the paper cites as prohibitive;
* the fastest possible LCR answering for *tiny* graphs, where the
  quadratic cost is irrelevant (used by some examples).

Construction reuses the minimal-insert BFS of the other index builders,
run from every vertex.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import IndexingBudgetExceeded
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.cms import CmsTable
from repro.utils.timing import Stopwatch, Timer

__all__ = ["FullTransitiveClosure", "build_full_tc"]

_BUDGET_CHECK_INTERVAL = 2048


@dataclass
class FullTransitiveClosure:
    """CMS tables from every vertex to every reachable vertex."""

    graph: KnowledgeGraph
    closure: dict[int, CmsTable] = field(default_factory=dict)
    build_seconds: float = 0.0

    def reaches(self, source: int, target: int, constraint_mask: int) -> bool:
        """Exact ``source ⇝_L target`` from the precomputed tables."""
        if source == target:
            return True
        table = self.closure.get(source)
        if table is None:
            return False
        return table.reaches_under(target, constraint_mask)

    def cms(self, source: int, target: int) -> list[int]:
        """The stored ``M(source, target)`` (empty if unreachable)."""
        table = self.closure.get(source)
        if table is None:
            return []
        return sorted(table.get(target))

    def stats(self) -> dict[str, float]:
        """Entry counts — the quadratic blow-up the paper warns about."""
        entries = sum(t.entry_count() for t in self.closure.values())
        pairs = sum(len(t) for t in self.closure.values())
        return {
            "pairs": pairs,
            "entries": entries,
            "build_seconds": self.build_seconds,
        }


def build_full_tc(
    graph: KnowledgeGraph,
    budget_seconds: float | None = None,
) -> FullTransitiveClosure:
    """Precompute the full CMS transitive closure (tiny graphs only)."""
    stopwatch = Stopwatch(budget_seconds)
    tc = FullTransitiveClosure(graph=graph)
    with Timer() as timer:
        for source in graph.vertices():
            tc.closure[source] = _cms_from(graph, source, stopwatch)
    tc.build_seconds = timer.elapsed
    return tc


def _cms_from(
    graph: KnowledgeGraph, source: int, stopwatch: Stopwatch
) -> CmsTable:
    table = CmsTable()
    table.insert(source, 0)
    queue: deque[tuple[int, int]] = deque(((source, 0),))
    enqueued: set[tuple[int, int]] = {(source, 0)}
    first_pop = True
    pops = 0
    while queue:
        pops += 1
        if pops % _BUDGET_CHECK_INTERVAL == 0 and stopwatch.over_budget():
            raise IndexingBudgetExceeded(
                stopwatch.elapsed, stopwatch.budget_seconds or 0.0
            )
        vertex, mask = queue.popleft()
        if first_pop:
            proceed = True
            first_pop = False
        else:
            proceed = table.insert(vertex, mask)
        if not proceed:
            continue
        for label_id, target in graph.out_edges(vertex):
            state = (target, mask | (1 << label_id))
            if state not in enqueued:
                enqueued.add(state)
                queue.append(state)
    return table
