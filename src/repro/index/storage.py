"""Local-index persistence and on-disk size accounting (Table 2 "IS").

The paper stores both competing indexes "by the same data structure and
on disk" and reports their sizes; this module serialises a
:class:`~repro.index.local_index.LocalIndex` to a compact JSON document
so the benchmark can report real on-disk bytes.  JSON is chosen over
pickle deliberately: index files are plain data, diffable, and safe to
load from untrusted sources.

Masks are written as hex strings (arbitrary-width label universes);
vertex ids as ints.  The graph itself is *not* stored — an index is only
valid against the exact graph it was built from, so loading requires
passing that graph and verifies basic shape (vertex count).
"""

from __future__ import annotations

import json
from pathlib import Path

import random

from repro.exceptions import IndexingError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.cms import CmsTable
from repro.index.landmarks import Partition
from repro.index.local_index import LocalIndex, build_local_index
from repro.utils.persist import atomic_write_json

__all__ = [
    "save_local_index",
    "load_local_index",
    "load_or_build_index",
    "index_file_size",
]

_FORMAT_VERSION = 1


def save_local_index(index: LocalIndex, path: str | Path) -> int:
    """Write ``index`` to ``path``; returns the file size in bytes."""
    document = {
        "format_version": _FORMAT_VERSION,
        "graph_name": index.graph.name,
        "num_vertices": index.graph.num_vertices,
        "landmarks": index.partition.landmarks,
        "region": index.partition.region,
        "ii": {
            str(u): {str(v): [hex(m) for m in masks] for v, masks in table.items()}
            for u, table in index.ii.items()
        },
        "eit": {
            str(u): {hex(mask): vertices for mask, vertices in transposed.items()}
            for u, transposed in index.eit.items()
        },
        "d": {
            str(u): {str(v): count for v, count in row.items()}
            for u, row in index.d.items()
        },
        "build_seconds": index.build_seconds,
    }
    return atomic_write_json(document, path, encoding="ascii")


def load_local_index(path: str | Path, graph: KnowledgeGraph) -> LocalIndex:
    """Load an index written by :func:`save_local_index` for ``graph``."""
    with open(path, "r", encoding="ascii") as handle:
        document = json.load(handle)
    if document.get("format_version") != _FORMAT_VERSION:
        raise IndexingError(
            f"unsupported index format version {document.get('format_version')!r}"
        )
    if document["num_vertices"] != graph.num_vertices:
        raise IndexingError(
            "index/graph mismatch: index was built for "
            f"{document['num_vertices']} vertices, graph has {graph.num_vertices}"
        )
    landmarks = list(document["landmarks"])
    region = list(document["region"])
    members: dict[int, list[int]] = {u: [] for u in landmarks}
    for vertex, owner in enumerate(region):
        if owner != -1:
            members.setdefault(owner, []).append(vertex)
    partition = Partition(landmarks=landmarks, region=region, members=members)
    index = LocalIndex(graph, partition)
    for u_text, table_doc in document["ii"].items():
        table = CmsTable()
        for v_text, masks in table_doc.items():
            vertex = int(v_text)
            for mask_text in masks:
                table.insert(vertex, int(mask_text, 16))
        index.ii[int(u_text)] = table
    for u_text, transposed_doc in document["eit"].items():
        index.eit[int(u_text)] = {
            int(mask_text, 16): list(vertices)
            for mask_text, vertices in transposed_doc.items()
        }
    for u_text, row in document["d"].items():
        index.d[int(u_text)] = {int(v_text): count for v_text, count in row.items()}
    index.build_seconds = float(document.get("build_seconds", 0.0))
    return index


def load_or_build_index(
    graph: KnowledgeGraph,
    path: str | Path | None = None,
    *,
    k: int | None = None,
    rng: int | random.Random | None = 0,
    save_if_built: bool = True,
) -> LocalIndex:
    """Warm-start helper for long-lived processes (the query service).

    * ``path`` is ``None`` — build in memory, persist nothing;
    * ``path`` exists — load it (validated against ``graph``);
    * ``path`` is missing — build, and persist there when
      ``save_if_built`` so the *next* start is warm.

    With a fixed ``rng`` seed the built and reloaded indexes answer
    identically, so callers never need to care which branch ran.

    Long-lived callers should pass the graph *already frozen*
    (:meth:`~repro.graph.labeled_graph.KnowledgeGraph.freeze`), the way
    :meth:`~repro.service.app.QueryService.from_files` does: the index
    build's BFS traversals then run on the CSR layout, and the loaded
    index binds to the exact graph object the sessions will traverse.
    """
    if path is None:
        return build_local_index(graph, k=k, rng=rng)
    path = Path(path)
    if path.is_file():
        return load_local_index(path, graph)
    index = build_local_index(graph, k=k, rng=rng)
    if save_if_built:
        save_local_index(index, path)
    return index


def index_file_size(path: str | Path) -> int:
    """Size of a saved index in bytes."""
    return Path(path).stat().st_size
