"""Tree-based LCR indexing in the style of Jin et al. [6] — Figure 5.

Section 3.2 argues that the original tree-framework LCR index cannot
scale: Figure 5 plots its indexing time growing linearly with graph
density ``D = |E|/|V|`` at fixed ``|V|`` and super-linearly with ``|V|``
at fixed density.  The paper derives those curves from [6]'s published
tables; this module implements a working variant with the same cost
profile so the benchmark can *measure* the curves instead of citing
them:

* a BFS spanning forest is sampled (root order drawn from the supplied
  RNG — whence the harness's "Sampling-Tree" label), providing the
  framework's tree skeleton and per-edge tree labels;
* the transitive closure is computed as a full per-source CMS (minimal
  path-label sets) via the same minimal-insert BFS used everywhere
  else.  Tree paths are ordinary graph paths, so the closure subsumes
  them; the tree skeleton is what [6] uses to keep *storage* partial,
  and :meth:`SamplingTreeIndex.tree_covered_entries` reports how many
  closure entries it would make implicit.

Per-source BFS over ``(vertex, label set)`` states makes construction
``Θ(|V| · |E| · c)`` with a CMS blow-up factor ``c`` — linear in density
and super-linear in vertex count, matching the Figure 5 shapes.

Construction honours a wall-clock budget like the traditional index.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import IndexingBudgetExceeded
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.cms import CmsTable
from repro.utils.rng import make_rng
from repro.utils.timing import Stopwatch, Timer

__all__ = ["SamplingTreeIndex", "build_sampling_tree_index"]

_BUDGET_CHECK_INTERVAL = 2048


@dataclass
class SamplingTreeIndex:
    """Spanning forest + full-CMS transitive closure."""

    graph: KnowledgeGraph
    #: ``parent[v]`` is the tree parent (-1 for roots / unreached).
    parent: list[int]
    #: label id of the edge from ``parent[v]`` to ``v`` (-1 for roots).
    parent_label: list[int]
    #: forest roots in sampled order.
    roots: list[int] = field(default_factory=list)
    #: ``source → CmsTable`` transitive closure.
    closure: dict[int, CmsTable] = field(default_factory=dict)
    build_seconds: float = 0.0

    def reaches(self, source: int, target: int, constraint_mask: int) -> bool:
        """Exact LCR answer from the precomputed closure."""
        if source == target:
            return True
        table = self.closure.get(source)
        if table is None:
            return False
        return table.reaches_under(target, constraint_mask)

    def tree_path_mask(self, ancestor: int, descendant: int) -> int | None:
        """Label mask of the tree path, or None if not an ancestor pair."""
        mask = 0
        current = descendant
        while current != -1 and current != ancestor:
            label = self.parent_label[current]
            if label >= 0:
                mask |= 1 << label
            current = self.parent[current]
        if current == ancestor:
            return mask
        return None

    def tree_covered_entries(self) -> int:
        """Closure entries whose label set equals a tree-path mask.

        These are the pairs [6] keeps implicit in the spanning tree
        instead of storing; reported by the Figure 5 harness as the
        storage the tree saves.
        """
        covered = 0
        for source, table in self.closure.items():
            for target, masks in table.items():
                tree_mask = self.tree_path_mask(source, target)
                if tree_mask is not None and tree_mask in masks:
                    covered += 1
        return covered

    def stats(self) -> dict[str, float]:
        """Entry counts and build time."""
        return {
            "closure_entries": sum(t.entry_count() for t in self.closure.values()),
            "tree_edges": sum(1 for p in self.parent if p != -1),
            "build_seconds": self.build_seconds,
        }


def build_sampling_tree_index(
    graph: KnowledgeGraph,
    rng: int | random.Random | None = None,
    budget_seconds: float | None = None,
) -> SamplingTreeIndex:
    """Sample a spanning forest, then close every source's CMS."""
    rng = make_rng(rng)
    stopwatch = Stopwatch(budget_seconds)
    with Timer() as timer:
        parent, parent_label, roots = _sample_spanning_forest(graph, rng)
        index = SamplingTreeIndex(
            graph=graph, parent=parent, parent_label=parent_label, roots=roots
        )
        for source in graph.vertices():
            index.closure[source] = _closure_from(graph, source, stopwatch)
    index.build_seconds = timer.elapsed
    return index


def _sample_spanning_forest(
    graph: KnowledgeGraph, rng: random.Random
) -> tuple[list[int], list[int], list[int]]:
    n = graph.num_vertices
    parent = [-1] * n
    parent_label = [-1] * n
    visited = bytearray(n)
    roots: list[int] = []
    order = list(graph.vertices())
    rng.shuffle(order)
    for root in order:
        if visited[root]:
            continue
        roots.append(root)
        visited[root] = 1
        queue = deque((root,))
        while queue:
            u = queue.popleft()
            for label_id, w in graph.out_edges(u):
                if not visited[w]:
                    visited[w] = 1
                    parent[w] = u
                    parent_label[w] = label_id
                    queue.append(w)
    return parent, parent_label, roots


def _closure_from(
    graph: KnowledgeGraph,
    source: int,
    stopwatch: Stopwatch,
) -> CmsTable:
    """Full CMS from ``source`` by minimal-insert BFS."""
    table = CmsTable()
    table.insert(source, 0)
    queue: deque[tuple[int, int]] = deque(((source, 0),))
    enqueued: set[tuple[int, int]] = {(source, 0)}
    pops = 0
    first_pop = True
    while queue:
        pops += 1
        if pops % _BUDGET_CHECK_INTERVAL == 0 and stopwatch.over_budget():
            raise IndexingBudgetExceeded(stopwatch.elapsed, stopwatch.budget_seconds or 0.0)
        v, mask = queue.popleft()
        if first_pop:
            proceed = True
            first_pop = False
        else:
            proceed = table.insert(v, mask)
        if not proceed:
            continue
        for label_id, w in graph.out_edges(v):
            state = (w, mask | (1 << label_id))
            if state not in enqueued:
                enqueued.add(state)
                queue.append(state)
    return table
