"""Landmark selection and the region partition (Algorithm 3, lines 1–2, 25–34).

Two steps precede the per-landmark indexing:

1. **LandmarkSelect** — Section 5.1.2 argues *against* the
   highest-degree selection of the traditional landmark method [19]: on
   a KG, top-degree vertices are class hubs whose incident edges carry
   RDF vocabulary labels, so indexes rooted there are useless for
   queries whose label constraint contains no vocabulary labels.
   Instead, INS randomly selects a set of RDFS *classes* and evenly
   marks ``k`` of their instances as landmarks, with
   ``k = log₂|V| · √|V|`` (capped; graphs without a usable schema fall
   back to the degree-based choice so the index still works on general
   edge-labeled graphs).

2. **BFSTraverse** — a *fair* multi-source BFS from all landmarks at
   once (a queue of per-landmark queues, one vertex expanded per turn)
   assigns every reached vertex ``w`` to the region ``F(u)`` of the
   landmark ``u`` that reached it first: ``w.AF = u``.  Fairness keeps
   the regions balanced, which is what bounds the per-landmark indexing
   cost.  Every non-landmark vertex of ``F(u)`` is reachable from ``u``
   by construction; vertices no landmark reaches stay unassigned
   (``region == NO_REGION``).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

from repro.graph.labeled_graph import KnowledgeGraph
from repro.graph.schema import RDFSchema
from repro.utils.rng import make_rng

__all__ = [
    "NO_REGION",
    "Partition",
    "default_landmark_count",
    "select_landmarks",
    "bfs_traverse",
    "structural_correlations",
]

#: Region value of vertices not reached by any landmark.
NO_REGION = -1


def default_landmark_count(num_vertices: int) -> int:
    """The paper's ``|I| = k = log |V| × √|V|`` (log base 2, rounded).

    Clamped to ``[1, |V|]``; tiny graphs get at least one landmark.
    """
    if num_vertices <= 1:
        return num_vertices
    k = round(math.log2(num_vertices) * math.sqrt(num_vertices))
    return max(1, min(k, num_vertices))


@dataclass
class Partition:
    """The bijection ``F: I → G`` materialised as a region assignment."""

    #: Landmark vertex ids, in selection order.
    landmarks: list[int]
    #: ``region[v]`` is the landmark id owning ``v`` (``NO_REGION`` if none).
    region: list[int]
    #: Members of each region, landmark first, in discovery order.
    members: dict[int, list[int]] = field(repr=False)

    @property
    def landmark_set(self) -> set[int]:
        """The landmark ids as a set (membership tests)."""
        return set(self.landmarks)

    def region_of(self, vertex_id: int) -> int:
        """Owning landmark of ``vertex_id`` (``NO_REGION`` when unassigned)."""
        return self.region[vertex_id]

    def assigned_count(self) -> int:
        """Number of vertices covered by some region."""
        return sum(1 for r in self.region if r != NO_REGION)


def select_landmarks(
    graph: KnowledgeGraph,
    k: int | None = None,
    rng: int | random.Random | None = None,
    class_fraction: float = 0.5,
) -> list[int]:
    """Choose ``k`` landmark vertex ids (Algorithm 3, line 1).

    Samples ``class_fraction`` of the schema's instantiated classes,
    then round-robins over them marking instances until ``k`` landmarks
    are collected.  Falls back to (deterministic) highest-degree
    selection when the schema yields too few candidates — the documented
    general-graph fallback, equivalent to the traditional selection.
    """
    rng = make_rng(rng)
    n = graph.num_vertices
    if n == 0:
        return []
    if k is None:
        k = default_landmark_count(n)
    k = max(1, min(k, n))

    chosen: list[int] = []
    chosen_set: set[int] = set()

    schema = graph.schema if isinstance(graph.schema, RDFSchema) else None
    if schema is not None:
        eligible_classes = [c for c in schema.classes() if schema.instances_of(c, False)]
        if eligible_classes:
            sample_size = max(1, round(len(eligible_classes) * class_fraction))
            classes = rng.sample(eligible_classes, min(sample_size, len(eligible_classes)))
            pools: list[list[int]] = []
            for cls in classes:
                ids = [
                    graph.vid(name)
                    for name in schema.instances_of(cls, False)
                    if graph.has_vertex(name)
                ]
                rng.shuffle(ids)
                if ids:
                    pools.append(ids)
            # "Evenly mark k instances of the selected classes": take one
            # instance per class per round until k landmarks are chosen.
            while pools and len(chosen) < k:
                next_pools: list[list[int]] = []
                for pool in pools:
                    if len(chosen) >= k:
                        break
                    vid = pool.pop()
                    if vid not in chosen_set:
                        chosen_set.add(vid)
                        chosen.append(vid)
                    if pool:
                        next_pools.append(pool)
                pools = next_pools

    if len(chosen) < k:
        # Degree-based fallback fill (general graphs / sparse schemas).
        by_degree = sorted(
            graph.vertices(), key=lambda v: (-graph.degree(v), v)
        )
        for vid in by_degree:
            if len(chosen) >= k:
                break
            if vid not in chosen_set:
                chosen_set.add(vid)
                chosen.append(vid)
    return chosen


def bfs_traverse(graph: KnowledgeGraph, landmarks: list[int]) -> Partition:
    """Fair multi-source BFS region assignment (Algorithm 3, lines 25–34).

    One vertex is expanded per landmark per turn, so regions grow at the
    same rate regardless of landmark order; each vertex joins the region
    of whichever landmark's frontier reaches it first.
    """
    n = graph.num_vertices
    region = [NO_REGION] * n
    members: dict[int, list[int]] = {}
    explored = bytearray(n)

    rotation: deque[tuple[int, deque[int]]] = deque()
    for u in landmarks:
        if explored[u]:
            continue  # duplicate landmark: first occurrence wins
        explored[u] = 1
        region[u] = u
        members[u] = [u]
        rotation.append((u, deque((u,))))

    while rotation:                                     # line 27
        u, queue = rotation.popleft()                   # line 28
        v = queue.popleft()                             # line 29
        for _label, w in graph.out_edges(v):            # line 30
            if not explored[w]:                         # line 31
                explored[w] = 1
                region[w] = u                           # line 32
                members[u].append(w)
                queue.append(w)
        if queue:                                       # lines 33-34
            rotation.append((u, queue))

    return Partition(landmarks=list(dict.fromkeys(landmarks)), region=region, members=members)


def structural_correlations(
    graph: KnowledgeGraph, partition: Partition
) -> dict[int, dict[int, int]]:
    """An edge-cut stand-in for the local index's ``D`` table.

    ``D[u][v]`` in the index counts distinct ``EI[u]`` border targets
    landing in ``F(v)`` — which needs the full per-landmark indexing
    pass.  When a deployment shards *without* building the index (the
    UIS* serving path), this O(|E|) scan supplies the same shape from
    raw cross-region edges: the number of distinct border-edge targets
    of ``F(u)`` that lie in ``F(v)``.  Same orientation, same "higher
    means more correlated" reading, so shard placement can consume
    either table interchangeably.
    """
    region = partition.region
    border_targets: dict[int, set[int]] = {}
    for source, _label, target in graph.edges():
        ru = region[source]
        rv = region[target]
        if ru == NO_REGION or rv == NO_REGION or ru == rv:
            continue
        border_targets.setdefault(ru, set()).add(target)
    correlations: dict[int, dict[int, int]] = {}
    for ru, targets in border_targets.items():
        row: dict[int, int] = {}
        for target in targets:
            rv = region[target]
            row[rv] = row.get(rv, 0) + 1
        correlations[ru] = row
    return correlations
