"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the end-to-end workflow on TSV-serialised graphs
(see :mod:`repro.graph.io` for the format):

* ``generate`` — produce a LUBM-like / YAGO-like / random dataset;
* ``stats``    — describe a graph (sizes, degrees, label histogram);
* ``index``    — build and persist a local index (Algorithm 3);
* ``query``    — answer one LSCR query, optionally with a witness path;
* ``cut``      — cut a graph into serialized shard slices for workers;
* ``serve``    — serve LSCR queries over HTTP (:mod:`repro.service`).

Examples::

    python -m repro generate --lubm D1 --seed 0 --output d1.tsv
    python -m repro stats d1.tsv
    python -m repro index d1.tsv --output d1.index.json
    python -m repro query d1.tsv \
        --source "Department0.University0/FullProfessor0" \
        --target "University0" \
        --labels ub:worksFor,ub:subOrganizationOf \
        --constraint "SELECT ?x WHERE { ?x <ub:headOf> ?y . }" \
        --algorithm ins --index d1.index.json --witness
    python -m repro serve --graph d1.tsv --index d1.index.json --port 8080
    python -m repro serve --graph d1.tsv \
        --tenant yago=y.tsv:y.index.json --tenant toy=toy.tsv
    python -m repro serve --graph d1.tsv --index d1.index.json \
        --shards 4 --warm-cache d1.cache.json
    python -m repro cut d1.tsv --shards 2 --out slices/
    python -m repro serve --worker slices/shard-0.slice.json --port 9000
    python -m repro serve --worker slices/shard-1.slice.json --port 9001
    python -m repro serve --graph d1.tsv --shards 2 \
        --worker-url http://127.0.0.1:9000 --worker-url http://127.0.0.1:9001

The second ``serve`` form hosts three graphs in one process: ``d1`` as
the default tenant behind the un-prefixed routes, the others behind
``/t/yago/...`` and ``/t/toy/...`` (lazy warm start on first query).
The third serves ``d1`` through a region-sharded scatter-gather
coordinator (four in-process shard workers, also reachable at
``/shard/<id>/...`` for remote coordinators), warming the result cache
from — and snapshotting it back to — ``d1.cache.json``.  The last
block is the **cross-host** deployment: ``cut`` serializes the slices,
each ``serve --worker`` process serves one of them, and the
coordinator attaches them by URL — handshaking on plan hash and wire
version at startup, probing health periodically, and propagating every
update epoch over the two-phase slice-swap wire.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.constraints.substructure import SubstructureConstraint
from repro.core.ins import INS
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.core.witness import find_witness
from repro.datasets.lubm import SCALED_DATASETS, generate_dataset
from repro.datasets.synthetic import random_labeled_graph
from repro.datasets.yago import YagoConfig, generate_yago_like
from repro.exceptions import ReproError, ServiceConfigError
from repro.graph.csr import freeze_graph
from repro.graph.io import dump_tsv, load_tsv
from repro.graph.stats import graph_stats, label_histogram
from repro.index.landmarks import (
    bfs_traverse,
    select_landmarks,
    structural_correlations,
)
from repro.index.local_index import build_local_index
from repro.index.storage import load_local_index, save_local_index
from repro.service.app import QueryService
from repro.service.http import create_server
from repro.service.registry import DEFAULT_TENANT, TenantRegistry
from repro.shard import ShardedQueryService, ShardWorker, build_shard_plan, cut_slices
from repro.shard.slicefile import SLICE_WIRE_VERSION, dump_slice, load_slice
from repro.wal import (
    DEFAULT_COMPACT_EVERY,
    DEFAULT_POLL_INTERVAL,
    UpdateWal,
    WalFollower,
    recover_service,
)

__all__ = ["main", "build_parser"]

_ALGORITHMS = {
    "uis": UIS,
    "uis*": UISStar,
    "ins": INS,
    "naive": NaiveTwoProcedure,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LSCR reachability queries on knowledge graphs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a dataset as TSV")
    kind = generate.add_mutually_exclusive_group(required=True)
    kind.add_argument(
        "--lubm",
        choices=sorted(SCALED_DATASETS),
        help="LUBM-like scaled dataset (D0..D5)",
    )
    kind.add_argument("--yago", type=int, metavar="ENTITIES", help="YAGO-like KG")
    kind.add_argument(
        "--random",
        nargs=3,
        type=float,
        metavar=("VERTICES", "DENSITY", "LABELS"),
        help="uniform random labeled graph",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help="TSV file to write")

    stats = commands.add_parser("stats", help="describe a TSV graph")
    stats.add_argument("graph", help="TSV graph file")
    stats.add_argument("--labels", action="store_true", help="print label histogram")

    index = commands.add_parser("index", help="build a local index (Algorithm 3)")
    index.add_argument("graph", help="TSV graph file")
    index.add_argument("--output", required=True, help="index JSON to write")
    index.add_argument("--k", type=int, default=None, help="landmark count")
    index.add_argument("--seed", type=int, default=0)

    query = commands.add_parser("query", help="answer one LSCR query")
    query.add_argument("graph", help="TSV graph file")
    query.add_argument("--source", required=True)
    query.add_argument("--target", required=True)
    query.add_argument(
        "--labels", required=True, help="comma-separated label constraint L"
    )
    query.add_argument(
        "--constraint",
        required=True,
        help="substructure constraint S as a SELECT ?x query",
    )
    query.add_argument(
        "--algorithm", choices=sorted(_ALGORITHMS), default="uis"
    )
    query.add_argument(
        "--index", default=None, help="local index JSON (ins only; built if absent)"
    )
    query.add_argument(
        "--witness", action="store_true", help="also print a witness path"
    )

    cut = commands.add_parser(
        "cut",
        help="cut a TSV graph into serialized shard slices for "
        "cross-host workers (serve --worker)",
    )
    cut.add_argument("graph", help="TSV graph file")
    cut.add_argument(
        "--shards", type=int, required=True, metavar="N", help="shard count"
    )
    cut.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for the shard-<id>.slice.json files (created)",
    )
    cut.add_argument(
        "--index", default=None,
        help="local index JSON whose partition and D table guide the cut "
        "(default: fresh landmark partition with structural correlations "
        "— identical to what serve --shards builds for the same seed)",
    )
    cut.add_argument("--k", type=int, default=None, help="landmark count")
    cut.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve", help="serve LSCR queries over HTTP (POST /query, /batch)"
    )
    serve.add_argument(
        "--graph",
        default=None,
        help="TSV graph file served as the default tenant "
        "(un-prefixed /query routes)",
    )
    serve.add_argument(
        "--index",
        default=None,
        help="local index JSON for --graph (built and saved there if missing; "
        "omit to serve index-free with the fallback algorithm)",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=GRAPH[:INDEX]",
        help="host an extra graph under /t/NAME/... (repeatable; warm-started "
        "lazily on its first query; without --graph the first --tenant also "
        "backs the un-prefixed routes)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--algorithm",
        choices=sorted(_ALGORITHMS),
        default=None,
        help="force one algorithm (default: ins with an index, uis* without)",
    )
    serve.add_argument("--workers", type=int, default=None, help="batch thread count")
    serve.add_argument("--cache-size", type=int, default=1024, help="result-cache LRU size")
    serve.add_argument(
        "--cache-ttl", type=float, default=None, help="result-cache TTL in seconds"
    )
    serve.add_argument("--k", type=int, default=None, help="landmark count when building")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--no-freeze",
        action="store_true",
        help="serve the dict-backed graph instead of the frozen CSR snapshot "
        "(A/B escape hatch; see benchmarks/bench_hotpath.py)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="serve --graph through a region-sharded scatter-gather "
        "coordinator with N in-process shard workers (0 = unsharded); the "
        "workers are also exposed at /shard/<id>/... for remote coordinators",
    )
    serve.add_argument(
        "--worker",
        default=None,
        metavar="SLICE_FILE",
        help="serve as a standalone shard worker process from a slice file "
        "written by 'cut': exposes /shard/<id>/{expand,query,update} and "
        "the GET /shard/<id> descriptor for a coordinator's handshake "
        "(mutually exclusive with --graph/--tenant/--shards)",
    )
    serve.add_argument(
        "--worker-url",
        action="append",
        default=[],
        metavar="URL",
        help="attach a remote shard worker (a 'serve --worker' process) "
        "instead of an in-process one; repeat once per shard, in shard-id "
        "order (requires --shards N with N matching the count given)",
    )
    serve.add_argument(
        "--worker-probe-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="seconds between coordinator health probes of --worker-url "
        "workers (feeds the per-worker circuit breakers and re-pushes "
        "slices to workers that restarted stale; default 5)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="budget for every /query and /batch request that doesn't pass "
        "its own ?deadline_ms= (expiry answers a structured 504 with "
        "partial accounting; default: no deadline)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="upper bound on each scatter round's wait for a shard worker "
        "even when the request has no deadline; a worker past it counts "
        "as failed (retried, then breaker-tripped) instead of hanging the "
        "round (requires --shards)",
    )
    serve.add_argument(
        "--degraded-answers",
        action="store_true",
        help="when a shard stays down past its retry budget, answer over "
        "the surviving shards instead of failing with 503: responses "
        "carry a 'degraded' field whose verdict is \"reachable\" (still "
        "proven) or \"unknown\" (not a no); requires --shards",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="admission control: at most N query/batch requests execute "
        "concurrently per tenant; excess requests queue up to --max-queue "
        "deep and beyond that are shed with a structured 429 + Retry-After",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=0,
        metavar="N",
        help="admission queue depth in front of --max-concurrent "
        "(default 0: shed immediately when all slots are busy)",
    )
    serve.add_argument(
        "--warm-cache",
        default=None,
        metavar="FILE",
        help="warm the default tenant's result cache and stats from FILE at "
        "startup (when it exists) and snapshot them back there on clean "
        "shutdown",
    )
    serve.add_argument(
        "--allow-updates",
        action="store_true",
        help="accept POST /edges live edge update batches — additions and "
        "{\"op\": \"remove\"} retractions (copy-on-write epoch swap; refused "
        "with 403 when off, and unsupported on sharded default tenants)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="durable updates: replay the write-ahead log under DIR at "
        "startup (recovering the pre-crash epoch), then append every "
        "applied POST /edges batch there before acknowledging (requires "
        "--graph; composes with --shards — replay re-cuts and re-pushes "
        "worker slices to the logged epoch; incompatible with --follow)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=DEFAULT_COMPACT_EVERY,
        metavar="N",
        help="WAL compaction cadence: snapshot the graph and drop covered "
        "log segments every N appended records (bounds restart cost)",
    )
    serve.add_argument(
        "--follow",
        default=None,
        metavar="DIR",
        help="serve as a read-only follower tailing the WAL a leader writes "
        "under DIR: republishes the leader's epochs, refuses POST /edges "
        "with a structured 403, and reports lag in /healthz and /metrics "
        "(requires --graph — the same base TSV the leader started from)",
    )
    serve.add_argument(
        "--follow-interval",
        type=float,
        default=DEFAULT_POLL_INTERVAL,
        metavar="SECS",
        help="seconds between follower polls of the --follow directory",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of requests traced server-side for the slow-query "
        "flight recorder (0.0-1.0; clients can always force a trace with "
        "?trace=1)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="queries at or above this latency enter the flight recorder "
        "at GET /debug/slow (default 250)",
    )
    serve.add_argument(
        "--slow-log-size",
        type=int,
        default=None,
        metavar="N",
        help="worst-N slow queries kept per tenant (default 16)",
    )
    serve.add_argument(
        "--no-approx",
        action="store_true",
        help="disable the bounded-answer tier (label-blind definite-No "
        "bounds + witness-path definite-Yes short-circuits ahead of the "
        "exact evaluators, and the ?mode=approximate endpoint mode)",
    )
    serve.add_argument(
        "--approx-default",
        action="store_true",
        help="answer requests that don't pass ?mode= in approximate mode "
        "(uncertain-band queries answered from the bounds alone with "
        "sampled exact re-checks; default: exact)",
    )
    serve.add_argument(
        "--approx-recheck",
        type=float,
        default=0.05,
        metavar="RATE",
        help="fraction of mode=approximate answers re-checked against the "
        "exact evaluators to account the observed false rate in /stats "
        "and /metrics (0.0-1.0, default 0.05)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "index":
            return _cmd_index(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "cut":
            return _cmd_cut(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.lubm:
        graph = generate_dataset(args.lubm, rng=args.seed)
    elif args.yago:
        graph = generate_yago_like(YagoConfig(num_entities=args.yago), rng=args.seed)
    else:
        vertices, density, labels = args.random
        graph = random_labeled_graph(int(vertices), density, int(labels), rng=args.seed)
    dump_tsv(graph, args.output)
    print(
        f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
        f"to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_tsv(args.graph, name=args.graph)
    print(graph_stats(graph).describe())
    if args.labels:
        for label, count in label_histogram(graph).items():
            print(f"  {label}: {count}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    graph = load_tsv(args.graph)
    index = build_local_index(graph, k=args.k, rng=args.seed)
    size = save_local_index(index, args.output)
    stats = index.stats()
    print(
        f"indexed {stats.num_landmarks} landmarks, {stats.total_entries} entries "
        f"in {stats.build_seconds:.2f}s; {size} bytes -> {args.output}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    # One-shot queries still freeze: the O(|V| + |E|) snapshot build is
    # minor next to TSV parsing, and the search runs on the CSR layout.
    graph = load_tsv(args.graph).freeze()
    constraint = SubstructureConstraint.from_sparql(args.constraint)
    query = LSCRQuery.create(
        args.source,
        args.target,
        [label for label in args.labels.split(",") if label],
        constraint,
    )
    if args.algorithm == "ins":
        index = (
            load_local_index(args.index, graph)
            if args.index
            else build_local_index(graph)
        )
        algorithm = INS(graph, index)
    else:
        algorithm = _ALGORITHMS[args.algorithm](graph)
    result = algorithm.answer(query)
    print(
        f"{result.algorithm}: answer={result.answer} "
        f"time={result.seconds * 1000:.3f}ms "
        f"passed_vertices={result.passed_vertices}"
    )
    if args.witness and result.answer:
        witness = find_witness(graph, query)
        assert witness is not None
        print(f"witness (satisfying vertex: {witness.satisfying_vertex}):")
        if not witness.edges:
            print(f"  trivial path at {query.source}")
        for source, label, target in witness.edges:
            print(f"  {source} --{label}--> {target}")
    return 0 if result.answer else 1


def _cmd_cut(args: argparse.Namespace) -> int:
    """Serialize one slice file per shard, coordinator-compatible.

    The partition, correlation table and plan are built exactly the way
    ``serve --graph G --shards N --seed S`` builds them, so a
    coordinator started with the same graph/index/seed handshakes with
    the workers booted from these files without a resync.
    """
    if args.shards < 1:
        raise ServiceConfigError(f"--shards must be >= 1, got {args.shards}")
    graph = freeze_graph(load_tsv(args.graph, name=Path(args.graph).stem))
    if args.index is not None:
        index = load_local_index(args.index, graph)
        partition = index.partition
        correlations = index.region_correlations()
    else:
        landmarks = select_landmarks(graph, k=args.k, rng=args.seed)
        partition = bfs_traverse(graph, landmarks)
        correlations = structural_correlations(graph, partition)
    plan = build_shard_plan(graph, partition, args.shards, correlations)
    fingerprint = graph.content_fingerprint()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    total = 0
    for graph_slice in cut_slices(graph, plan):
        path = out / f"shard-{graph_slice.shard_id}.slice.json"
        size = dump_slice(graph_slice, plan, path, epoch=0, fingerprint=fingerprint)
        total += size
        print(
            f"shard {graph_slice.shard_id}: |V|={graph_slice.num_vertices} "
            f"|E|={graph_slice.num_edges} "
            f"borders={len(graph_slice.border_vertices)} "
            f"-> {path} ({size} bytes)"
        )
    loaded = load_slice(out / "shard-0.slice.json")
    print(
        f"cut {plan.num_shards} slices ({total} bytes); "
        f"plan {loaded.plan_hash} at epoch 0, wire v{SLICE_WIRE_VERSION}"
    )
    return 0


def _serve_worker(args: argparse.Namespace) -> int:
    """``serve --worker SLICE_FILE``: one shard worker process."""
    loaded = load_slice(args.worker)
    worker = ShardWorker(
        loaded.slice,
        seed=args.seed,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl,
        epoch=loaded.epoch,
        fingerprint=loaded.fingerprint,
        plan_hash=loaded.plan_hash,
        plan=loaded.plan,
    )
    # No tenants: the registry only backs the admin routes; queries go
    # through the coordinator that attaches this worker by URL.
    registry = TenantRegistry()
    server = create_server(
        registry, args.host, args.port, {str(loaded.slice.shard_id): worker}
    )
    host, port = server.server_address[:2]
    print(
        f"worker: shard {loaded.slice.shard_id} of {loaded.plan.num_shards} "
        f"from {args.worker} (|V|={loaded.slice.num_vertices} "
        f"|E|={loaded.slice.num_edges}; epoch {loaded.epoch}, "
        f"plan {loaded.plan_hash[:12]}..., wire v{SLICE_WIRE_VERSION})",
        flush=True,
    )
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        worker.close()
    return 0


def _parse_tenant_spec(spec: str) -> tuple[str, str, str | None]:
    """``NAME=GRAPH[:INDEX]`` → (name, graph path, index path or None)."""
    name, separator, paths = spec.partition("=")
    if not separator or not name or not paths:
        raise ServiceConfigError(
            f"invalid --tenant {spec!r}: expected NAME=GRAPH[:INDEX]"
        )
    graph_path, _, index_path = paths.partition(":")
    return name, graph_path, index_path or None


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.worker is not None:
        conflicts = {
            "--graph": args.graph is not None,
            "--tenant": bool(args.tenant),
            "--shards": bool(args.shards),
            "--worker-url": bool(args.worker_url),
            "--wal": args.wal is not None,
            "--follow": args.follow is not None,
            "--allow-updates": args.allow_updates,
            "--warm-cache": args.warm_cache is not None,
        }
        named = [flag for flag, given in conflicts.items() if given]
        if named:
            raise ServiceConfigError(
                f"--worker serves one slice and nothing else; drop "
                f"{', '.join(named)}"
            )
        return _serve_worker(args)
    tenants = [_parse_tenant_spec(spec) for spec in args.tenant]
    if args.graph is None and not tenants:
        raise ServiceConfigError(
            "serve needs at least one graph: pass --graph and/or --tenant"
        )
    if args.shards and args.graph is None:
        raise ServiceConfigError("--shards requires --graph (the default tenant)")
    if args.shards < 0:
        raise ServiceConfigError(f"--shards must be >= 0, got {args.shards}")
    if args.worker_url and not args.shards:
        raise ServiceConfigError("--worker-url requires --shards")
    if args.worker_url and len(args.worker_url) != args.shards:
        raise ServiceConfigError(
            f"--shards {args.shards} needs exactly {args.shards} "
            f"--worker-url values, got {len(args.worker_url)}"
        )
    if args.worker_probe_interval is not None and not args.worker_url:
        raise ServiceConfigError("--worker-probe-interval requires --worker-url")
    if args.wal is not None and args.follow is not None:
        raise ServiceConfigError(
            "--wal and --follow are mutually exclusive: a process either "
            "leads (writes the log) or follows (tails it)"
        )
    if (args.wal is not None or args.follow is not None) and args.graph is None:
        raise ServiceConfigError(
            "--wal/--follow require --graph (the base TSV the log's first "
            "record was written against)"
        )
    if args.follow is not None and args.shards:
        raise ServiceConfigError(
            "--follow does not support --shards: a follower republishes "
            "the leader's epochs read-only, it does not drive a fleet"
        )
    if args.follow is not None and args.allow_updates:
        raise ServiceConfigError(
            "--follow serves read-only; updates belong on the leader "
            "(drop --allow-updates)"
        )
    if args.compact_every < 1:
        raise ServiceConfigError(
            f"--compact-every must be >= 1, got {args.compact_every}"
        )
    if args.default_deadline_ms is not None and args.default_deadline_ms <= 0:
        raise ServiceConfigError(
            f"--default-deadline-ms must be > 0, got {args.default_deadline_ms}"
        )
    if args.shard_timeout is not None:
        if args.shard_timeout <= 0:
            raise ServiceConfigError(
                f"--shard-timeout must be > 0, got {args.shard_timeout}"
            )
        if not args.shards:
            raise ServiceConfigError("--shard-timeout requires --shards")
    if args.degraded_answers and not args.shards:
        raise ServiceConfigError("--degraded-answers requires --shards")
    if args.max_concurrent is not None and args.max_concurrent < 1:
        raise ServiceConfigError(
            f"--max-concurrent must be >= 1, got {args.max_concurrent}"
        )
    if args.max_queue < 0:
        raise ServiceConfigError(
            f"--max-queue must be >= 0, got {args.max_queue}"
        )
    if args.max_queue and args.max_concurrent is None:
        raise ServiceConfigError("--max-queue requires --max-concurrent")
    if args.approx_default and args.no_approx:
        raise ServiceConfigError(
            "--approx-default requires the approx tier (drop --no-approx)"
        )
    if not 0.0 <= args.approx_recheck <= 1.0:
        raise ServiceConfigError(
            f"--approx-recheck must be within [0, 1], got {args.approx_recheck}"
        )
    options = dict(
        landmark_count=args.k,
        seed=args.seed,
        algorithm=args.algorithm,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl,
        max_workers=args.workers,
        freeze=not args.no_freeze,
        trace_sample=args.trace_sample,
        approx=not args.no_approx,
        approx_default=args.approx_default,
        approx_recheck=args.approx_recheck,
    )
    if args.slow_ms is not None:
        options["slow_ms"] = args.slow_ms
    if args.slow_log_size is not None:
        options["slow_log_size"] = args.slow_log_size
    if args.max_concurrent is not None:
        options["max_concurrent"] = args.max_concurrent
        options["max_queue"] = args.max_queue
    # The default tenant (the one the un-prefixed PR 1 routes alias to)
    # is --graph when given, else the first --tenant; it loads eagerly so
    # the ready line below reports real sizes, the rest warm-start lazily.
    default_name = DEFAULT_TENANT if args.graph is not None else tenants[0][0]
    registry = TenantRegistry(default_tenant=default_name)
    shard_workers = None
    update_wal = None
    tenant_wal = None
    replay = None
    if args.graph is not None:
        shard_options = {}
        if args.shards:
            shard_options = dict(
                shards=args.shards,
                degraded_answers=args.degraded_answers,
                scatter_timeout=args.shard_timeout,
            )
            if args.worker_url:
                shard_options["worker_urls"] = list(args.worker_url)
                if args.worker_probe_interval is not None:
                    shard_options["probe_interval"] = args.worker_probe_interval
        if args.wal is not None or args.follow is not None:
            # Leader and follower recover identically — snapshot (if
            # any) + record replay, fingerprint-verified — and differ
            # only in what happens next: the leader attaches the log so
            # new batches append, the follower tails it read-only.  A
            # sharded leader recovers through ShardedQueryService, so
            # the snapshot adoption and every replayed batch re-cut and
            # re-push worker slices to the logged epoch.
            update_wal = UpdateWal(
                args.wal if args.wal is not None else args.follow,
                compact_every=args.compact_every,
            )
            tenant_wal = update_wal.tenant(DEFAULT_TENANT)
            default_service, replay = recover_service(
                tenant_wal,
                graph_path=args.graph,
                index_path=args.index,
                attach=args.wal is not None,
                service_cls=ShardedQueryService if args.shards else QueryService,
                **shard_options,
                **options,
            )
        elif args.shards:
            default_service = ShardedQueryService.from_files(
                args.graph, args.index, **shard_options, **options
            )
        else:
            default_service = QueryService.from_files(
                args.graph, args.index, **options
            )
        if args.shards and not args.worker_url:
            shard_workers = {
                str(position): worker
                for position, worker in enumerate(default_service.workers)
            }
        registry.add(DEFAULT_TENANT, default_service)
    for name, graph_path, index_path in tenants:
        registry.register_files(name, graph_path, index_path, **options)

    follower = None
    if args.follow is not None:
        # The HTTP gate stays open (allow_updates=True below) so POST
        # /edges reaches the service and gets the follower's structured
        # 403 — "read-only replica" is a more actionable refusal than
        # "updates disabled" — while the tailer republishes below it.
        default_service.read_only = True
        follower = WalFollower(
            default_service, tenant_wal, interval=args.follow_interval
        )
        default_service.replication = follower

    server = create_server(
        registry, args.host, args.port, shard_workers,
        allow_updates=args.allow_updates or follower is not None,
        default_deadline_ms=args.default_deadline_ms,
    )
    host, port = server.server_address[:2]
    service = registry.get(default_name)
    if replay is not None:
        torn = ", tolerated a torn tail" if replay["truncated_tail"] else ""
        print(
            f"wal: replayed {replay['applied']} record(s) "
            f"(skipped {replay['skipped']}{torn}) to epoch "
            f"{replay['epoch']} of {tenant_wal.directory}",
            flush=True,
        )
    if args.warm_cache is not None and Path(args.warm_cache).is_file():
        # A stale warm cache (e.g. written after live updates the TSV on
        # disk never saw) must not block startup: the cache is an
        # optimisation, so refuse-and-continue beats refuse-and-die.
        # With a WAL, the log's epoch→fingerprint history additionally
        # admits snapshots that are verified *ancestors* of the replayed
        # tip — their stats carry over, their pre-tip result entries are
        # dropped instead of warmed stale.
        try:
            warmed = service.load_snapshot(
                args.warm_cache,
                epoch_fingerprints=(
                    tenant_wal.fingerprints if tenant_wal is not None else None
                ),
            )
        except ServiceConfigError as error:
            print(f"ignoring warm cache {args.warm_cache}: {error}", flush=True)
        else:
            stale = (
                f" (dropped {warmed['stale_results']} pre-tip entr"
                f"{'y' if warmed['stale_results'] == 1 else 'ies'})"
                if warmed.get("stale_results")
                else ""
            )
            print(
                f"warmed {warmed['results']} cached result(s) from "
                f"{args.warm_cache}{stale}",
                flush=True,
            )
    graph = service.graph
    index_note = (
        f"{len(service.index.partition.landmarks)} landmarks"
        if service.index is not None
        else "none"
    )
    print(
        f"loaded {graph.name}: |V|={graph.num_vertices} |E|={graph.num_edges} "
        f"|L|={graph.num_labels}; index: {index_note}; "
        f"default algorithm: {service.default_algorithm}",
        flush=True,
    )
    if args.shards:
        plan = service.shard_plan.describe()
        if args.worker_url:
            print(
                f"shards: {args.shards} remote (vertices per shard: "
                f"{plan['vertices_per_shard']}; workers: "
                f"{', '.join(args.worker_url)}; slice epoch "
                f"{service.slice_epoch}, handshake ok)",
                flush=True,
            )
        else:
            print(
                f"shards: {args.shards} (vertices per shard: "
                f"{plan['vertices_per_shard']}; workers at /shard/<id>/expand)",
                flush=True,
            )
    if len(registry) > 1:
        print(
            f"tenants: {', '.join(registry.names())} "
            f"(default: {default_name}; routes: /t/<tenant>/query)",
            flush=True,
        )
    if args.allow_updates:
        durable = (
            f", wal: {tenant_wal.directory} (compact every "
            f"{args.compact_every})"
            if args.wal is not None
            else ""
        )
        print(
            f"live updates: enabled (POST /edges, epoch-swapped{durable})",
            flush=True,
        )
    elif args.wal is not None:
        print(
            f"wal: attached at {tenant_wal.directory} (compact every "
            f"{args.compact_every}; POST /edges still needs --allow-updates)",
            flush=True,
        )
    if follower is not None:
        follower.start()
        print(
            f"follower: tailing {tenant_wal.directory} every "
            f"{args.follow_interval:g}s at epoch {service.epoch.epoch_id} "
            "(writes answered 403)",
            flush=True,
        )
    print(
        f"observability: GET /metrics, GET /debug/slow "
        f"(slow-ms={service.flight.threshold_ms:g}, "
        f"trace-sample={args.trace_sample:g})",
        flush=True,
    )
    resilience_notes = []
    if args.default_deadline_ms is not None:
        resilience_notes.append(
            f"default deadline {args.default_deadline_ms:g}ms"
        )
    if args.shard_timeout is not None:
        resilience_notes.append(f"shard timeout {args.shard_timeout:g}s")
    if args.degraded_answers:
        resilience_notes.append("degraded answers on shard loss")
    if args.max_concurrent is not None:
        resilience_notes.append(
            f"max {args.max_concurrent} concurrent "
            f"(queue {args.max_queue}, then 429)"
        )
    if resilience_notes:
        print(f"fault tolerance: {'; '.join(resilience_notes)}", flush=True)
    if service.approx is not None:
        bounds = service.epoch.bounds
        bounds_note = (
            f"bounds {bounds.mode} ({bounds.component_count} components)"
            if bounds is not None
            else "bounds off"
        )
        print(
            f"approx tier: {bounds_note}; default mode "
            f"{service.approx.default_mode}; "
            f"recheck rate {args.approx_recheck:g} (?mode=approximate)",
            flush=True,
        )
    # Machine-readable ready line: tooling (and the tests) parse the port
    # from it, which is how --port 0 ephemeral binding stays usable.
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if follower is not None and not follower.stop():
            print(
                "warning: follower poll thread did not stop in time; "
                "abandoning it (see replication.stuck in /healthz)",
                flush=True,
            )
        if update_wal is not None:
            update_wal.close()
        if args.warm_cache is not None:
            size = service.save_snapshot(args.warm_cache)
            print(f"saved cache+stats snapshot ({size} bytes) to {args.warm_cache}",
                  flush=True)
    return 0
