"""LSCR query algorithms: UIS (Alg. 1), UIS* (Alg. 2), INS (Alg. 4),
the naive two-procedure baseline of Section 3, and shared plumbing."""

from repro.core.base import LSCRAlgorithm
from repro.core.close import CloseMap, F, N, T
from repro.core.ins import INS
from repro.core.lcr import bfs_distance_ring, lcr_closure, lcr_closure_limited, lcr_reachable
from repro.core.naive import NaiveTwoProcedure
from repro.core.query import LSCRQuery
from repro.core.result import QueryResult, ResultAggregate
from repro.core.uis import UIS
from repro.core.uis_star import UISStar
from repro.core.witness import WitnessPath, find_witness, verify_witness

__all__ = [
    "CloseMap",
    "F",
    "INS",
    "LSCRAlgorithm",
    "LSCRQuery",
    "N",
    "NaiveTwoProcedure",
    "QueryResult",
    "ResultAggregate",
    "T",
    "UIS",
    "UISStar",
    "WitnessPath",
    "bfs_distance_ring",
    "find_witness",
    "lcr_closure",
    "lcr_closure_limited",
    "lcr_reachable",
    "verify_witness",
]
