"""Common driver for the four LSCR algorithms.

:class:`LSCRAlgorithm` resolves the query's vertex names and label mask,
times the run, and packages the telemetry every concrete algorithm
produces into a :class:`~repro.core.result.QueryResult`, so UIS / UIS* /
INS / the naive baseline differ only in their ``_run`` method.  All
algorithms answer the same Boolean question of Definition 2.4 and are
interchangeable; the benchmark harness iterates over them by this
interface.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.core.query import LSCRQuery
from repro.core.result import QueryResult
from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["LSCRAlgorithm"]


class LSCRAlgorithm(ABC):
    """Template for answering :class:`LSCRQuery` on one graph."""

    #: Short display name used in result tables ("UIS", "UIS*", "INS", ...).
    name: str = "?"

    def __init__(self, graph: KnowledgeGraph) -> None:
        self.graph = graph

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.graph.name!r})"

    def answer(self, query: LSCRQuery) -> QueryResult:
        """Answer ``query``, returning the result with telemetry."""
        source = self.graph.vid(query.source)
        target = self.graph.vid(query.target)
        mask = query.labels.mask_for(self.graph)
        started = time.perf_counter()
        verdict, telemetry = self._run(source, target, mask, query)
        elapsed = time.perf_counter() - started
        return QueryResult(
            answer=verdict,
            algorithm=self.name,
            seconds=elapsed,
            passed_vertices=int(telemetry.get("passed_vertices", 0)),
            scck_calls=int(telemetry.get("scck_calls", 0)),
            vsg_size=int(telemetry.get("vsg_size", -1)),
            vsg_seconds=float(telemetry.get("vsg_seconds", 0.0)),
            lcs_calls=int(telemetry.get("lcs_calls", 0)),
            index_resolutions=int(telemetry.get("index_resolutions", 0)),
        )

    def decide(self, query: LSCRQuery) -> bool:
        """Boolean-only convenience wrapper around :meth:`answer`."""
        return self.answer(query).answer

    @abstractmethod
    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        """Answer the resolved query; return ``(verdict, telemetry)``.

        Telemetry keys (all optional): ``passed_vertices``,
        ``scck_calls``, ``vsg_size``, ``vsg_seconds``, ``lcs_calls``,
        ``index_resolutions``.
        """
