"""The LSCR query object (Definition 2.4)."""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint

__all__ = ["LSCRQuery"]


@dataclass(frozen=True)
class LSCRQuery:
    """``Q = (s, t, L, S)``: is there an ``L``-labeled path from ``s`` to
    ``t`` passing through a vertex that satisfies ``S``?

    ``source`` / ``target`` are vertex *names* (resolved against a graph
    by the algorithms); ``labels`` is the label constraint ``L``;
    ``constraint`` is the substructure constraint ``S``.
    """

    source: Hashable
    target: Hashable
    labels: LabelConstraint
    constraint: SubstructureConstraint

    @classmethod
    def create(
        cls,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: SubstructureConstraint | str,
    ) -> "LSCRQuery":
        """Convenience constructor accepting raw labels / SPARQL text."""
        if not isinstance(labels, LabelConstraint):
            labels = LabelConstraint(labels)
        if isinstance(constraint, str):
            constraint = SubstructureConstraint.from_sparql(constraint)
        return cls(source=source, target=target, labels=labels, constraint=constraint)

    def describe(self) -> str:
        """One-line rendering used by the bench harness logs."""
        return (
            f"Q(s={self.source!r}, t={self.target!r}, "
            f"L={sorted(self.labels.labels)}, S={self.constraint.to_sparql()})"
        )
