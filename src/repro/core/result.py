"""Query answers with the measurements the paper reports.

Section 6 evaluates two quantities per query group: the average running
time and the average number of vertices whose ``close`` state is not
``N`` ("passed vertices").  :class:`QueryResult` carries both, plus
secondary counters that the discussion sections refer to (``SCck``
invocations for UIS, |V(S,G)| and the subgraph-matching time for
UIS*/INS, index-pruning hits for INS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryResult", "ResultAggregate"]


@dataclass(frozen=True)
class QueryResult:
    """The outcome of answering one LSCR query with one algorithm."""

    answer: bool
    algorithm: str
    #: Wall-clock seconds for the search itself (excludes index build,
    #: includes the V(S,G) computation for UIS*/INS, as in the paper).
    seconds: float
    #: Vertices whose ``close`` state differs from ``N`` on return.
    passed_vertices: int
    #: ``SCck`` invocations (UIS; zero for the V(S,G)-based algorithms).
    scck_calls: int = 0
    #: Size of ``V(S, G)`` (UIS*/INS; -1 when not computed).
    vsg_size: int = -1
    #: Seconds spent obtaining ``V(S, G)`` via the SPARQL engine.
    vsg_seconds: float = 0.0
    #: Invocations of the ``LCS`` subroutine (UIS*/INS).
    lcs_calls: int = 0
    #: Vertices resolved from the local index instead of traversal (INS:
    #: sum of ``Cut`` marks, ``Push`` enqueues and ``Check`` hits).
    index_resolutions: int = 0
    #: Degradation marker set by the sharded coordinator when shards were
    #: unavailable: ``{"missing_shards": [...], "verdict": "reachable" |
    #: "unknown"}``.  ``None`` for exact answers.  Sound by edge-subset
    #: monotonicity: a closure over surviving slices can prove reachable
    #: but never unreachable, so ``answer=False`` degrades to "unknown".
    degraded: dict | None = None

    def __bool__(self) -> bool:
        return self.answer


@dataclass
class ResultAggregate:
    """Streaming mean of results for one (algorithm, query group) cell."""

    algorithm: str = ""
    count: int = 0
    total_seconds: float = 0.0
    total_passed: int = 0
    true_answers: int = 0
    results: list[QueryResult] = field(default_factory=list, repr=False)
    keep_results: bool = False

    def add(self, result: QueryResult) -> None:
        """Fold one result into the aggregate."""
        if not self.algorithm:
            self.algorithm = result.algorithm
        self.count += 1
        self.total_seconds += result.seconds
        self.total_passed += result.passed_vertices
        if result.answer:
            self.true_answers += 1
        if self.keep_results:
            self.results.append(result)

    @property
    def mean_seconds(self) -> float:
        """Average running time (the paper's first metric)."""
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def mean_milliseconds(self) -> float:
        """Average running time in ms (the unit of Figures 10–15)."""
        return self.mean_seconds * 1000.0

    @property
    def mean_passed_vertices(self) -> float:
        """Average passed-vertex number (the paper's second metric)."""
        return self.total_passed / self.count if self.count else 0.0

    def merge(self, other: "ResultAggregate") -> None:
        """Fold another aggregate in.

        Used to combine aggregates accumulated independently — per
        worker thread in the service, per shard in the bench harness —
        into one cell without replaying individual results.
        """
        if not self.algorithm:
            self.algorithm = other.algorithm
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.total_passed += other.total_passed
        self.true_answers += other.true_answers
        if self.keep_results and other.results:
            self.results.extend(other.results)

    def as_dict(self) -> dict[str, float | int | str]:
        """JSON-ready summary (the service's ``GET /stats`` payload)."""
        return {
            "algorithm": self.algorithm,
            "count": self.count,
            "true_answers": self.true_answers,
            "total_seconds": self.total_seconds,
            "mean_milliseconds": self.mean_milliseconds,
            "mean_passed_vertices": self.mean_passed_vertices,
        }
