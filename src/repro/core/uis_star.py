"""UIS* — the SPARQL-engine-assisted search of Algorithm 2.

UIS* first materialises ``V(S, G)`` (all vertices satisfying the
substructure constraint) through the SPARQL engine, then reduces the
LSCR query to label-constrained reachability:
``∃v ∈ V(S,G): s ⇝_L v ∧ v ⇝_L t``.  The key to its ``O(|V| + |E|)``
bound (Theorem 4.5) is that all these checks share one global stack and
one ``close`` map through the ``LCS`` subroutine:

* ``LCS(s, v, L, F)`` *continues* the forward search from wherever the
  frontier currently is, marking newly discovered vertices ``F``
  (Lemma 4.2: ``close[v] ≠ N  ⇔  s ⇝_L v``);
* ``LCS(v, t, L, T)`` runs the "second leg" from a satisfying vertex,
  marking ``T`` and re-visiting ``F`` vertices at most once more.

The paper's Section 6 observation that UIS* often *loses* to UIS comes
from the arbitrary order of ``V(S, G)`` ("the order of processing the
elements in V(S,G) dominates the efficiency", Theorem 4.1): a bad first
candidate drags the search into a useless corner of the graph.  Pass an
``rng`` to shuffle the candidate order per query, reproducing that
behaviour; by default the engine's first-solution order is used.
"""

from __future__ import annotations

import random
import time

from repro.core.base import LSCRAlgorithm
from repro.core.close import F, N, T
from repro.core.query import LSCRQuery
from repro.graph.labeled_graph import KnowledgeGraph
from repro.resilience.deadline import current_deadline

__all__ = ["UISStar"]


class UISStar(LSCRAlgorithm):
    """Algorithm 2: improved uninformed search via ``V(S, G)``."""

    name = "UIS*"

    def __init__(
        self,
        graph: KnowledgeGraph,
        rng: random.Random | None = None,
        candidate_cache: object | None = None,
    ) -> None:
        super().__init__(graph)
        #: Optional shuffler for ``V(S, G)`` (paper: the set is disordered).
        self.rng = rng
        #: Optional :class:`~repro.service.cache.CandidateCache`; when
        #: set, repeated constraints skip the SPARQL engine entirely.
        self.candidate_cache = candidate_cache

    def _candidates(self, query: LSCRQuery) -> list[int]:
        """``V(S, G)`` — through the shared candidate cache when present."""
        if self.candidate_cache is not None:
            return list(self.candidate_cache.get(query.constraint, self.graph))
        return query.constraint.satisfying_vertices(self.graph)

    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        graph = self.graph

        vsg_started = time.perf_counter()
        candidates = self._candidates(query)              # SPARQL engine / cache
        vsg_seconds = time.perf_counter() - vsg_started
        if self.rng is not None:
            self.rng.shuffle(candidates)

        # Allocation-free hot-loop state: the close surjection lives in a
        # bare bytearray (CloseMap's monotonicity is enforced here by the
        # branch structure itself: F writes only over N, T writes only
        # over N/F) and passed_vertices is counted inline, so the
        # per-edge work is index reads/writes with zero method calls.
        # Expansion iterates flat target sequences — contiguous CSR
        # slices behind a vertex-mask pre-test on frozen graphs.
        states = bytearray(graph.num_vertices)
        out_targets = graph.out_targets_masked
        # Request deadline: captured once; `is not None` per pop when off.
        deadline = current_deadline()
        stack: list[int] = [source]                       # line 1
        states[source] = F                                # line 2
        passed = 1
        lcs_calls = 0

        telemetry = {
            "vsg_size": len(candidates),
            "vsg_seconds": vsg_seconds,
        }

        def finish(verdict: bool) -> tuple[bool, dict[str, float]]:
            telemetry["passed_vertices"] = passed
            telemetry["lcs_calls"] = lcs_calls
            return verdict, telemetry

        # Trivial path <s>: s == t and s satisfies S (DESIGN.md §5.1).
        candidate_set = set(candidates)
        if source == target and source in candidate_set:
            return finish(True)

        def lcs(s_star: int, t_star: int, mode: int) -> bool:     # lines 14-24
            """``LCS(s*, t*, L, B)`` — shared-state reachability leg.

            When ``t*`` turns up mid-way through a vertex's edge list,
            the remaining edges are still processed before returning:
            the stack is shared across invocations (that is what makes
            UIS* O(|V| + |E|)), and abandoning a half-expanded vertex
            would silently drop part of the frontier for later legs.
            """
            nonlocal lcs_calls, passed
            lcs_calls += 1
            if mode == T:                                          # line 15
                if s_star == t_star:
                    # s ⇝_L s* and s* satisfies S, so s* = t* answers Q
                    # (guard for close[t]=F candidates; DESIGN.md §5.1).
                    return True
                if states[s_star] == N:
                    passed += 1
                states[s_star] = T
                stack.append(s_star)                               # line 16
            while stack and (mode == F or states[stack[-1]] == T):  # line 17
                if deadline is not None:
                    deadline.check(
                        "uis-star", passed_vertices=passed, lcs_calls=lcs_calls
                    )
                u = stack.pop()                                    # line 18
                found = False
                for w in out_targets(u, mask):                     # line 19
                    state_w = states[w]
                    if (mode == T and state_w != T) or (
                        mode == F and state_w == N
                    ):                                             # line 20
                        stack.append(w)
                        states[w] = mode                           # line 21
                        if state_w == N:
                            passed += 1
                        if w == t_star:                            # lines 22-23
                            found = True
                if found:
                    return True
            if mode == T:
                # Line 24: drop stale stack entries upgraded to T by this
                # invocation so the F-frontier underneath is clean again.
                stack[:] = [x for x in stack if states[x] != T]
            return False

        for v in candidates:                                       # line 3
            state_v = states[v]
            if state_v == N:                                       # line 4
                # Line 5's `v = s` arm is unreachable: close[s] = F since
                # line 2, so only `v = t` can occur here.
                if v == target:
                    return finish(lcs(source, target, F))          # line 6
                if lcs(source, v, F):                              # line 7
                    if lcs(v, target, T):                          # line 8
                        return finish(True)                        # line 9
            elif state_v == F:                                     # line 10
                if lcs(v, target, T):                              # line 11
                    return finish(True)                            # line 12
        return finish(False)                                       # line 13
