"""UIS* — the SPARQL-engine-assisted search of Algorithm 2.

UIS* first materialises ``V(S, G)`` (all vertices satisfying the
substructure constraint) through the SPARQL engine, then reduces the
LSCR query to label-constrained reachability:
``∃v ∈ V(S,G): s ⇝_L v ∧ v ⇝_L t``.  The key to its ``O(|V| + |E|)``
bound (Theorem 4.5) is that all these checks share one global stack and
one ``close`` map through the ``LCS`` subroutine:

* ``LCS(s, v, L, F)`` *continues* the forward search from wherever the
  frontier currently is, marking newly discovered vertices ``F``
  (Lemma 4.2: ``close[v] ≠ N  ⇔  s ⇝_L v``);
* ``LCS(v, t, L, T)`` runs the "second leg" from a satisfying vertex,
  marking ``T`` and re-visiting ``F`` vertices at most once more.

The paper's Section 6 observation that UIS* often *loses* to UIS comes
from the arbitrary order of ``V(S, G)`` ("the order of processing the
elements in V(S,G) dominates the efficiency", Theorem 4.1): a bad first
candidate drags the search into a useless corner of the graph.  Pass an
``rng`` to shuffle the candidate order per query, reproducing that
behaviour; by default the engine's first-solution order is used.
"""

from __future__ import annotations

import random
import time

from repro.core.base import LSCRAlgorithm
from repro.core.close import CloseMap, F, N, T
from repro.core.query import LSCRQuery
from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["UISStar"]


class UISStar(LSCRAlgorithm):
    """Algorithm 2: improved uninformed search via ``V(S, G)``."""

    name = "UIS*"

    def __init__(
        self,
        graph: KnowledgeGraph,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(graph)
        #: Optional shuffler for ``V(S, G)`` (paper: the set is disordered).
        self.rng = rng

    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        graph = self.graph

        vsg_started = time.perf_counter()
        candidates = query.constraint.satisfying_vertices(graph)  # SPARQL engine
        vsg_seconds = time.perf_counter() - vsg_started
        if self.rng is not None:
            self.rng.shuffle(candidates)

        close = CloseMap(graph.num_vertices)
        stack: list[int] = [source]                       # line 1
        close[source] = F                                 # line 2
        lcs_calls = 0

        telemetry = {
            "vsg_size": len(candidates),
            "vsg_seconds": vsg_seconds,
        }

        def finish(verdict: bool) -> tuple[bool, dict[str, float]]:
            telemetry["passed_vertices"] = close.passed_count
            telemetry["lcs_calls"] = lcs_calls
            return verdict, telemetry

        # Trivial path <s>: s == t and s satisfies S (DESIGN.md §5.1).
        candidate_set = set(candidates)
        if source == target and source in candidate_set:
            return finish(True)

        def lcs(s_star: int, t_star: int, mode: int) -> bool:     # lines 14-24
            """``LCS(s*, t*, L, B)`` — shared-state reachability leg.

            When ``t*`` turns up mid-way through a vertex's edge list,
            the remaining edges are still processed before returning:
            the stack is shared across invocations (that is what makes
            UIS* O(|V| + |E|)), and abandoning a half-expanded vertex
            would silently drop part of the frontier for later legs.
            """
            nonlocal lcs_calls
            lcs_calls += 1
            if mode == T:                                          # line 15
                if s_star == t_star:
                    # s ⇝_L s* and s* satisfies S, so s* = t* answers Q
                    # (guard for close[t]=F candidates; DESIGN.md §5.1).
                    return True
                close[s_star] = T
                stack.append(s_star)                               # line 16
            while stack and (mode == F or close[stack[-1]] == T):  # line 17
                u = stack.pop()                                    # line 18
                found = False
                for _label, w in graph.out_masked(u, mask):        # line 19
                    state_w = close[w]
                    if (mode == T and state_w != T) or (
                        mode == F and state_w == N
                    ):                                             # line 20
                        stack.append(w)
                        close[w] = mode                            # line 21
                        if w == t_star:                            # lines 22-23
                            found = True
                if found:
                    return True
            if mode == T:
                # Line 24: drop stale stack entries upgraded to T by this
                # invocation so the F-frontier underneath is clean again.
                stack[:] = [x for x in stack if close[x] != T]
            return False

        for v in candidates:                                       # line 3
            state_v = close[v]
            if state_v == N:                                       # line 4
                # Line 5's `v = s` arm is unreachable: close[s] = F since
                # line 2, so only `v = t` can occur here.
                if v == target:
                    return finish(lcs(source, target, F))          # line 6
                if lcs(source, v, F):                              # line 7
                    if lcs(v, target, T):                          # line 8
                        return finish(True)                        # line 9
            elif state_v == F:                                     # line 10
                if lcs(v, target, T):                              # line 11
                    return finish(True)                            # line 12
        return finish(False)                                       # line 13
