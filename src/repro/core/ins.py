"""INS — the informed search of Algorithm 4.

INS is UIS* with three additions powered by the local index
(:mod:`repro.index.local_index`):

* a **priority heap H** orders the candidates of ``V(S, G)`` so that the
  most promising satisfying vertex is tried first — candidates already
  known reachable (``close = F``) before unexplored ones, then by the
  region-correlation distance estimate ``ρ``, landmarks first
  (Section 5.2's three H rules);
* a **priority queue Q** replaces the global stack, ordering the search
  frontier: ``T``-state vertices first (which is what makes the
  ``B = T`` leg terminate exactly like UIS*'s stack discipline), then
  vertices in the target's region, landmarks, smaller ``ρ``, vertices
  whose region landmark is still unexplored, insertion order (the six
  Q rules);
* **index pruning** at landmarks: an edge into a landmark ``w`` answers
  the whole region at once — ``Check(II[w], t*)`` short-circuits when
  the target lives in ``F(w)``, ``Cut(II[w])`` marks every in-region
  vertex reachable under the constraint without traversing it, and
  ``Push(EIT[w])`` jumps the frontier straight to the region's border
  exits.

Priority keys are computed at push time with lazy deletion for
re-pushes, and ``Push`` short-circuits when it enqueues ``t*`` (both
resolutions of under-specification in the extended abstract; DESIGN.md
§5.5–5.6 give the completeness argument).
"""

from __future__ import annotations

import heapq
import random
import time

from repro.core.base import LSCRAlgorithm
from repro.core.close import CloseMap, F, N, T
from repro.core.query import LSCRQuery
from repro.exceptions import IndexingError
from repro.graph.csr import base_graph
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import LocalIndex, build_local_index
from repro.resilience.deadline import current_deadline

__all__ = ["INS"]

#: Heaps smaller than this are never compacted — rebuild overhead would
#: exceed the cost of just draining the stale entries.
_COMPACT_MIN_HEAP = 64


class _LazyPriorityQueue:
    """Min-heap with per-vertex lazy deletion and periodic compaction.

    "For two elements x and y in Q, if x and y represent a same vertex
    in G, Q deletes the first added element" — re-pushing a vertex
    invalidates its previous entry.  Stale entries are dropped lazily on
    pop; when they outnumber the live ones (long multi-leg LCS searches
    re-push frontier vertices constantly) the heap is rebuilt from the
    live entries alone, so memory stays proportional to the frontier.
    """

    __slots__ = ("_heap", "_live", "_seq")

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._live: dict[int, list] = {}
        self._seq = 0

    def push(self, vertex: int, key: tuple) -> None:
        stale = self._live.get(vertex)
        if stale is not None:
            stale[2] = None  # lazy-delete the first added element
        entry = [key, self._seq, vertex]
        self._seq += 1
        self._live[vertex] = entry
        heapq.heappush(self._heap, entry)
        if len(self._heap) > _COMPACT_MIN_HEAP and len(self._heap) > 2 * len(
            self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries only (O(live))."""
        self._heap = [entry for entry in self._heap if entry[2] is not None]
        heapq.heapify(self._heap)

    def peek(self) -> int | None:
        while self._heap:
            entry = self._heap[0]
            if entry[2] is not None:
                return entry[2]
            heapq.heappop(self._heap)
        return None

    def pop(self) -> int | None:
        while self._heap:
            entry = heapq.heappop(self._heap)
            vertex = entry[2]
            if vertex is not None:
                del self._live[vertex]
                return vertex
        return None

    def __bool__(self) -> bool:
        return self.peek() is not None


class INS(LSCRAlgorithm):
    """Algorithm 4: local-index-guided informed LSCR search."""

    name = "INS"

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: LocalIndex | None = None,
        rng: random.Random | None = None,
        use_index_pruning: bool = True,
        use_priorities: bool = True,
        candidate_cache: object | None = None,
    ) -> None:
        super().__init__(graph)
        if index is None:
            index = build_local_index(graph)
        if base_graph(index.graph) is not base_graph(graph):
            # A graph and its frozen CSR snapshots intern identically, so
            # an index built against either answers for both.
            raise IndexingError("the local index was built for a different graph")
        self.index = index
        #: Optional shuffler applied to V(S,G) *before* heap ordering, so
        #: ties break randomly as with a real engine's disordered output.
        self.rng = rng
        #: Optional :class:`~repro.service.cache.CandidateCache`; when
        #: set, repeated constraints skip the SPARQL engine entirely.
        self.candidate_cache = candidate_cache
        #: Ablation switch: disable Check/Cut/Push (landmarks become
        #: ordinary vertices; only the orderings remain).
        self.use_index_pruning = use_index_pruning
        #: Ablation switch: disable the *informed* key components.  Rule
        #: (i) of the Q ordering (T before F) is kept even here — it is
        #: what terminates the B=T legs correctly, not a heuristic.
        self.use_priorities = use_priorities
        if not (use_index_pruning and use_priorities):
            suffixes = []
            if not use_index_pruning:
                suffixes.append("noprune")
            if not use_priorities:
                suffixes.append("noprio")
            self.name = "INS-" + "-".join(suffixes)

    # ------------------------------------------------------------------

    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        graph = self.graph
        index = self.index

        vsg_started = time.perf_counter()
        if self.candidate_cache is not None:               # cache / SPARQL engine
            candidates = list(self.candidate_cache.get(query.constraint, graph))
        else:
            candidates = query.constraint.satisfying_vertices(graph)
        vsg_seconds = time.perf_counter() - vsg_started
        if self.rng is not None:
            self.rng.shuffle(candidates)

        close = CloseMap(graph.num_vertices)
        # Request deadline: captured once; `is not None` per pop when off.
        deadline = current_deadline()
        telemetry: dict[str, float] = {
            "vsg_size": len(candidates),
            "vsg_seconds": vsg_seconds,
        }
        lcs_calls = 0
        index_resolutions = 0
        # Vertices first marked by the inlined per-edge writes in lcs()
        # below; CloseMap counts the rest (Cut/Push resolutions, seeds).
        inline_passed = 0

        def finish(verdict: bool) -> tuple[bool, dict[str, float]]:
            telemetry["passed_vertices"] = close.passed_count + inline_passed
            telemetry["lcs_calls"] = lcs_calls
            telemetry["index_resolutions"] = index_resolutions
            return verdict, telemetry

        candidate_set = set(candidates)
        if source == target and source in candidate_set:
            return finish(True)

        # ------------------------------------------------------------------
        # Priority queue Q (the frontier; line 2).  Key components follow
        # the six Q rules of Section 5.2; ``t*`` of the current LCS
        # invocation parameterises rules (ii) and (iv).
        # ------------------------------------------------------------------
        frontier = _LazyPriorityQueue()
        # Per-edge invariants, hoisted: the current t* and its region
        # change only between LCS legs; ρ depends only on the region
        # pair, so it is memoised (pre-quantised) across pushes.  The key
        # is packed into one int — tuple comparisons in the heap were a
        # measurable cost — with the six Q rules as bit fields, most
        # significant first:
        #   bit 18: close[u] != T            (rule i)
        #   bit 17: region != t*'s region    (rule ii)
        #   bit 16: u ∉ I                    (rule iii)
        #   bits 1-15: quantised ρ(u, t*)    (rule iv)
        #   bit 0: region landmark explored  (rule v)
        # (rule vi, insertion order, is the queue's sequence tiebreak).
        region_of = index.partition.region
        landmark_set = index._landmark_set
        # Fast path over CloseMap: reads everywhere, plus the inlined
        # per-edge writes in lcs() (monotone by branch structure; their
        # passed count is tracked in inline_passed).  All other writes
        # go via close.
        states = close._states
        current_target = [target]
        current_target_region = [index.region_of(target)]
        # Memoises the whole region-dependent key portion — rule (ii)'s
        # bit plus the quantised ρ field — so a push re-computes only the
        # three state-dependent bits.  Cleared when t* changes.
        region_bits_cache: dict[int, int] = {}

        def region_bits(region: int) -> int:
            target_region = current_target_region[0]
            if region < 0 or target_region < 0:
                rho = 2.0
            elif region == target_region:
                rho = 0.0
            else:
                rho = 1.0 / (1.0 + index.correlation(region, target_region))
            bits = min(32767, int(rho * 16383.5)) << 1            # rule (iv)
            if region < 0 or region != target_region:             # rule (ii)
                bits |= 1 << 17
            region_bits_cache[region] = bits
            return bits

        use_priorities = self.use_priorities

        def frontier_key(vertex: int) -> int:
            key = 0
            if states[vertex] != T:                               # rule (i)
                key |= 1 << 18
            if not use_priorities:
                # Ablation: rules (ii)-(v) off; FIFO within each state
                # class via the queue's sequence tiebreak.
                return key
            region = region_of[vertex]
            bits = region_bits_cache.get(region)
            key |= bits if bits is not None else region_bits(region)
            if vertex not in landmark_set:                        # rule (iii)
                key |= 1 << 16
            if region < 0 or states[region] != N:                 # rule (v)
                key |= 1
            return key

        frontier.push(source, frontier_key(source))               # line 2
        close[source] = F                                         # line 3

        # Landmark regions already resolved through the index, per mode;
        # Cut/Push are idempotent so each (landmark, mode) runs once.
        # The filtered target lists are memoised inside the index itself
        # (per landmark and mask), shared across queries and sessions.
        resolved_f: set[int] = set()
        resolved_t: set[int] = set()

        def resolve_landmark(w: int, mode: int, t_star: int) -> bool:
            """Lines 24-25: Cut(II[w]) and Push(EIT[w]); True if t* found."""
            nonlocal index_resolutions, inline_passed
            done = resolved_t if mode == T else resolved_f
            if w in done or w in resolved_t:
                return False
            done.add(w)
            for x in index.cut_targets(w, mask):          # Cut: mark, no enqueue
                state_x = states[x]
                if state_x != T and (mode == T or state_x == N):
                    states[x] = mode
                    if state_x == N:
                        inline_passed += 1
                    index_resolutions += 1
            found = False
            for x in index.push_targets(w, mask):         # Push: mark + enqueue
                state_x = states[x]
                if (mode == T and state_x != T) or (mode == F and state_x == N):
                    states[x] = mode
                    if state_x == N:
                        inline_passed += 1
                    frontier.push(x, frontier_key(x))
                    index_resolutions += 1
                    if x == t_star:
                        found = True
            return found

        def lcs(s_star: int, t_star: int, mode: int) -> bool:     # line 16
            # As in UIS*, a vertex's remaining edges are drained before an
            # early return: the priority queue is shared across LCS legs
            # and must not lose part of a half-expanded frontier vertex.
            nonlocal index_resolutions
            nonlocal lcs_calls
            nonlocal inline_passed
            lcs_calls += 1
            current_target[0] = t_star
            current_target_region[0] = region_of[t_star]
            region_bits_cache.clear()
            target_region = current_target_region[0]
            resolved = resolved_t if mode == T else resolved_f
            # Hottest loop of the whole system: expansion iterates flat
            # target sequences — on a frozen graph, one vertex-mask AND
            # rejects label-infeasible vertices outright and contiguous
            # CSR label-slices replace the per-vertex dict walk.
            out_targets = graph.out_targets_masked
            prune = self.use_index_pruning
            if mode == T:                                         # lines 17-18
                if s_star == t_star:
                    return True
                close[s_star] = T
                frontier.push(s_star, frontier_key(s_star))
            while True:                                           # line 19
                if deadline is not None:
                    deadline.check(
                        "ins",
                        passed_vertices=close.passed_count + inline_passed,
                        lcs_calls=lcs_calls,
                    )
                top = frontier.peek()
                if top is None:
                    break
                if mode == T and states[top] != T:
                    break
                u = frontier.pop()
                found = False
                for w in out_targets(u, mask):                    # line 21
                    if prune and w in landmark_set:
                        # Line 22: t*.AF = w implies w ∈ I, so the
                        # Check shortcut lives inside the landmark
                        # branch — and the landmark is still resolved
                        # (Cut/Push) so its region stays in the shared
                        # frontier for later LCS legs.
                        if target_region == w and index.check(
                            w, t_star, mask
                        ):                                        # lines 22-23
                            index_resolutions += 1
                            found = True
                        if w not in resolved and w not in resolved_t:
                            if resolve_landmark(w, mode, t_star):  # 24-25
                                found = True
                    else:
                        state_w = states[w]
                        if state_w == N or (state_w == F and mode == T):  # 26
                            states[w] = mode                      # line 27
                            if state_w == N:
                                inline_passed += 1
                            frontier.push(w, frontier_key(w))
                            if w == t_star:                       # lines 28-29
                                found = True
                if found:
                    return True
            return False                                          # line 30

        # ------------------------------------------------------------------
        # Priority heap H over V(S, G) (line 1).  Keys follow the three H
        # rules; entries are re-keyed lazily when their close state has
        # advanced since they were pushed.
        # ------------------------------------------------------------------
        # ρ depends only on the two endpoint regions and one endpoint is
        # fixed per direction, so the H keys are memoised by region —
        # |regions| computations instead of one per (re-)push.
        heap_rho_target: dict[int, float] = {}
        heap_rho_source: dict[int, float] = {}

        def heap_key(vertex: int, state: int) -> tuple:
            if not self.use_priorities:
                return (0,)  # candidate insertion order only
            region = region_of[vertex]
            if state == F:                       # known reachable: rule (i)-(ii)
                rho = heap_rho_target.get(region)
                if rho is None:
                    rho = heap_rho_target[region] = index.rho(vertex, target)
                return (0, rho, 0 if vertex in landmark_set else 1)
            rho = heap_rho_source.get(region)
            if rho is None:
                rho = heap_rho_source[region] = index.rho(source, vertex)
            return (1, rho, 0 if vertex in landmark_set else 1)

        # Build-then-heapify is O(|V(S,G)|) against O(n log n) pushes.
        heap: list[tuple] = [
            (heap_key(v, states[v]), order, v, states[v])
            for order, v in enumerate(candidates)
        ]
        heapq.heapify(heap)

        while heap:                                               # line 4
            key, order, v, pushed_state = heapq.heappop(heap)     # line 5
            state = states[v]
            if state == T:
                # Already on a proved satisfying path whose T-search has
                # been exhausted; nothing new can come from v.
                continue
            if state != pushed_state:
                heapq.heappush(heap, (heap_key(v, state), order, v, state))
                continue
            if state == N:                                        # line 6
                if v == target:                                   # lines 7-8
                    return finish(lcs(source, target, F))
                if lcs(source, v, F):                             # line 9
                    if lcs(v, target, T):                         # lines 10-11
                        return finish(True)
            elif state == F:                                      # lines 12-14
                if lcs(v, target, T):
                    return finish(True)
        return finish(False)                                      # line 15
