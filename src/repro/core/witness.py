"""Witness extraction: *which* path answers a true LSCR query.

The paper's algorithms are decision procedures, but its motivating
application (criminal link analysis, Figure 1) needs the evidence: the
actual transaction chain and the middleman who satisfies the
substructure constraint.  This module adds that capability on top of the
same semantics.

The construction makes the ``close`` surjection's two informative states
explicit as a two-layer product graph:

* layer 0 — reached under ``L`` without having passed a satisfying
  vertex yet (the ``F`` state);
* layer 1 — reached having passed one (the ``T`` state);
* edges ``(u, i) → (v, i)`` for every graph edge with label in ``L``,
  plus an ε-transition ``(u, 0) → (u, 1)`` whenever ``u ∈ V(S, G)``.

``Q`` is true iff ``(t, 1)`` is reachable from ``(s, 0)``; a BFS with
parent pointers yields a *shortest* witness (fewest edges), and the ε
step pinpoints the satisfying vertex.  Cost is ``O(|V| + |E|)`` on top
of one ``V(S, G)`` evaluation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass

from repro.core.query import LSCRQuery
from repro.graph.labeled_graph import KnowledgeGraph

__all__ = ["WitnessPath", "find_witness", "verify_witness"]


@dataclass(frozen=True)
class WitnessPath:
    """A concrete path certifying a true LSCR query.

    ``edges`` is the path as ``(source, label, target)`` name triples
    (empty for the trivial ``s == t`` case); ``satisfying_vertex`` is a
    vertex on the path that satisfies the substructure constraint.
    """

    edges: tuple[tuple[Hashable, str, Hashable], ...]
    satisfying_vertex: Hashable

    def vertices(self) -> tuple[Hashable, ...]:
        """The vertex sequence of the path."""
        if not self.edges:
            return (self.satisfying_vertex,)
        return tuple([self.edges[0][0]] + [edge[2] for edge in self.edges])

    def __len__(self) -> int:
        return len(self.edges)


def find_witness(
    graph: KnowledgeGraph,
    query: LSCRQuery,
    satisfying: set[int] | None = None,
) -> WitnessPath | None:
    """Return a shortest witness path for ``query``, or None if false.

    ``find_witness(g, q) is not None`` is exactly the LSCR answer, so
    this doubles as a fourth independent decision procedure (used as
    such by the property tests).  Callers that already hold ``V(S, G)``
    for this graph (the service's candidate cache) can pass it as
    ``satisfying`` to skip re-running the SPARQL evaluation.
    """
    source = graph.vid(query.source)
    target = graph.vid(query.target)
    mask = query.labels.mask_for(graph)
    if satisfying is None:
        satisfying = set(query.constraint.satisfying_vertices(graph))

    n = graph.num_vertices
    # parent[layer][v] = (previous vertex, label id, previous layer) or
    # None for unvisited; the source of layer 0 is its own root.
    parent: list[list[tuple[int, int, int] | None]] = [[None] * n, [None] * n]
    visited = [bytearray(n), bytearray(n)]

    start_layer = 1 if source in satisfying else 0
    visited[start_layer][source] = 1
    if start_layer == 1:
        visited[0][source] = 1
    queue: deque[tuple[int, int]] = deque(((source, start_layer),))

    if source == target and start_layer == 1:
        return WitnessPath(edges=(), satisfying_vertex=query.source)

    goal: tuple[int, int] | None = None
    while queue and goal is None:
        u, layer = queue.popleft()
        for label_id, w in graph.out_masked(u, mask):
            new_layer = layer
            if layer == 0 and w in satisfying:
                new_layer = 1
            if not visited[new_layer][w]:
                visited[new_layer][w] = 1
                parent[new_layer][w] = (u, label_id, layer)
                if new_layer == 1 and w == target:
                    goal = (w, new_layer)
                    break
                queue.append((w, new_layer))

    if goal is None:
        return None

    # Walk parents back to the source, collecting edges and the first
    # layer-transition vertex (the satisfying one).
    edges: list[tuple[Hashable, str, Hashable]] = []
    satisfying_vertex: Hashable | None = None
    vertex, layer = goal
    while not (vertex == source and layer == start_layer):
        step = parent[layer][vertex]
        assert step is not None, "broken parent chain"
        previous, label_id, previous_layer = step
        edges.append(
            (graph.name_of(previous), graph.label_name(label_id), graph.name_of(vertex))
        )
        if layer == 1 and previous_layer == 0:
            satisfying_vertex = graph.name_of(vertex)
        vertex, layer = previous, previous_layer
    edges.reverse()
    if satisfying_vertex is None:
        # The layer never transitioned mid-path: the source itself
        # satisfied the constraint (start_layer == 1).
        satisfying_vertex = query.source
    return WitnessPath(edges=tuple(edges), satisfying_vertex=satisfying_vertex)


def verify_witness(
    graph: KnowledgeGraph,
    query: LSCRQuery,
    witness: WitnessPath,
) -> bool:
    """Check a witness against Definition 2.4 (used by tests).

    Validates that the edges exist, form a path from ``s`` to ``t``,
    carry only labels from ``L``, and that the claimed satisfying vertex
    lies on the path and satisfies ``S``.
    """
    vertices = witness.vertices()
    if not witness.edges:
        if query.source != query.target or witness.satisfying_vertex != query.source:
            return False
    else:
        if vertices[0] != query.source or vertices[-1] != query.target:
            return False
        for source, label, target in witness.edges:
            if label not in query.labels:
                return False
            if not graph.has_edge_named(source, label, target):
                return False
    if witness.satisfying_vertex not in vertices:
        return False
    return query.constraint.satisfied_by(graph, graph.vid(witness.satisfying_vertex))
