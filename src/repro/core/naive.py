"""The Section 3 two-procedure baseline — and the library's test oracle.

The paper opens its algorithmic discussion by analysing what plain
DFS/BFS costs on LSCR queries: one procedure explores the space ``s``
reaches under the label constraint, evaluating ``SCck`` on every vertex
it discovers; whenever a satisfying vertex ``v`` turns up, a second
procedure checks ``v ⇝_L t`` from scratch.  Worst case
``O(|V| · (|V| + |E|))`` (Theorem 3.1) — the motivation for UIS.

The implementation is deliberately simple and obviously correct; the
property-based tests use it as ground truth for UIS / UIS* / INS.
"""

from __future__ import annotations

from collections import deque

from repro.constraints.substructure import SubstructureChecker
from repro.core.base import LSCRAlgorithm
from repro.core.lcr import lcr_reachable
from repro.core.query import LSCRQuery
from repro.resilience.deadline import current_deadline

__all__ = ["NaiveTwoProcedure"]


class NaiveTwoProcedure(LSCRAlgorithm):
    """Direct BFS/BFS composition with per-vertex ``SCck`` checks."""

    name = "Naive"

    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        checker = SubstructureChecker(self.graph, query.constraint)

        # Procedure one: BFS over the label-feasible space from `source`,
        # testing every discovered vertex (including `source` itself).
        # Expansion iterates flat target sequences (contiguous CSR slices
        # behind a vertex-mask pre-test on frozen graphs).
        out_targets = self.graph.out_targets_masked
        visited = bytearray(self.graph.num_vertices)
        visited[source] = 1
        passed = 1
        queue = deque((source,))
        if checker(source) and lcr_reachable(self.graph, source, target, mask):
            return True, {"passed_vertices": passed, "scck_calls": checker.calls}
        deadline = current_deadline()
        while queue:
            if deadline is not None:
                deadline.check("naive", passed_vertices=passed)
            u = queue.popleft()
            for w in out_targets(u, mask):
                if visited[w]:
                    continue
                visited[w] = 1
                passed += 1
                queue.append(w)
                # Procedure two: launched afresh for every satisfying vertex.
                if checker(w) and lcr_reachable(self.graph, w, target, mask):
                    return True, {
                        "passed_vertices": passed,
                        "scck_calls": checker.calls,
                    }
        return False, {"passed_vertices": passed, "scck_calls": checker.calls}
