"""The ``close`` surjection ``V → {N, T, F}`` (Definition 3.1).

All four search algorithms share the same vertex-state bookkeeping:

* ``N`` — the vertex has not been explored;
* ``F`` — ``s ⇝_L v`` has been proved (reachable under the label
  constraint, but not yet through a satisfying vertex);
* ``T`` — ``s ⇝_{L,S} v`` has been proved (reachable through a vertex
  satisfying the substructure constraint).

States only ever move ``N → F → T`` or ``N → T``; a downgrade would
forget a proof.  :class:`CloseMap` enforces the monotonicity and counts
the vertices whose state differs from ``N`` — that count is the paper's
second evaluation metric ("average number of the vertices whose states
in close are not N", Section 6).
"""

from __future__ import annotations

__all__ = ["N", "F", "T", "CloseMap"]

#: Vertex states.  Integer values are ordered by information content so
#: that monotonicity is simply ``new >= old``.
N = 0
F = 1
T = 2

_STATE_NAMES = {N: "N", F: "F", T: "T"}


class CloseMap:
    """Dense array of per-vertex states with monotone updates."""

    __slots__ = ("_states", "_passed")

    def __init__(self, num_vertices: int) -> None:
        self._states = bytearray(num_vertices)
        self._passed = 0

    def __len__(self) -> int:
        return len(self._states)

    def __getitem__(self, vertex_id: int) -> int:
        return self._states[vertex_id]

    def __setitem__(self, vertex_id: int, state: int) -> None:
        current = self._states[vertex_id]
        if state < current:
            raise ValueError(
                f"close downgrade {_STATE_NAMES[current]} -> {_STATE_NAMES[state]} "
                f"for vertex {vertex_id} (Definition 3.1 is monotone)"
            )
        if current == N and state != N:
            self._passed += 1
        self._states[vertex_id] = state

    @property
    def passed_count(self) -> int:
        """Number of vertices whose state is not ``N`` (paper metric)."""
        return self._passed

    def state_name(self, vertex_id: int) -> str:
        """Human-readable state of one vertex (debugging aid)."""
        return _STATE_NAMES[self._states[vertex_id]]

    def vertices_in_state(self, state: int) -> list[int]:
        """All vertex ids currently in ``state`` (test helper)."""
        return [vid for vid, s in enumerate(self._states) if s == state]
