"""Plain label-constrained reachability (LCR) primitives.

LCR queries (``s ⇝_L t``; Jin et al. [6]) are the building block the
LSCR algorithms decompose into: UIS*'s ``LCS`` subroutine is an
incremental LCR search, and the workload generator (Section 6.1.1) uses
LCR closures to pick targets and to classify false queries.  These
functions are straightforward BFS over the masked adjacency.
"""

from __future__ import annotations

from collections import deque

from repro.graph.labeled_graph import KnowledgeGraph

__all__ = [
    "lcr_reachable",
    "lcr_closure",
    "lcr_closure_limited",
    "bfs_distance_ring",
]


def lcr_reachable(graph: KnowledgeGraph, source: int, target: int, mask: int) -> bool:
    """True iff ``source ⇝_L target`` where ``mask`` encodes ``L``.

    The trivial path counts: ``lcr_reachable(g, v, v, mask)`` is True.
    """
    if source == target:
        return True
    out_targets = graph.out_targets_masked
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for w in out_targets(u, mask):
            if w == target:
                return True
            if not visited[w]:
                visited[w] = 1
                queue.append(w)
    return False


def lcr_closure(graph: KnowledgeGraph, source: int, mask: int) -> set[int]:
    """All vertices ``v`` with ``source ⇝_L v`` (includes ``source``)."""
    out_targets = graph.out_targets_masked
    visited: set[int] = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for w in out_targets(u, mask):
            if w not in visited:
                visited.add(w)
                queue.append(w)
    return visited


def lcr_closure_limited(
    graph: KnowledgeGraph,
    source: int,
    mask: int,
    max_vertices: int,
) -> tuple[set[int], bool]:
    """Closure truncated after ``max_vertices`` discoveries.

    Returns ``(visited, truncated)``.  Used by query generation to bail
    out of hub explosions early.
    """
    out_targets = graph.out_targets_masked
    visited: set[int] = {source}
    queue = deque((source,))
    truncated = False
    while queue:
        u = queue.popleft()
        for w in out_targets(u, mask):
            if w not in visited:
                if len(visited) >= max_vertices:
                    truncated = True
                    return visited, truncated
                visited.add(w)
                queue.append(w)
    return visited, truncated


def bfs_distance_ring(
    graph: KnowledgeGraph,
    source: int,
    mask: int,
    rounds: int,
) -> tuple[set[int], list[int]]:
    """BFS from ``source`` stopped after ``rounds`` level expansions.

    Returns ``(explored, frontier)`` where ``frontier`` holds the
    vertices first reached in the final round.  This is the Section
    6.1.1 target-selection primitive: "start a BFS from s, and stop it
    after log |V| iterations, after which t is a BFS-unexplored vertex".
    """
    out_targets = graph.out_targets_masked
    explored: set[int] = {source}
    frontier: list[int] = [source]
    for _ in range(rounds):
        next_frontier: list[int] = []
        for u in frontier:
            for w in out_targets(u, mask):
                if w not in explored:
                    explored.add(w)
                    next_frontier.append(w)
        if not next_frontier:
            return explored, []
        frontier = next_frontier
    return explored, frontier
