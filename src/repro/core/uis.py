"""UIS — the uninformed search of Algorithm 1.

UIS walks the label-feasible space once with a stack, evaluating ``SCck``
on each newly discovered vertex, and allows one *re-visit* per vertex:
when the frontier reaches ``v`` from a vertex already proved to lie on a
satisfying path (``close[u] = T``), ``v`` upgrades to ``T`` and is pushed
again (case 1); a vertex seen for the first time gets its own ``SCck``
verdict (case 2).  The search therefore traverses the graph at most
twice (Theorem 3.3: ``O(|V|·|S| + |E|)``) while still being able to
"recall" vertices — the capability plain DFS/BFS lacks (the
``v3 → v4 → v1 → v3 → v4`` example of Section 3).

UIS requires nothing beyond the graph itself — no SPARQL engine, no
index — which is why the paper positions it as the baseline for general
edge-labeled graphs.
"""

from __future__ import annotations

from repro.constraints.substructure import SubstructureChecker
from repro.core.base import LSCRAlgorithm
from repro.core.close import F, N, T
from repro.core.query import LSCRQuery
from repro.resilience.deadline import current_deadline

__all__ = ["UIS"]


class UIS(LSCRAlgorithm):
    """Algorithm 1: uninformed LSCR search with the ``close`` surjection."""

    name = "UIS"

    def _run(
        self,
        source: int,
        target: int,
        mask: int,
        query: LSCRQuery,
    ) -> tuple[bool, dict[str, float]]:
        graph = self.graph
        checker = SubstructureChecker(graph, query.constraint)
        # Allocation-free hot-loop state: the close surjection lives in a
        # bare bytearray (monotone by branch structure: case 1 only ever
        # raises to T, case 2 only writes over N) with passed_vertices
        # counted inline.  Expansion iterates flat target sequences —
        # contiguous CSR slices behind a vertex-mask pre-test on frozen
        # graphs.
        states = bytearray(graph.num_vertices)
        out_targets = graph.out_targets_masked
        # Request deadline: one ContextVar read up front; without a
        # deadline the loop pays a single `is not None` test per pop.
        deadline = current_deadline()

        stack = [source]                                   # line 1
        states[source] = T if checker(source) else F       # line 2
        passed = 1

        # Trivial path <s>: Q=(s,s,L,S) is true iff s satisfies S
        # (DESIGN.md §5.1); cycles through satisfying vertices are found
        # by the main loop below.
        if source == target and states[source] == T:
            return True, self._telemetry(passed, checker)

        while stack:                                       # line 3
            if deadline is not None:
                deadline.check("uis", passed_vertices=passed)
            u = stack.pop()                                # line 4
            state_u = states[u]
            for v in out_targets(u, mask):                 # line 5
                state_v = states[v]
                if state_u == T and state_v != T:          # case 1 (line 6)
                    stack.append(v)
                    states[v] = T                          # line 7
                    if state_v == N:
                        passed += 1
                elif state_v == N:                         # case 2 (line 8)
                    stack.append(v)
                    states[v] = T if checker(v) else F     # line 9
                    passed += 1
                else:
                    continue
                if v == target and states[v] == T:         # lines 10-11
                    return True, self._telemetry(passed, checker)
        return False, self._telemetry(passed, checker)     # line 12

    @staticmethod
    def _telemetry(passed: int, checker: SubstructureChecker) -> dict[str, float]:
        return {
            "passed_vertices": passed,
            "scck_calls": checker.calls,
        }
