"""Uniform precondition checking."""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = ["require"]


def require(
    condition: bool,
    message: str,
    exc_type: type[Exception] = ReproError,
) -> None:
    """Raise ``exc_type(message)`` unless ``condition`` holds.

    Used at public API boundaries; internal invariants use ``assert``.
    """
    if not condition:
        raise exc_type(message)
