"""Deterministic random-number plumbing.

Everything in this library that makes random choices (dataset generators,
landmark selection, workload generation) accepts either a seed or a
:class:`random.Random` and must be reproducible run-to-run.  These helpers
centralise the two conversions:

* :func:`make_rng` — normalise ``None | int | Random`` into a ``Random``;
* :func:`derive_rng` — split a parent generator into an independent child
  stream identified by a string salt, so that e.g. "landmark selection"
  and "query generation" never consume from the same stream (adding a
  query would otherwise silently change the landmarks).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` for ``seed``.

    ``None`` produces an OS-seeded generator (non-reproducible — only
    appropriate for exploratory use); an ``int`` produces a seeded
    generator; an existing ``Random`` is returned unchanged.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_rng(seed: int | random.Random | None, *salt: object) -> random.Random:
    """Derive an independent child generator from ``seed`` and ``salt``.

    The child stream is a pure function of the parent's next draw and the
    salt values, so distinct salts give decorrelated, reproducible
    streams.  The parent advances by exactly one draw regardless of how
    much the child is used.
    """
    parent = make_rng(seed)
    digest = hashlib.sha256()
    digest.update(str(parent.getrandbits(64)).encode("ascii"))
    for item in salt:
        digest.update(b"\x00")
        digest.update(repr(item).encode("utf-8", "backslashreplace"))
    child_seed = int.from_bytes(digest.digest()[:8], "big")
    return random.Random(child_seed)
