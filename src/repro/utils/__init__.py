"""Small shared utilities: deterministic RNG plumbing, timers, validation."""

from repro.utils.rng import derive_rng, make_rng
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import require

__all__ = [
    "Stopwatch",
    "Timer",
    "derive_rng",
    "make_rng",
    "require",
]
