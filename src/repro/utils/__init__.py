"""Small shared utilities: RNG plumbing, timers, validation, persistence."""

from repro.utils.persist import atomic_write_json
from repro.utils.rng import derive_rng, make_rng
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import require

__all__ = [
    "Stopwatch",
    "Timer",
    "atomic_write_json",
    "derive_rng",
    "make_rng",
    "require",
]
