"""Atomic, crash-durable JSON persistence shared by every on-disk store.

One write-then-rename implementation for the index store
(:mod:`repro.index.storage`), the service snapshot
(:meth:`~repro.service.app.QueryService.save_snapshot`) and the WAL
compaction snapshot (:mod:`repro.wal`): a concurrent reader — or a
second tenant lazily warm-starting against the same path — never sees a
partial file, because ``os.replace`` is atomic on POSIX within one
filesystem and ``mkstemp`` gives every writer (thread or process) its
own scratch file.

Durability is stronger than atomicity: ``os.replace`` alone survives a
process crash but not power loss, because the renamed file's *contents*
and the directory entry both live in the page cache.  Every write here
therefore fsyncs the scratch file before the rename and the parent
directory after it, so a torn WAL snapshot cannot outlive a power cut.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_json", "fsync_directory"]


def fsync_directory(path: str | Path) -> None:
    """fsync a directory so a rename/create inside it survives power loss.

    Some platforms (and some filesystems mounted on them) refuse
    ``open(O_RDONLY)`` or ``fsync`` on directories; those errors are
    swallowed — the write stays atomic, just not power-loss durable,
    which matches the pre-existing behaviour on such systems.
    """
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write_json(
    document: dict, path: str | Path, *, encoding: str = "utf-8"
) -> int:
    """Serialise ``document`` to ``path`` atomically and durably.

    Returns the written file size.  The sequence is write → fsync(file)
    → rename → fsync(directory): after this function returns, the new
    contents are on stable storage and a crash at any earlier point
    leaves the previous version intact.
    """
    path = Path(path)
    descriptor, scratch_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    scratch = Path(scratch_name)
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
        fsync_directory(path.parent)
    finally:
        if scratch.exists():
            scratch.unlink()
    return path.stat().st_size
