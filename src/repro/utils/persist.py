"""Atomic JSON persistence shared by every on-disk store.

One write-then-rename implementation for the index store
(:mod:`repro.index.storage`) and the service snapshot
(:meth:`~repro.service.app.QueryService.save_snapshot`): a concurrent
reader — or a second tenant lazily warm-starting against the same path —
never sees a partial file, because ``os.replace`` is atomic on POSIX
within one filesystem and ``mkstemp`` gives every writer (thread or
process) its own scratch file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_json"]


def atomic_write_json(
    document: dict, path: str | Path, *, encoding: str = "utf-8"
) -> int:
    """Serialise ``document`` to ``path`` atomically; returns file size."""
    path = Path(path)
    descriptor, scratch_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    scratch = Path(scratch_name)
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            json.dump(document, handle, separators=(",", ":"))
        os.replace(scratch, path)
    finally:
        if scratch.exists():
            scratch.unlink()
    return path.stat().st_size
