"""Wall-clock measurement helpers used by the index builders and benches."""

from __future__ import annotations

import time

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring the wall-clock time of a block.

    >>> with Timer() as timer:
    ...     sum(range(10))
    45
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Resumable stopwatch with an optional budget.

    The traditional landmark index (Table 2 comparator) polls
    :meth:`over_budget` between landmarks so that runaway builds abort
    the way the paper's eight-hour cut-off does.
    """

    def __init__(self, budget_seconds: float | None = None) -> None:
        self.budget_seconds = budget_seconds
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def over_budget(self) -> bool:
        """True once the elapsed time exceeds the configured budget."""
        if self.budget_seconds is None:
            return False
        return self.elapsed > self.budget_seconds
