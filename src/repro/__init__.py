"""repro — Reachability queries with label and substructure constraints.

A complete, pure-Python reproduction of

    Xiaolong Wan, Hongzhi Wang.
    "Reachability Queries with Label and Substructure Constraints on
    Knowledge Graphs" (ICDE 2023 extended abstract; arXiv:2007.11881).

The package ships the paper's primary contribution — the UIS, UIS* and
INS query algorithms and the local index — together with every substrate
they depend on: an edge-labeled knowledge-graph store with an RDFS
schema, an exact SPARQL basic-graph-pattern engine, comparator indexes
([19]-style traditional landmarks, [6]-style tree index), LUBM-like and
YAGO-like dataset generators, the Section 6 workload generators, a
benchmark harness regenerating every table and figure of the evaluation,
a concurrent query service (:mod:`repro.service`) with planning,
caching and batch execution over HTTP (``python -m repro serve``), and
region-sharded scatter-gather serving over CSR slices
(:mod:`repro.shard`, ``python -m repro serve --shards N``).

Quickstart::

    from repro import GraphBuilder, LSCRQuery, UIS

    g = (GraphBuilder("example")
         .edge("v0", "friendOf", "v1")
         .edge("v1", "friendOf", "v3")
         .edge("v3", "likes", "v4")
         .build())
    query = LSCRQuery.create(
        "v0", "v4", ["friendOf", "likes"],
        "SELECT ?x WHERE { ?x <friendOf> v3 . v3 <likes> ?y . }")
    print(UIS(g).answer(query).answer)
"""

from repro.constraints import LabelConstraint, SubstructureChecker, SubstructureConstraint
from repro.core import (
    INS,
    LSCRAlgorithm,
    LSCRQuery,
    NaiveTwoProcedure,
    QueryResult,
    ResultAggregate,
    UIS,
    UISStar,
    WitnessPath,
    find_witness,
    verify_witness,
)
from repro.graph import GraphBuilder, KnowledgeGraph, RDFSchema
from repro.index import LocalIndex, build_local_index
from repro.session import LSCRSession
from repro.service.app import QueryService
from repro.service.cache import ConstraintCache, ResultCache
from repro.service.executor import BatchExecutor
from repro.service.http import create_server
from repro.service.planner import QueryPlan, QueryPlanner
from repro.service.registry import TenantRegistry
from repro.service.stats import ServiceStats
from repro.shard import ShardedQueryService
from repro.sparql import SparqlEngine

from repro._version import __version__

__all__ = [
    "BatchExecutor",
    "ConstraintCache",
    "GraphBuilder",
    "INS",
    "KnowledgeGraph",
    "LSCRAlgorithm",
    "LSCRQuery",
    "LSCRSession",
    "LabelConstraint",
    "LocalIndex",
    "NaiveTwoProcedure",
    "QueryPlan",
    "QueryPlanner",
    "QueryResult",
    "QueryService",
    "RDFSchema",
    "ResultAggregate",
    "ResultCache",
    "ServiceStats",
    "ShardedQueryService",
    "SparqlEngine",
    "SubstructureChecker",
    "SubstructureConstraint",
    "TenantRegistry",
    "UIS",
    "UISStar",
    "WitnessPath",
    "__version__",
    "build_local_index",
    "create_server",
    "find_witness",
    "verify_witness",
]
