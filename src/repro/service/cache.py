"""Shared caches of the query service.

Three caches make repeated traffic cheap, mirroring the three costs a
one-shot ``LSCRSession.ask`` pays on every call:

* :class:`ResultCache` — an LRU cache with optional TTL over *answered*
  queries, keyed on the planner's canonical query key, so the second
  arrival of an equivalent query skips the search entirely;
* :class:`ConstraintCache` — parsed :class:`SubstructureConstraint`
  objects keyed on their SPARQL text, shared across every session and
  worker thread, so each distinct constraint is parsed exactly once per
  process (the paper's Table 3 workloads reuse five constraint texts
  across thousands of queries);
* :class:`CandidateCache` — computed ``V(S, G)`` satisfying-vertex
  tuples keyed on the constraint's canonical SPARQL, so UIS*/INS stop
  re-running the SPARQL engine for every query that reuses a constraint
  with different endpoints or labels — on workload-shaped traffic that
  is almost all of them.

All are thread-safe (one lock per cache; critical sections are O(1)
dict/OrderedDict operations plus, for the constraint and candidate
caches, the one-time parse/evaluation) and expose hit/miss counters for
``GET /stats``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.constraints.substructure import SubstructureConstraint
from repro.obs.trace import span

__all__ = ["CacheStats", "ResultCache", "ConstraintCache", "CandidateCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready rendering for the ``/stats`` endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Thread-safe LRU + TTL cache for answered queries.

    ``max_size=0`` disables storage (every lookup misses), which lets
    the service keep one code path for cached and uncached modes.
    ``ttl_seconds=None`` disables expiry.  ``clock`` is injectable so
    tests can step time deterministically; it must be monotonic.
    """

    def __init__(
        self,
        max_size: int = 1024,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, expiry deadline or None); insertion order is
        #: recency order (move_to_end on hit).
        self._entries: OrderedDict[Hashable, tuple[Any, float | None]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or None on miss/expiry (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, deadline = entry
            if deadline is not None and self._clock() >= deadline:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting least-recently-used overflow."""
        if self.max_size == 0:
            return
        deadline = (
            self._clock() + self.ttl_seconds if self.ttl_seconds is not None else None
        )
        with self._lock:
            self._entries[key] = (value, deadline)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        The epoch-swap eviction hook: after a new epoch is published,
        entries namespaced under older epoch ids are dead weight that
        would otherwise linger until LRU pressure pushes them out —
        ``purge(lambda key: key[0] != current_epoch)`` reclaims them
        immediately.  O(size) under the lock (size ≤ ``max_size``).
        Returns how many entries were dropped; they count as evictions.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._evictions += len(doomed)
            return len(doomed)

    def export_entries(self) -> list[tuple[Hashable, Any]]:
        """Unexpired ``(key, value)`` pairs, least-recently-used first.

        The persistence half of cache warming
        (:meth:`~repro.service.app.QueryService.save_snapshot`): LRU
        order is preserved so re-importing through :meth:`import_entries`
        reconstructs the same eviction order.  Counters are untouched.
        """
        now = self._clock()
        with self._lock:
            return [
                (key, value)
                for key, (value, deadline) in self._entries.items()
                if deadline is None or now < deadline
            ]

    def import_entries(self, entries: Iterable[tuple[Hashable, Any]]) -> int:
        """Insert ``(key, value)`` pairs via :meth:`put`; returns how many
        the cache actually grew by.

        TTL deadlines restart from now — a warmed entry is as fresh as
        one just computed, which is the behaviour a restart wants.  The
        return value is the cache's size delta, not the input length: a
        disabled (``max_size=0``) or too-small cache retains fewer than
        it was offered, and "warmed N results" reports must not lie.
        """
        before = len(self)
        for key, value in entries:
            self.put(key, value)
        return len(self) - before

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-promoting, non-counting membership test (for tests/UIs)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _, deadline = entry
            return deadline is None or self._clock() < deadline

    def stats(self) -> CacheStats:
        """Snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                max_size=self.max_size,
            )


class ConstraintCache:
    """Parse-once cache of substructure constraints, shared across sessions.

    Keys are the raw SPARQL texts *and* their canonical re-rendering
    (:meth:`SubstructureConstraint.to_sparql`), so differently formatted
    spellings of one constraint share a single parsed object after the
    first encounter of each spelling.  Bounded LRU like the result
    cache; parsing happens under the lock, which deliberately serialises
    the first parse of a constraint arriving on many threads at once —
    exactly the "parse once per batch" amortisation the batch executor
    relies on.
    """

    def __init__(self, max_size: int = 4096) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, SubstructureConstraint] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, text: str) -> SubstructureConstraint:
        """The parsed constraint for ``text`` (parsing on first use).

        Raises whatever :meth:`SubstructureConstraint.from_sparql`
        raises on invalid text (nothing is cached in that case).
        """
        with self._lock:
            cached = self._entries.get(text)
            if cached is not None:
                self._entries.move_to_end(text)
                self._hits += 1
                return cached
            self._misses += 1
            constraint = SubstructureConstraint.from_sparql(text)
            canonical = constraint.to_sparql()
            # Prefer an already-cached equivalent object so equal
            # constraints stay identical (`is`) across spellings.
            existing = self._entries.get(canonical)
            if existing is not None:
                constraint = existing
            self._entries[text] = constraint
            self._entries[canonical] = constraint
            self._entries.move_to_end(text)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
            return constraint

    def __getitem__(self, text: str) -> SubstructureConstraint:
        """An already-cached constraint; KeyError when absent (no parse)."""
        with self._lock:
            return self._entries[text]

    def __contains__(self, text: str) -> bool:
        with self._lock:
            return text in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """Snapshot of the counters (no TTL, so expirations is 0)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=0,
                size=len(self._entries),
                max_size=self.max_size,
            )


class CandidateCache:
    """Compute-once LRU cache of ``V(S, G)`` satisfying-vertex tuples.

    Keyed on the constraint's canonical SPARQL rendering (the same
    canonicalisation the planner's result-cache key uses), so formatting
    variants of one constraint share an entry.  Values are immutable
    tuples — UIS*/INS copy to a list before shuffling, and the tuple is
    safe to hand to any number of threads.

    Unlike the constraint cache's one-time parse, a ``V(S, G)``
    evaluation can take real time, so a miss computes *outside* the
    lock: the first thread to miss a key becomes its leader and
    evaluates; concurrent requesters of the *same* key wait on the
    leader's event (no duplicated SPARQL work), while lookups for other
    keys — hits and misses alike — proceed unblocked.

    ``max_size=0`` disables storage entirely (every lookup evaluates and
    nothing is retained), mirroring :class:`ResultCache` so one
    ``cache_size`` knob can switch the whole service to uncached mode.

    A cache instance is tied to one graph snapshot; the service builds
    it next to its frozen graph and never mutates either.
    """

    def __init__(self, max_size: int = 1024) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self.max_size = max_size
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[int, ...]] = OrderedDict()
        #: key -> (event, [value or None]) for computations in flight.
        self._pending: dict[str, tuple[threading.Event, list]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self, constraint: SubstructureConstraint, graph: Any
    ) -> tuple[int, ...]:
        """The satisfying-vertex tuple for ``constraint`` on ``graph``.

        When a trace is active the lookup appears as a
        ``candidate-cache`` span reporting hit/miss and ``|V(S, G)|`` —
        a miss here is where a slow query spends its SPARQL time.
        """
        with span("candidate-cache") as handle:
            candidates, hit = self._lookup(constraint, graph)
            handle.set(hit=hit, candidates=len(candidates))
            return candidates

    def _lookup(
        self, constraint: SubstructureConstraint, graph: Any
    ) -> tuple[tuple[int, ...], bool]:
        if self.max_size == 0:
            with self._lock:
                self._misses += 1
            return tuple(constraint.satisfying_vertices(graph)), False
        key = constraint.to_sparql()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached, True
            self._misses += 1
            pending = self._pending.get(key)
            if pending is None:
                pending = self._pending[key] = (threading.Event(), [None])
                leader = True
            else:
                leader = False
        event, slot = pending
        if not leader:
            event.wait()
            if slot[0] is not None:
                return slot[0], False
            # Leader failed; evaluate independently (rare error path).
            return tuple(constraint.satisfying_vertices(graph)), False
        try:
            candidates = tuple(constraint.satisfying_vertices(graph))
        except BaseException:
            with self._lock:
                self._pending.pop(key, None)
            event.set()  # wake followers onto their fallback path
            raise
        slot[0] = candidates
        with self._lock:
            self._entries[key] = candidates
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._pending.pop(key, None)
        event.set()
        return candidates, False

    def __contains__(self, constraint: object) -> bool:
        key = (
            constraint.to_sparql()
            if isinstance(constraint, SubstructureConstraint)
            else constraint
        )
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the counters (no TTL, so expirations is 0)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=0,
                size=len(self._entries),
                max_size=self.max_size,
            )
