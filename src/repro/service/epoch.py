"""Epoch-swapped serving state: everything a query binds to one graph.

The service's original immutability contract — "graph and index are
never mutated after startup" — is what makes its lock-free concurrent
answering sound.  Live updates keep that contract by never mutating the
serving state at all: :class:`GraphEpoch` bundles one frozen graph, its
(optional) index and every object derived from them (planner, candidate
cache, session pool) into a single immutable-once-published unit, and
:meth:`~repro.service.app.QueryService.apply_updates` builds a *new*
epoch on a copy and publishes it by replacing one attribute reference.

Readers never lock: a request reads ``service._epoch`` exactly once (an
atomic attribute load) and runs plan → cache → session entirely against
that object, so a swap mid-query is invisible — the query finishes on
the epoch it started on, and the next request sees the new one.  The
result cache is shared across epochs but *namespaced*: cached answers
are keyed ``(epoch_id, canonical key)``, so an in-flight old-epoch query
completing after a swap can only ever populate old-epoch entries, never
poison the new epoch's view.

``epoch_id`` is a per-service monotonic integer starting at 0; it is
surfaced in query metadata, ``/stats``, ``/healthz`` and the snapshot
identity, which is how tests (and operators) can tell exactly which
graph version answered a request.
"""

from __future__ import annotations

import time
from threading import Lock
from typing import TYPE_CHECKING

from repro.exceptions import BadRequestError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import LocalIndex
from repro.service.cache import CandidateCache, ConstraintCache
from repro.service.planner import QueryPlanner
from repro.session import LSCRSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.approx.bounds import BoundsIndex

__all__ = ["GraphEpoch", "normalize_edge_updates", "validate_edge_updates"]

#: An edge update as carried through the service: name-level triple plus
#: the operation ("add" or "remove") to apply it with.
EdgeUpdate = tuple[str, str, str, str]

#: Operations an update batch may carry per edge.
EDGE_OPS = ("add", "remove")


class GraphEpoch:
    """One immutable serving generation: ``(graph, index, epoch_id)``
    plus the per-generation derived state (planner, candidate cache,
    lazily pooled sessions).

    Nothing here is mutated after publication except the session pool,
    which only *grows* (create-once under its own lock — the same
    pattern the service used before epochs) and the candidate cache,
    which is append-only memoisation of pure functions of the graph.
    """

    __slots__ = (
        "epoch_id",
        "graph",
        "index",
        "planner",
        "candidates",
        "constraints",
        "seed",
        "bounds",
        "fingerprint",
        "created_at",
        "_sessions",
        "_session_lock",
    )

    def __init__(
        self,
        epoch_id: int,
        graph: KnowledgeGraph,
        index: LocalIndex | None,
        planner: QueryPlanner,
        candidates: CandidateCache,
        constraints: ConstraintCache,
        seed: int,
        bounds: "BoundsIndex | None" = None,
    ) -> None:
        self.epoch_id = epoch_id
        self.graph = graph
        self.index = index
        self.planner = planner
        self.candidates = candidates
        self.constraints = constraints
        self.seed = seed
        #: Label-blind reachability upper bound for *this* snapshot
        #: (``repro.approx``); rebuilt whenever the graph changes so the
        #: router's definite-No stays sound across updates and replay.
        self.bounds = bounds
        #: Content digest of the graph this epoch serves; part of the
        #: save/load snapshot identity.
        self.fingerprint = graph.content_fingerprint()
        #: Wall-clock publication instant — the ``repro_epoch_age_seconds``
        #: gauge says how stale the serving snapshot is.
        self.created_at = time.time()
        self._sessions: dict[str, LSCRSession] = {}
        self._session_lock = Lock()

    def __repr__(self) -> str:
        return (
            f"GraphEpoch(id={self.epoch_id}, graph={self.graph.name!r}, "
            f"|V|={self.graph.num_vertices}, |E|={self.graph.num_edges}, "
            f"index={'loaded' if self.index is not None else 'none'})"
        )

    def session(self, algorithm: str) -> LSCRSession:
        """The pooled session for ``algorithm`` (created on first use)."""
        session = self._sessions.get(algorithm)
        if session is not None:
            return session
        with self._session_lock:
            session = self._sessions.get(algorithm)
            if session is None:
                session = LSCRSession(
                    self.graph,
                    algorithm=algorithm,
                    index=self.index if algorithm == "ins" else None,
                    seed=self.seed,
                    constraint_cache=self.constraints,
                    candidate_cache=self.candidates,
                )
                self._sessions[algorithm] = session
        return session

    def describe(self) -> dict:
        """JSON-ready identity for ``/stats`` and snapshot stamping."""
        return {
            "epoch_id": self.epoch_id,
            "fingerprint": self.fingerprint,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "labels": self.graph.num_labels,
            "created_at": self.created_at,
            "age_seconds": time.time() - self.created_at,
        }


def validate_edge_updates(payload: object, *, max_edges: int) -> list[EdgeUpdate]:
    """Shape-check a ``POST /edges`` JSON body into name-level updates.

    Accepts ``{"edges": [...]}`` where each item is either an object
    ``{"source": s, "label": l, "target": t}`` with an optional
    ``"op": "add" | "remove"`` (default ``"add"``), or a compact array
    ``[s, l, t]`` / ``[s, l, t, op]`` — all strings.  Raises
    :class:`~repro.exceptions.BadRequestError` with the offending
    position for anything else, so clients get field-level diagnostics
    instead of a half-applied batch.  Returns ``(source, label, target,
    op)`` 4-tuples in request order — order matters for mixed batches
    (add-then-remove of the same edge nets to absent; the reverse nets
    to present).
    """
    if not isinstance(payload, dict) or "edges" not in payload:
        raise BadRequestError(
            "update body must be a JSON object with an 'edges' array"
        )
    raw = payload["edges"]
    if not isinstance(raw, list) or not raw:
        raise BadRequestError("'edges' must be a non-empty array")
    if len(raw) > max_edges:
        raise BadRequestError(
            f"update batch of {len(raw)} edges exceeds the limit of {max_edges}"
        )
    updates: list[EdgeUpdate] = []
    for position, item in enumerate(raw):
        where = f"edges[{position}]"
        if isinstance(item, dict):
            missing = [
                field for field in ("source", "label", "target") if field not in item
            ]
            if missing:
                raise BadRequestError(
                    f"{where}: missing field(s) {', '.join(missing)}"
                )
            triple = (item["source"], item["label"], item["target"])
            op = item.get("op", "add")
        elif isinstance(item, list) and len(item) == 3:
            triple = (item[0], item[1], item[2])
            op = "add"
        elif isinstance(item, list) and len(item) == 4:
            triple = (item[0], item[1], item[2])
            op = item[3]
        else:
            raise BadRequestError(
                f"{where}: expected an object with source/label/target "
                "or a [source, label, target(, op)] array"
            )
        if not all(isinstance(part, str) and part for part in triple):
            raise BadRequestError(
                f"{where}: source, label and target must be non-empty strings"
            )
        if op not in EDGE_OPS:
            raise BadRequestError(
                f"{where}: op must be one of {', '.join(EDGE_OPS)} "
                f"(got {op!r})"
            )
        updates.append((*triple, op))
    return updates


def normalize_edge_updates(edges: object) -> list[EdgeUpdate]:
    """Coerce programmatic update batches into ``(s, l, t, op)`` 4-tuples.

    :meth:`~repro.service.app.QueryService.apply_updates` predates edge
    retraction and its callers (tests, WAL replay, the CLI) pass plain
    3-tuples; those are implicit ``"add"``.  4-tuples pass through after
    an op check.  Raises :class:`~repro.exceptions.BadRequestError` on
    anything else so misuse fails loudly rather than half-applying.
    """
    updates: list[EdgeUpdate] = []
    for position, item in enumerate(edges):  # type: ignore[arg-type]
        parts = tuple(item)
        if len(parts) == 3:
            parts = (*parts, "add")
        if len(parts) != 4 or parts[3] not in EDGE_OPS:
            raise BadRequestError(
                f"edges[{position}]: expected (source, label, target) or "
                f"(source, label, target, op) with op in {EDGE_OPS}"
            )
        updates.append(parts)  # type: ignore[arg-type]
    return updates
