"""Query planning: canonicalisation, trivial answers, algorithm choice.

Every request entering the service passes through :class:`QueryPlanner`
before any algorithm runs.  Planning does three jobs:

* **canonicalise** — reduce the request to a canonical cache key:
  stringified endpoints, the sorted label set, and the constraint's
  canonical SPARQL re-rendering, so formatting variants of one query
  share a single :class:`~repro.service.cache.ResultCache` entry.  The
  key deliberately excludes the algorithm: all four algorithms answer
  the same Boolean question (Definition 2.4), so an answer computed by
  one is valid for all;
* **trivially answer** — degenerate queries are decided without a
  search: endpoints missing from the graph, a label set disjoint from
  the graph's label universe (no edge can ever be expanded, so only the
  trivial path ``<s>`` with ``s = t`` remains), a structurally
  unsatisfiable constraint (``V(S, G) = ∅`` implies every answer is
  false), and ``s = t`` with ``s`` satisfying ``S`` (the trivial path
  answers true, DESIGN.md §5.1).  Note ``s = t`` alone is *not* trivial
  — a cycle through a satisfying vertex may still exist;
* **pick an algorithm** — INS when a local index is loaded, the
  configured fallback (UIS* by default) otherwise; an explicit
  per-request override wins after validation.

Planners are stateless apart from the shared
:class:`~repro.service.cache.ConstraintCache`, hence safe to call from
any number of threads.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.query import LSCRQuery
from repro.exceptions import BadRequestError, ServiceConfigError
from repro.graph.labeled_graph import KnowledgeGraph
from repro.obs.trace import span
from repro.service.cache import ConstraintCache
from repro.sparql.evaluator import compile_patterns

__all__ = ["CanonicalKey", "QueryPlan", "QueryPlanner", "TRIVIAL", "PLANNABLE_ALGORITHMS"]

#: ``(source, target, sorted labels, canonical constraint SPARQL)``.
CanonicalKey = tuple[str, str, tuple[str, ...], str]

#: Algorithm names a plan may carry for execution.
PLANNABLE_ALGORITHMS = ("uis", "uis*", "ins", "naive")

#: Pseudo-algorithm name carried by plans the planner answered itself.
TRIVIAL = "trivial"


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict for one request.

    Either a *trivial* plan (``trivial_answer`` set, ``query`` None —
    nothing to execute) or an *execution* plan (``query`` set,
    ``algorithm`` naming the session to run it on).  ``reason`` is a
    short human-readable account surfaced in responses and logs.
    """

    key: CanonicalKey
    algorithm: str
    reason: str
    query: LSCRQuery | None = None
    trivial_answer: bool | None = None
    #: True when the request *explicitly* named the algorithm.  Execution
    #: layers that normally route elsewhere (the sharded coordinator)
    #: honour forced plans by running the named session directly.
    forced: bool = False

    @property
    def is_trivial(self) -> bool:
        """True when the planner already decided the answer."""
        return self.trivial_answer is not None


class QueryPlanner:
    """Normalise requests into :class:`QueryPlan`\\ s for one graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        constraints: ConstraintCache | None = None,
        *,
        has_index: bool = False,
        fallback_algorithm: str = "uis*",
    ) -> None:
        if fallback_algorithm not in PLANNABLE_ALGORITHMS:
            raise ServiceConfigError(
                f"unknown fallback algorithm {fallback_algorithm!r}; "
                f"choose from {PLANNABLE_ALGORITHMS}"
            )
        if fallback_algorithm == "ins" and not has_index:
            raise ServiceConfigError("fallback algorithm 'ins' requires a loaded index")
        self.graph = graph
        self.constraints = constraints if constraints is not None else ConstraintCache()
        self.has_index = has_index
        self.fallback_algorithm = fallback_algorithm

    @property
    def default_algorithm(self) -> str:
        """What runs when the request does not name an algorithm."""
        return "ins" if self.has_index else self.fallback_algorithm

    def rebind(
        self, graph: KnowledgeGraph, *, has_index: bool | None = None
    ) -> "QueryPlanner":
        """A planner for a new graph snapshot — the epoch-swap constructor.

        Shares this planner's :class:`ConstraintCache` (parsed
        constraints are graph-independent, so they survive epochs) and
        fallback choice; only the graph the trivial-answer checks and
        label masks consult changes.  ``has_index`` defaults to this
        planner's (an update that drops or gains an index passes it
        explicitly).
        """
        return QueryPlanner(
            graph,
            self.constraints,
            has_index=self.has_index if has_index is None else has_index,
            fallback_algorithm=self.fallback_algorithm,
        )

    # ------------------------------------------------------------------

    def plan(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
        algorithm: str | None = None,
    ) -> QueryPlan:
        """Canonicalise one request and decide how to answer it.

        Raises :class:`~repro.exceptions.BadRequestError` for unusable
        algorithm choices and lets constraint/label parsing errors
        (``ConstraintError``, ``SparqlError``) propagate — callers map
        all of these to 4xx responses.
        """
        with span("plan") as handle:
            plan = self._plan(source, target, labels, constraint, algorithm)
            handle.set(
                algorithm=plan.algorithm,
                reason=plan.reason,
                trivial=plan.is_trivial,
            )
            return plan

    def _plan(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
        algorithm: str | None = None,
    ) -> QueryPlan:
        if not isinstance(labels, LabelConstraint):
            labels = LabelConstraint(labels)
        if not isinstance(constraint, SubstructureConstraint):
            # Catch the blank-text case before the SPARQL parser does:
            # clients get one stable message instead of a lexer error,
            # and nothing is cached for it.
            if not constraint.strip():
                raise BadRequestError(
                    "'constraint' must be a non-empty SPARQL string"
                )
            constraint = self.constraints.get(constraint)
        key: CanonicalKey = (
            str(source),
            str(target),
            tuple(sorted(labels.labels)),
            constraint.to_sparql(),
        )
        chosen = self._choose_algorithm(algorithm)

        graph = self.graph
        if not graph.has_vertex(source) or not graph.has_vertex(target):
            return QueryPlan(
                key=key,
                algorithm=TRIVIAL,
                reason="source or target vertex not in the graph",
                trivial_answer=False,
            )
        if compile_patterns(graph, constraint.patterns) is None:
            return QueryPlan(
                key=key,
                algorithm=TRIVIAL,
                reason="no vertex can satisfy the substructure constraint",
                trivial_answer=False,
            )
        mask = labels.mask_for(graph)
        if source == target and constraint.satisfied_by(graph, graph.vid(source)):
            return QueryPlan(
                key=key,
                algorithm=TRIVIAL,
                reason="source equals target and satisfies the constraint",
                trivial_answer=True,
            )
        if mask == 0:
            return QueryPlan(
                key=key,
                algorithm=TRIVIAL,
                reason="no requested label occurs in the graph",
                trivial_answer=False,
            )
        query = LSCRQuery(
            source=source, target=target, labels=labels, constraint=constraint
        )
        if algorithm is not None:
            reason = f"requested algorithm {chosen!r}"
        elif chosen == "ins":
            reason = "local index loaded"
        else:
            reason = f"no index loaded; falling back to {chosen!r}"
        return QueryPlan(
            key=key,
            algorithm=chosen,
            reason=reason,
            query=query,
            forced=algorithm is not None,
        )

    # ------------------------------------------------------------------

    def _choose_algorithm(self, requested: str | None) -> str:
        if requested is None:
            return self.default_algorithm
        if requested not in PLANNABLE_ALGORITHMS:
            raise BadRequestError(
                f"unknown algorithm {requested!r}; choose from {PLANNABLE_ALGORITHMS}"
            )
        if requested == "ins" and not self.has_index:
            raise BadRequestError(
                "algorithm 'ins' requires a loaded index; "
                "start the service with an index or drop the override"
            )
        return requested
