"""Service telemetry: thread-safe counters behind ``GET /stats``.

:class:`ServiceStats` is the service-wide ledger.  Per-query telemetry
already exists (:class:`~repro.core.result.QueryResult` carries the
paper's two metrics); this module folds those into per-algorithm
:class:`~repro.core.result.ResultAggregate` cells — the same streaming
means the bench harness reports — plus request-level counters the paper
has no use for but a server does: cache hits, trivial answers, batch
sizes, error kinds, uptime.

One lock guards every mutation; :meth:`snapshot` returns plain dicts so
the HTTP layer can serialise without touching live state.
:func:`merge_snapshots` folds many tenants' snapshots into the
cross-tenant ``totals`` section of the registry's top-level ``/stats``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable

from repro.core.result import QueryResult, ResultAggregate

__all__ = ["ServiceStats", "merge_snapshots"]


class ServiceStats:
    """Counters for one service instance."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._queries_total = 0
        self._queries_cached = 0
        self._queries_trivial = 0
        self._queries_executed = 0
        self._true_answers = 0
        self._batches = 0
        self._batch_queries = 0
        self._errors: dict[str, int] = {}
        self._by_algorithm: dict[str, ResultAggregate] = {}

    # ------------------------------------------------------------------

    def record_query(
        self,
        result: QueryResult,
        *,
        cached: bool = False,
        trivial: bool = False,
        batch: bool = False,
    ) -> None:
        """Fold one answered query into the ledger.

        Cached and trivial answers count toward traffic totals but not
        the per-algorithm aggregates — those track *work performed*, so
        their means stay comparable with the paper's tables.
        """
        with self._lock:
            self._queries_total += 1
            if result.answer:
                self._true_answers += 1
            if batch:
                self._batch_queries += 1
            if cached:
                self._queries_cached += 1
            elif trivial:
                self._queries_trivial += 1
            else:
                self._queries_executed += 1
                cell = self._by_algorithm.get(result.algorithm)
                if cell is None:
                    cell = self._by_algorithm[result.algorithm] = ResultAggregate()
                cell.add(result)

    def record_batch(self) -> None:
        """Count one batch request (its queries count via ``batch=True``)."""
        with self._lock:
            self._batches += 1

    def record_error(self, kind: str) -> None:
        """Count one failed request by error kind (e.g. ``bad-request``)."""
        with self._lock:
            self._errors[kind] = self._errors.get(kind, 0) + 1

    def merge_aggregate(self, aggregate: ResultAggregate) -> None:
        """Fold an externally accumulated aggregate (e.g. a warm-up run)."""
        with self._lock:
            cell = self._by_algorithm.get(aggregate.algorithm)
            if cell is None:
                cell = self._by_algorithm[aggregate.algorithm] = ResultAggregate()
            cell.merge(aggregate)

    # ------------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this stats object (≈ the service) was created."""
        return self._clock() - self._started

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every counter."""
        with self._lock:
            return {
                "uptime_seconds": self._clock() - self._started,
                "queries": {
                    "total": self._queries_total,
                    "executed": self._queries_executed,
                    "cached": self._queries_cached,
                    "trivial": self._queries_trivial,
                    "true_answers": self._true_answers,
                },
                "batches": {
                    "requests": self._batches,
                    "queries": self._batch_queries,
                },
                "errors": dict(self._errors),
                "algorithms": {
                    name: aggregate.as_dict()
                    for name, aggregate in sorted(self._by_algorithm.items())
                },
            }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold :meth:`ServiceStats.snapshot` documents into one total.

    Counters sum; per-algorithm cells merge the way
    :meth:`ResultAggregate.merge` does (totals add, means recomputed),
    reconstructing ``total_passed`` from ``mean_passed_vertices × count``
    since the JSON cell carries only the mean.  ``uptime_seconds`` is
    the maximum — tenants share the process, so the oldest tenant's
    uptime is the service's.
    """
    queries = {"total": 0, "executed": 0, "cached": 0, "trivial": 0,
               "true_answers": 0}
    batches = {"requests": 0, "queries": 0}
    errors: dict[str, int] = {}
    cells: dict[str, dict] = {}
    uptime = 0.0
    for snapshot in snapshots:
        uptime = max(uptime, snapshot.get("uptime_seconds", 0.0))
        for key in queries:
            queries[key] += snapshot["queries"][key]
        for key in batches:
            batches[key] += snapshot["batches"][key]
        for kind, count in snapshot["errors"].items():
            errors[kind] = errors.get(kind, 0) + count
        for name, cell in snapshot["algorithms"].items():
            into = cells.setdefault(
                name,
                {"algorithm": cell["algorithm"], "count": 0, "true_answers": 0,
                 "total_seconds": 0.0, "_total_passed": 0.0},
            )
            into["count"] += cell["count"]
            into["true_answers"] += cell["true_answers"]
            into["total_seconds"] += cell["total_seconds"]
            into["_total_passed"] += cell["mean_passed_vertices"] * cell["count"]
    for cell in cells.values():
        count = cell["count"]
        total_passed = cell.pop("_total_passed")
        cell["mean_milliseconds"] = (
            cell["total_seconds"] / count * 1000.0 if count else 0.0
        )
        cell["mean_passed_vertices"] = total_passed / count if count else 0.0
    return {
        "uptime_seconds": uptime,
        "queries": queries,
        "batches": batches,
        "errors": errors,
        "algorithms": {name: cells[name] for name in sorted(cells)},
    }
