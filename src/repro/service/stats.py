"""Service telemetry: thread-safe counters behind ``GET /stats``.

:class:`ServiceStats` is the service-wide ledger.  Per-query telemetry
already exists (:class:`~repro.core.result.QueryResult` carries the
paper's two metrics); this module folds those into per-algorithm
:class:`~repro.core.result.ResultAggregate` cells — the same streaming
means the bench harness reports — plus request-level counters the paper
has no use for but a server does: cache hits, trivial answers, batch
sizes, error kinds, uptime, and per-endpoint
:class:`LatencyHistogram`\\ s (fixed log-scale buckets, so ``/stats``
reports p50/p90/p99 instead of just means).

One lock guards every mutation; :meth:`snapshot` returns plain dicts so
the HTTP layer can serialise without touching live state, and
:meth:`restore` re-seeds a fresh ledger from a snapshot document (cache
warming across restarts).  :func:`merge_snapshots` folds many tenants'
snapshots — histograms included, bucket-wise — into the cross-tenant
``totals`` section of the registry's top-level ``/stats``.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections.abc import Callable, Iterable
from math import ceil

from repro.core.result import QueryResult, ResultAggregate

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "LatencyHistogram",
    "ServiceStats",
    "merge_snapshots",
]

#: Upper bounds (seconds) of the fixed log-scale latency buckets: 24
#: buckets doubling from 10µs up to ~84s, plus one implicit overflow
#: bucket.  Fixed (not adaptive) so histograms from different tenants,
#: processes and restarts merge bucket-wise without re-binning.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    1e-5 * 2.0**exponent for exponent in range(24)
)

#: The quantiles every histogram snapshot reports, as (name, fraction).
_REPORTED_QUANTILES = (("p50_ms", 0.50), ("p90_ms", 0.90), ("p99_ms", 0.99))


class LatencyHistogram:
    """Latency distribution over :data:`LATENCY_BUCKET_BOUNDS`.

    Not locked — callers (:class:`ServiceStats`) serialise access.
    Quantiles are estimated as the upper bound of the bucket holding the
    requested rank (the conventional Prometheus-style estimate), so they
    are conservative: the true quantile is never above the reported one
    by more than one bucket width.
    """

    __slots__ = ("counts", "count", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observation in."""
        self.counts[bisect_left(LATENCY_BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile(self, fraction: float) -> float:
        """Estimated ``fraction``-quantile in seconds (0.0 when empty)."""
        if not self.count:
            return 0.0
        rank = max(1, ceil(fraction * self.count))
        cumulative = 0
        for position, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if position < len(LATENCY_BUCKET_BOUNDS):
                    return min(LATENCY_BUCKET_BOUNDS[position], self.max_seconds)
                return self.max_seconds
        return self.max_seconds  # pragma: no cover - counts always sum to count

    def snapshot(self) -> dict:
        """JSON-ready rendering (counts + derived quantiles)."""
        document = {
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "max_seconds": self.max_seconds,
            "mean_ms": (
                self.sum_seconds / self.count * 1000.0 if self.count else 0.0
            ),
            "bucket_bounds_seconds": list(LATENCY_BUCKET_BOUNDS),
            "bucket_counts": list(self.counts),
        }
        for name, fraction in _REPORTED_QUANTILES:
            document[name] = self.quantile(fraction) * 1000.0
        return document

    def merge_snapshot(self, document: dict) -> None:
        """Fold a :meth:`snapshot` document in, bucket-wise.

        A document whose bucket layout doesn't match (a snapshot from a
        version with different bounds) is skipped *entirely* — merging
        its totals without its buckets would silently corrupt every
        quantile estimate.  Matching the count alone is not enough: a
        future version could keep 25 buckets but move the boundaries, so
        when the document carries its bounds they must equal ours too.
        """
        counts = document.get("bucket_counts")
        if counts is None or len(counts) != len(self.counts):
            return
        bounds = document.get("bucket_bounds_seconds")
        if bounds is not None and list(bounds) != list(LATENCY_BUCKET_BOUNDS):
            return
        for position, bucket_count in enumerate(counts):
            self.counts[position] += bucket_count
        self.count += document.get("count", 0)
        self.sum_seconds += document.get("sum_seconds", 0.0)
        max_seconds = document.get("max_seconds")
        if max_seconds is None:
            # A document without its max would leave ours at 0.0, and
            # quantile's min(bucket bound, max) clamp would then report
            # every quantile as 0.  Fall back to the upper bound of the
            # document's highest occupied bucket — conservative in the
            # same direction the quantile estimate already is.
            max_seconds = 0.0
            for position, bucket_count in enumerate(counts):
                if bucket_count:
                    max_seconds = LATENCY_BUCKET_BOUNDS[
                        min(position, len(LATENCY_BUCKET_BOUNDS) - 1)
                    ]
        self.max_seconds = max(self.max_seconds, max_seconds)


class ServiceStats:
    """Counters for one service instance."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        #: Wall-clock twin of the monotonic ``_started``: uptime comes
        #: from the monotonic clock (immune to NTP steps), the absolute
        #: start instant from this.  Surfaced in ``/healthz``,
        #: ``/stats`` and the ``repro_started_at_seconds`` gauge.
        self.started_at = time.time()
        self._queries_total = 0
        self._queries_cached = 0
        self._queries_trivial = 0
        self._queries_executed = 0
        self._true_answers = 0
        self._batches = 0
        self._batch_queries = 0
        self._update_batches = 0
        self._update_edges_added = 0
        self._update_edges_duplicate = 0
        self._update_edges_removed = 0
        self._update_edges_missing = 0
        self._update_vertices_added = 0
        self._errors: dict[str, int] = {}
        self._requests_shed = 0
        self._degraded_answers = 0
        self._by_algorithm: dict[str, ResultAggregate] = {}
        self._latency: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------

    def record_query(
        self,
        result: QueryResult,
        *,
        cached: bool = False,
        trivial: bool = False,
        batch: bool = False,
    ) -> None:
        """Fold one answered query into the ledger.

        Cached and trivial answers count toward traffic totals but not
        the per-algorithm aggregates — those track *work performed*, so
        their means stay comparable with the paper's tables.
        """
        with self._lock:
            self._queries_total += 1
            if result.answer:
                self._true_answers += 1
            if batch:
                self._batch_queries += 1
            if cached:
                self._queries_cached += 1
            elif trivial:
                self._queries_trivial += 1
            else:
                self._queries_executed += 1
                cell = self._by_algorithm.get(result.algorithm)
                if cell is None:
                    cell = self._by_algorithm[result.algorithm] = ResultAggregate()
                cell.add(result)

    def record_batch(self) -> None:
        """Count one batch request (its queries count via ``batch=True``)."""
        with self._lock:
            self._batches += 1

    def record_error(self, kind: str) -> None:
        """Count one failed request by error kind (e.g. ``bad-request``)."""
        with self._lock:
            self._errors[kind] = self._errors.get(kind, 0) + 1

    def record_shed(self) -> None:
        """Count one request rejected by admission control (429)."""
        with self._lock:
            self._requests_shed += 1

    def record_degraded(self) -> None:
        """Count one answer served over surviving shards only."""
        with self._lock:
            self._degraded_answers += 1

    def record_update(
        self,
        *,
        edges_added: int,
        edges_duplicate: int,
        vertices_added: int,
        edges_removed: int = 0,
        edges_missing: int = 0,
    ) -> None:
        """Count one applied ``POST /edges`` batch (one epoch swap).

        ``edges_removed`` / ``edges_missing`` are the retraction twins
        of added/duplicate: retractions that hit an edge vs. ones that
        named an edge the graph doesn't have.  Latency is recorded
        separately via ``record_latency("updates", ...)`` like every
        other endpoint.
        """
        with self._lock:
            self._update_batches += 1
            self._update_edges_added += edges_added
            self._update_edges_duplicate += edges_duplicate
            self._update_edges_removed += edges_removed
            self._update_edges_missing += edges_missing
            self._update_vertices_added += vertices_added

    def record_latency(self, endpoint: str, seconds: float) -> None:
        """Fold one request latency into ``endpoint``'s histogram.

        Endpoints in use: ``query`` (one query's end-to-end service
        latency, whether answered singly or inside a batch) and
        ``batch`` (one whole batch request).  New endpoint names create
        their histogram on first use.
        """
        with self._lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.record(seconds)

    def merge_aggregate(self, aggregate: ResultAggregate) -> None:
        """Fold an externally accumulated aggregate (e.g. a warm-up run)."""
        with self._lock:
            cell = self._by_algorithm.get(aggregate.algorithm)
            if cell is None:
                cell = self._by_algorithm[aggregate.algorithm] = ResultAggregate()
            cell.merge(aggregate)

    # ------------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this stats object (≈ the service) was created."""
        return self._clock() - self._started

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every counter."""
        with self._lock:
            return {
                "uptime_seconds": self._clock() - self._started,
                "started_at": self.started_at,
                "queries": {
                    "total": self._queries_total,
                    "executed": self._queries_executed,
                    "cached": self._queries_cached,
                    "trivial": self._queries_trivial,
                    "true_answers": self._true_answers,
                },
                "batches": {
                    "requests": self._batches,
                    "queries": self._batch_queries,
                },
                "updates": {
                    "batches": self._update_batches,
                    "edges_added": self._update_edges_added,
                    "edges_duplicate": self._update_edges_duplicate,
                    "edges_removed": self._update_edges_removed,
                    "edges_missing": self._update_edges_missing,
                    "vertices_added": self._update_vertices_added,
                },
                "errors": dict(self._errors),
                "resilience": {
                    "requests_shed": self._requests_shed,
                    "degraded_answers": self._degraded_answers,
                },
                "algorithms": {
                    name: aggregate.as_dict()
                    for name, aggregate in sorted(self._by_algorithm.items())
                },
                "latency": {
                    endpoint: histogram.snapshot()
                    for endpoint, histogram in sorted(self._latency.items())
                },
            }

    def restore(self, document: dict) -> None:
        """Re-seed the counters from a :meth:`snapshot` document.

        The persistence half of cache warming: a restarted service folds
        its previous life's traffic back in so ``/stats`` stays
        continuous across restarts.  Restored values *add to* whatever
        was already recorded (a fresh ledger restores exactly).  Uptime
        is deliberately not restored — it describes this process.
        Unknown keys are ignored, so snapshots from newer versions load.
        """
        queries = document.get("queries", {})
        batches = document.get("batches", {})
        updates = document.get("updates", {})
        with self._lock:
            self._queries_total += queries.get("total", 0)
            self._queries_cached += queries.get("cached", 0)
            self._queries_trivial += queries.get("trivial", 0)
            self._queries_executed += queries.get("executed", 0)
            self._true_answers += queries.get("true_answers", 0)
            self._batches += batches.get("requests", 0)
            self._batch_queries += batches.get("queries", 0)
            self._update_batches += updates.get("batches", 0)
            self._update_edges_added += updates.get("edges_added", 0)
            self._update_edges_duplicate += updates.get("edges_duplicate", 0)
            self._update_edges_removed += updates.get("edges_removed", 0)
            self._update_edges_missing += updates.get("edges_missing", 0)
            self._update_vertices_added += updates.get("vertices_added", 0)
            for kind, count in document.get("errors", {}).items():
                self._errors[kind] = self._errors.get(kind, 0) + count
            # .get: snapshots predating fault tolerance carry no section.
            resilience = document.get("resilience", {})
            self._requests_shed += resilience.get("requests_shed", 0)
            self._degraded_answers += resilience.get("degraded_answers", 0)
            for name, cell in document.get("algorithms", {}).items():
                aggregate = self._by_algorithm.get(name)
                if aggregate is None:
                    aggregate = self._by_algorithm[name] = ResultAggregate()
                count = cell.get("count", 0)
                aggregate.algorithm = aggregate.algorithm or cell.get(
                    "algorithm", name
                )
                aggregate.count += count
                aggregate.true_answers += cell.get("true_answers", 0)
                aggregate.total_seconds += cell.get("total_seconds", 0.0)
                # The JSON cell carries the mean only; reconstruct.
                aggregate.total_passed += round(
                    cell.get("mean_passed_vertices", 0.0) * count
                )
            for endpoint, histogram_doc in document.get("latency", {}).items():
                histogram = self._latency.get(endpoint)
                if histogram is None:
                    histogram = self._latency[endpoint] = LatencyHistogram()
                histogram.merge_snapshot(histogram_doc)


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold :meth:`ServiceStats.snapshot` documents into one total.

    Counters sum; per-algorithm cells merge the way
    :meth:`ResultAggregate.merge` does (totals add, means recomputed),
    reconstructing ``total_passed`` from ``mean_passed_vertices × count``
    since the JSON cell carries only the mean.  ``uptime_seconds`` is
    the maximum — tenants share the process, so the oldest tenant's
    uptime is the service's.
    """
    queries = {"total": 0, "executed": 0, "cached": 0, "trivial": 0,
               "true_answers": 0}
    batches = {"requests": 0, "queries": 0}
    updates = {"batches": 0, "edges_added": 0, "edges_duplicate": 0,
               "edges_removed": 0, "edges_missing": 0, "vertices_added": 0}
    errors: dict[str, int] = {}
    resilience = {"requests_shed": 0, "degraded_answers": 0}
    cells: dict[str, dict] = {}
    latency: dict[str, LatencyHistogram] = {}
    uptime = 0.0
    started_at: float | None = None
    for snapshot in snapshots:
        uptime = max(uptime, snapshot.get("uptime_seconds", 0.0))
        # The oldest tenant's start is the process's, matching max-uptime.
        stamp = snapshot.get("started_at")
        if stamp is not None and (started_at is None or stamp < started_at):
            started_at = stamp
        for key in queries:
            queries[key] += snapshot["queries"][key]
        for key in batches:
            batches[key] += snapshot["batches"][key]
        # .get: snapshots predating live updates carry no updates section.
        for key in updates:
            updates[key] += snapshot.get("updates", {}).get(key, 0)
        for kind, count in snapshot["errors"].items():
            errors[kind] = errors.get(kind, 0) + count
        # .get: snapshots predating fault tolerance carry no section.
        for key in resilience:
            resilience[key] += snapshot.get("resilience", {}).get(key, 0)
        for endpoint, histogram_doc in snapshot.get("latency", {}).items():
            histogram = latency.get(endpoint)
            if histogram is None:
                histogram = latency[endpoint] = LatencyHistogram()
            histogram.merge_snapshot(histogram_doc)
        for name, cell in snapshot["algorithms"].items():
            into = cells.setdefault(
                name,
                {"algorithm": cell["algorithm"], "count": 0, "true_answers": 0,
                 "total_seconds": 0.0, "_total_passed": 0.0},
            )
            into["count"] += cell["count"]
            into["true_answers"] += cell["true_answers"]
            into["total_seconds"] += cell["total_seconds"]
            into["_total_passed"] += cell["mean_passed_vertices"] * cell["count"]
    for cell in cells.values():
        count = cell["count"]
        total_passed = cell.pop("_total_passed")
        cell["mean_milliseconds"] = (
            cell["total_seconds"] / count * 1000.0 if count else 0.0
        )
        cell["mean_passed_vertices"] = total_passed / count if count else 0.0
    merged: dict = {
        "uptime_seconds": uptime,
        "queries": queries,
        "batches": batches,
        "updates": updates,
        "errors": errors,
        "resilience": resilience,
        "algorithms": {name: cells[name] for name in sorted(cells)},
        "latency": {
            endpoint: latency[endpoint].snapshot() for endpoint in sorted(latency)
        },
    }
    if started_at is not None:
        merged["started_at"] = started_at
    return merged
