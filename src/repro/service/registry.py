"""Multi-graph tenancy: many (graph, index) pairs in one process.

The paper's setting is one knowledge graph per deployment; a production
service hosts many.  :class:`TenantRegistry` promotes
:class:`~repro.service.app.QueryService` — already the natural
per-tenant unit (its own graph, index, caches, stats and session
pool) — to a first-class tenant behind a thread-safe name → service
map:

* **add / remove / lookup** are O(1) under one registry lock; lookups
  of a *lazy* tenant (registered by file paths) leave the registry lock
  and take a per-tenant lock instead, so one slow
  ``load_or_build_index`` warm start never blocks traffic to other
  tenants, and concurrent first requests build the service exactly
  once.  Warm start freezes each tenant's graph into its CSR snapshot
  (:mod:`repro.graph.csr`) before any index work, so every tenant
  serves from the read-optimized layout;
* **the default tenant** backs the un-prefixed PR 1 routes
  (``POST /query`` etc.); ``/t/<tenant>/...`` routes name any other;
* **aggregation** — :meth:`health` and :meth:`stats_snapshot` fold
  per-tenant load state, graph sizes and traffic counters into the
  top-level ``/healthz`` and ``/stats`` payloads without forcing lazy
  tenants to load.

Tenant ids are URL path segments, so they are restricted to
``[A-Za-z0-9._-]`` (and must not start with a dot, keeping ``.`` /
``..`` out of routes).
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.exceptions import (
    BadRequestError,
    ServiceConfigError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.obs.prometheus import render_metrics
from repro.service.app import QueryService
from repro.service.stats import merge_snapshots

__all__ = ["TenantRegistry", "DEFAULT_TENANT", "valid_tenant_name"]

#: The tenant the un-prefixed (PR 1) routes alias to unless configured.
DEFAULT_TENANT = "default"

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]{0,127}$")


def valid_tenant_name(name: object) -> bool:
    """True when ``name`` is usable as a URL tenant id."""
    return isinstance(name, str) and _NAME_PATTERN.match(name) is not None


class _TenantEntry:
    """One tenant: a live service, or file paths to build it from.

    ``lock`` serialises the lazy build only; once ``service`` is set it
    is never cleared, so the fast path is a single attribute read.
    """

    __slots__ = ("name", "service", "spec", "lock")

    def __init__(
        self,
        name: str,
        service: QueryService | None = None,
        spec: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.service = service
        self.spec = spec
        self.lock = threading.Lock()

    @property
    def loaded(self) -> bool:
        return self.service is not None

    def service_or_load(self) -> QueryService:
        service = self.service
        if service is not None:
            return service
        with self.lock:
            if self.service is None:
                assert self.spec is not None
                self.service = QueryService.from_files(**self.spec)
            return self.service

    def describe(self) -> dict[str, Any]:
        """JSON-ready load state + sizes for ``GET /tenants``/``/healthz``."""
        service = self.service
        if service is None:
            assert self.spec is not None
            return {
                "loaded": False,
                "graph_path": str(self.spec["graph_path"]),
                "index_path": (
                    str(self.spec["index_path"])
                    if self.spec.get("index_path") is not None
                    else None
                ),
            }
        return {
            "loaded": True,
            "graph": service.graph.name,
            "vertices": service.graph.num_vertices,
            "edges": service.graph.num_edges,
            "labels": service.graph.num_labels,
            "index_loaded": service.index is not None,
            "default_algorithm": service.default_algorithm,
            "epoch": service.epoch.epoch_id,
        }


class TenantRegistry:
    """A thread-safe map of tenant ids to :class:`QueryService`\\ s."""

    def __init__(self, *, default_tenant: str = DEFAULT_TENANT) -> None:
        if not valid_tenant_name(default_tenant):
            raise ServiceConfigError(
                f"invalid default tenant name: {default_tenant!r}"
            )
        self.default_tenant = default_tenant
        self._lock = threading.Lock()
        self._entries: dict[str, _TenantEntry] = {}
        self._errors: dict[str, int] = {}

    @classmethod
    def for_service(
        cls, service: QueryService, name: str = DEFAULT_TENANT
    ) -> "TenantRegistry":
        """A registry hosting one live service as its default tenant."""
        registry = cls(default_tenant=name)
        registry.add(name, service)
        return registry

    def __repr__(self) -> str:
        return (
            f"TenantRegistry({len(self)} tenant(s), "
            f"default={self.default_tenant!r})"
        )

    # ------------------------------------------------------------------
    # add / remove / lookup
    # ------------------------------------------------------------------

    def add(self, name: str, service: QueryService) -> None:
        """Register a live service under ``name`` (must be free)."""
        self._insert(_TenantEntry(name, service=service))

    def register_files(
        self,
        name: str,
        graph_path: str | Path,
        index_path: str | Path | None = None,
        **options: Any,
    ) -> None:
        """Register a tenant to be warm-started lazily from files.

        The graph path is checked eagerly — a bad registration should
        fail the ``POST /tenants`` call, not every later query — but the
        graph load and ``load_or_build_index`` run on first lookup, off
        the registry lock.  ``options`` are passed through to
        :meth:`QueryService.from_files` (``seed``, ``algorithm``,
        ``cache_size``, ...).
        """
        graph_path = Path(graph_path)
        if not graph_path.is_file():
            raise ServiceConfigError(f"graph file not found: {graph_path}")
        spec: dict[str, Any] = {
            "graph_path": graph_path,
            "index_path": Path(index_path) if index_path is not None else None,
            **options,
        }
        self._insert(_TenantEntry(name, spec=spec))

    def _insert(self, entry: _TenantEntry) -> None:
        if not valid_tenant_name(entry.name):
            raise BadRequestError(
                f"invalid tenant name {entry.name!r}: use 1-128 characters "
                "from [A-Za-z0-9._-], not starting with a dot"
            )
        with self._lock:
            if entry.name in self._entries:
                raise TenantExistsError(entry.name)
            self._entries[entry.name] = entry

    def remove(self, name: str) -> None:
        """Drop a tenant; in-flight requests holding its service finish.

        Raises :class:`UnknownTenantError` when absent.  The removed
        service is :meth:`~QueryService.close`\\ d to release its batch
        thread pool.
        """
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownTenantError(name)
        service = entry.service
        if service is not None:
            service.close()

    def _entry(self, name: str | None) -> _TenantEntry:
        if name is None:
            name = self.default_tenant
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownTenantError(name)
        return entry

    def get(self, name: str | None = None) -> QueryService:
        """The service for ``name`` (default tenant when None), loading
        a lazily registered tenant on first use."""
        return self._entry(name).service_or_load()

    def names(self) -> list[str]:
        """Registered tenant ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record_error(self, kind: str) -> None:
        """Count a request error not attributable to any tenant."""
        with self._lock:
            self._errors[kind] = self._errors.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # per-tenant documents (GET /t/<tenant>/healthz, /t/<tenant>/stats)
    # ------------------------------------------------------------------

    def tenant_health(self, name: str) -> dict:
        """One tenant's ``/healthz`` document, never forcing a lazy load."""
        entry = self._entry(name)
        service = entry.service
        if service is None:
            return {"status": "ok", "tenant": entry.name, **entry.describe()}
        return {"tenant": entry.name, "loaded": True, **service.health()}

    def tenant_stats(self, name: str) -> dict:
        """One tenant's ``/stats`` document, never forcing a lazy load."""
        entry = self._entry(name)
        service = entry.service
        if service is None:
            return {"tenant": entry.name, **entry.describe()}
        return {"tenant": entry.name, "loaded": True, **service.stats_snapshot()}

    # ------------------------------------------------------------------
    # aggregation (GET /tenants, /healthz, /stats)
    # ------------------------------------------------------------------

    def _snapshot_entries(self) -> list[_TenantEntry]:
        with self._lock:
            return list(self._entries.values())

    def describe(self) -> dict:
        """``GET /tenants``: every tenant's load state and sizes."""
        entries = self._snapshot_entries()
        return {
            "count": len(entries),
            "default_tenant": self.default_tenant,
            "tenants": {
                entry.name: entry.describe()
                for entry in sorted(entries, key=lambda e: e.name)
            },
        }

    def health(self) -> dict:
        """``GET /healthz``: aggregate liveness across tenants.

        Lazy tenants are reported as not loaded, never force-loaded —
        health checks must stay cheap.  The document keeps the PR 1
        single-graph keys when the default tenant is loaded, so old
        monitoring keeps reading it.
        """
        document: dict[str, Any] = {"status": "ok"}
        entries = self._snapshot_entries()
        tenants = {}
        for entry in sorted(entries, key=lambda e: e.name):
            tenants[entry.name] = entry.describe()
        loaded = [e.service for e in entries if e.service is not None]
        document["tenants"] = tenants
        document["tenant_count"] = len(entries)
        document["tenants_loaded"] = len(loaded)
        document["default_tenant"] = self.default_tenant
        document["totals"] = {
            "vertices": sum(s.graph.num_vertices for s in loaded),
            "edges": sum(s.graph.num_edges for s in loaded),
        }
        default = next(
            (
                e.service
                for e in entries
                if e.name == self.default_tenant and e.service is not None
            ),
            None,
        )
        if default is not None:
            document.update(default.health())
        return document

    def stats_snapshot(self) -> dict:
        """``GET /stats``: default tenant's document plus cross-tenant totals.

        The PR 1 top-level keys (``service``, ``result_cache``, ...) are
        kept — they describe the default tenant — and three aggregate
        sections are added: ``tenants`` (per-tenant service counters for
        every *loaded* tenant), ``totals`` (their merged counters) and
        ``registry`` (tenant counts plus request errors that never
        reached a tenant, e.g. unknown tenant ids).
        """
        entries = self._snapshot_entries()
        loaded = [
            (entry.name, entry.service)
            for entry in sorted(entries, key=lambda e: e.name)
            if entry.service is not None
        ]
        per_tenant = {name: service.stats.snapshot() for name, service in loaded}
        with self._lock:
            registry_errors = dict(self._errors)
        document: dict[str, Any] = {
            "tenants": per_tenant,
            "totals": merge_snapshots(per_tenant.values()),
            "registry": {
                "tenant_count": len(entries),
                "tenants_loaded": len(loaded),
                "default_tenant": self.default_tenant,
                "errors": registry_errors,
            },
        }
        default = next(
            (service for name, service in loaded if name == self.default_tenant),
            None,
        )
        if default is not None:
            document.update(default.stats_snapshot())
        return document

    # ------------------------------------------------------------------
    # observability (GET /metrics, /t/<tenant>/metrics, /debug/slow)
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """``GET /metrics``: every loaded tenant in Prometheus text form.

        Like every other aggregate document, a scrape never forces a
        lazy tenant to load — unloaded tenants simply contribute no
        samples (they are visible in the ``repro_tenants`` vs
        ``repro_tenants_loaded`` gap).
        """
        entries = self._snapshot_entries()
        loaded = [
            (entry.name, entry.service)
            for entry in sorted(entries, key=lambda e: e.name)
            if entry.service is not None
        ]
        documents = {
            name: service.stats_snapshot() for name, service in loaded
        }
        with self._lock:
            registry_errors = dict(self._errors)
        started = min(
            (service.stats.started_at for _, service in loaded), default=None
        )
        return render_metrics(
            documents,
            version=__version__,
            started_at=started,
            registry={
                "tenant_count": len(entries),
                "tenants_loaded": len(loaded),
                "errors": registry_errors,
            },
        )

    def tenant_metrics_text(self, name: str) -> str:
        """``GET /t/<tenant>/metrics``: one tenant's samples only.

        An unloaded lazy tenant renders just ``repro_build_info`` — the
        scrape stays cheap and the absence of tenant samples *is* the
        signal that nothing warmed it yet.
        """
        entry = self._entry(name)
        service = entry.service
        if service is None:
            return render_metrics({}, version=__version__)
        return render_metrics(
            {entry.name: service.stats_snapshot()},
            version=__version__,
            started_at=service.stats.started_at,
        )

    def slow_queries(self, name: str | None = None) -> dict:
        """``GET /debug/slow``: flight-recorder entries, JSON-ready.

        With ``name`` the single-tenant document; without, every
        registered tenant keyed by name.  Never forces a lazy load.
        """
        if name is not None:
            return self._tenant_slow(self._entry(name))
        entries = self._snapshot_entries()
        return {
            "tenants": {
                entry.name: self._tenant_slow(entry)
                for entry in sorted(entries, key=lambda e: e.name)
            }
        }

    @staticmethod
    def _tenant_slow(entry: _TenantEntry) -> dict:
        service = entry.service
        if service is None:
            return {"loaded": False, "summary": None, "entries": []}
        return {
            "loaded": True,
            "summary": service.flight.summary(),
            "entries": service.flight.snapshot(),
        }
