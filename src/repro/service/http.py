"""Stdlib HTTP front end: JSON endpoints over ``ThreadingHTTPServer``.

The server routes onto a :class:`~repro.service.registry.TenantRegistry`
— one process hosting any number of (graph, index) pairs.  Endpoints
(all JSON, UTF-8):

* ``POST /t/<tenant>/query``  — answer one LSCR query on a tenant
  (``{"source", "target", "labels", "constraint", "algorithm"?,
  "use_cache"?}``);
* ``POST /t/<tenant>/batch``  — answer a batch (``{"queries":
  [spec, ...], "use_cache"?}``), order-preserving and concurrent;
* ``POST /t/<tenant>/edges``  — apply a live edge-addition batch
  (``{"edges": [{"source", "label", "target"}, ...]}``) and publish a
  new serving epoch; gated behind ``serve --allow-updates`` (403 when
  off, 501 on sharded tenants whose slices cannot follow yet);
* ``GET /t/<tenant>/stats``   — that tenant's telemetry;
* ``GET /t/<tenant>/healthz`` — that tenant's liveness and load state;
* ``GET /metrics``, ``GET /t/<tenant>/metrics`` — the same telemetry
  in Prometheus text exposition format (``text/plain; version=0.0.4``),
  aggregate and per-tenant;
* ``GET /debug/slow``, ``GET /t/<tenant>/debug/slow`` — the slow-query
  flight recorder: the worst-N traced queries above ``serve
  --slow-ms``, with their span trees;
* ``POST /query``, ``POST /batch``, ``POST /edges`` — un-prefixed
  aliases for the registry's **default tenant**, so single-graph
  clients keep working; every query/batch/edges route accepts
  ``?trace=1`` to force a request-scoped trace echoed back in the
  response's ``trace`` field;
* ``GET /stats``, ``GET /healthz`` — the default tenant's documents
  *plus* cross-tenant aggregation (per-tenant load state, graph sizes,
  merged counters);
* ``GET /tenants``    — list every tenant and its load state;
* ``POST /tenants``   — register a tenant at runtime from file paths
  (``{"name", "graph", "index"?, "seed"?, "algorithm"?, ...}``), warm
  started lazily on its first query;
* ``DELETE /t/<tenant>`` — deregister a tenant;
* ``POST /shard/<id>/expand``, ``POST /shard/<id>/query``,
  ``POST /shard/<id>/update``, ``GET /shard/<id>`` — present when shard
  workers are attached (``serve --shards N`` or ``serve --worker
  SLICE_FILE``): the scatter-gather and two-phase slice-swap wire a
  remote :class:`~repro.shard.worker.HttpShardWorker` drives, so a
  shard can live in another process behind this same front end;
* ``POST /admin/rebalance``, ``POST /t/<tenant>/admin/rebalance`` —
  D-guided shard rebalancing from live border-crossing counters; only
  sharded tenants accept it (plain tenants answer a structured 501).

Errors are structured: every failure body is
``{"error": {"type": ..., "message": ...}}`` with a matching 4xx/5xx
status — unknown tenant ids give 404, duplicate registrations 409.
``ThreadingHTTPServer`` gives one thread per connection; the registry
and each :class:`~repro.service.app.QueryService` are safe for that by
construction (immutable graphs/indexes, locked caches and counters).

Binding ``port=0`` asks the OS for an ephemeral port — the bound
address is on ``server.server_address`` — which is how the integration
tests and ``python -m repro serve --port 0`` avoid collisions.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    ReadOnlyServiceError,
    ReproError,
    ShardUnavailableError,
    UnknownTenantError,
    UpdatesDisabledError,
    UpdatesUnsupportedError,
)
from repro.resilience.deadline import Deadline, use_deadline
from repro.service.app import QueryService
from repro.service.planner import PLANNABLE_ALGORITHMS
from repro.service.registry import TenantRegistry, valid_tenant_name

__all__ = ["ServiceHTTPServer", "ServiceRequestHandler", "create_server"]

#: Refuse request bodies larger than this many bytes (memory guard).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Options ``POST /tenants`` forwards to :meth:`QueryService.from_files`,
#: with the predicate each value must satisfy.  Validated here so a bad
#: registration fails the POST with a 400, not every later query with a
#: 500 once the lazy warm start trips over it (bool is excluded from the
#: int checks — JSON ``true`` must not pass as a seed).
_TENANT_OPTION_FIELDS = {
    "seed": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "algorithm": lambda v: v in PLANNABLE_ALGORITHMS,
    "cache_size": lambda v: isinstance(v, int) and not isinstance(v, bool)
    and v >= 0,
    "cache_ttl": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v > 0,
    "max_workers": lambda v: isinstance(v, int) and not isinstance(v, bool)
    and v >= 1,
    "max_batch": lambda v: isinstance(v, int) and not isinstance(v, bool)
    and v >= 1,
    "landmark_count": lambda v: isinstance(v, int) and not isinstance(v, bool)
    and v >= 1,
    "trace_sample": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and 0.0 <= v <= 1.0,
    "slow_ms": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "slow_log_size": lambda v: isinstance(v, int) and not isinstance(v, bool)
    and v >= 1,
    "approx": lambda v: isinstance(v, bool),
    "approx_default": lambda v: isinstance(v, bool),
    "approx_recheck": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and 0.0 <= v <= 1.0,
}


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`TenantRegistry`.

    A bare :class:`QueryService` is accepted too and wrapped as the
    registry's default tenant — the PR 1 embedding API unchanged.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService | TenantRegistry,
        shard_workers: dict[str, Any] | None = None,
        allow_updates: bool = False,
        default_deadline_ms: float | None = None,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        if isinstance(service, TenantRegistry):
            self.registry = service
        else:
            self.registry = TenantRegistry.for_service(service)
        #: Shard id (as URL segment) → worker for the ``/shard/<id>/...``
        #: routes; empty when this server hosts no shard workers.
        self.shard_workers: dict[str, Any] = shard_workers or {}
        #: Gate for ``POST /edges`` (live graph updates): an admin
        #: operation the operator must opt into (``serve
        #: --allow-updates``); off, the routes answer a structured 403.
        self.allow_updates = allow_updates
        #: Budget applied to every ``/query`` and ``/batch`` request that
        #: doesn't name its own ``?deadline_ms=`` (``serve
        #: --default-deadline-ms``); None serves without deadlines.
        self.default_deadline_ms = default_deadline_ms

    @property
    def service(self) -> QueryService:
        """The default tenant's service (back-compat convenience)."""
        return self.registry.get()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes tenant and admin endpoints onto the shared registry."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    #: Quiet by default — a query service would log via real telemetry,
    #: and the test suite starts dozens of servers.
    verbose = False

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        registry = self.server.registry
        try:
            path, _ = self._route()
            if path == "/healthz":
                self._send_json(200, registry.health())
            elif path == "/stats":
                self._send_json(200, registry.stats_snapshot())
            elif path == "/metrics":
                self._send_text(200, registry.metrics_text())
            elif path == "/debug/slow":
                self._send_json(200, registry.slow_queries())
            elif path == "/tenants":
                self._send_json(200, registry.describe())
            elif path.startswith("/shard/"):
                worker = self._shard_worker(path, expected_parts=2)
                self._send_json(200, worker.describe())
            else:
                tenant, endpoint = self._split_tenant_path(path)
                if endpoint == "stats":
                    self._send_json(200, registry.tenant_stats(tenant))
                elif endpoint == "healthz":
                    self._send_json(200, registry.tenant_health(tenant))
                elif endpoint == "metrics":
                    self._send_text(200, registry.tenant_metrics_text(tenant))
                elif endpoint == "debug/slow":
                    self._send_json(200, registry.slow_queries(tenant))
                else:
                    raise BadRequestError(
                        f"no such endpoint: GET {self.path}", status=404
                    )
        except BadRequestError as error:
            registry.record_error(self._error_kind(error))
            self._send_error(error.status, self._error_kind(error), str(error))

    def do_POST(self) -> None:  # noqa: N802
        registry = self.server.registry
        service: QueryService | None = None
        try:
            # Read the body before any routing verdict: an early 404 on
            # a keep-alive connection must not leave body bytes behind
            # to corrupt the next request.
            payload = self._read_json_body()
            path, query = self._route()
            trace = query.get("trace") in ("1", "true")
            if path == "/tenants":
                self._send_json(201, self._register_tenant(payload))
                return
            if path.startswith("/shard/"):
                self._handle_shard_post(path, payload)
                return
            if path in ("/query", "/batch", "/edges", "/admin/rebalance"):
                tenant, endpoint = None, path[1:]
            else:
                tenant, endpoint = self._split_tenant_path(path)
                if endpoint not in ("query", "batch", "edges", "admin/rebalance"):
                    raise BadRequestError(
                        f"no such endpoint: POST {self.path}", status=404
                    )
            if endpoint == "admin/rebalance" and not self.server.allow_updates:
                # Rebalancing rewrites every worker's slice — the same
                # trust level as a live update batch, behind the same gate.
                raise UpdatesDisabledError()
            if endpoint == "edges" and not self.server.allow_updates:
                # Checked before the tenant lookup: the gate is a server
                # policy, not a per-tenant property.
                raise UpdatesDisabledError()
            service = registry.get(tenant)
            if endpoint == "admin/rebalance":
                rebalance = getattr(service, "rebalance", None)
                if rebalance is None:
                    raise UpdatesUnsupportedError(
                        "this tenant is not sharded; only sharded tenants "
                        "can rebalance slices",
                        detail={"tenant": tenant or "default"},
                    )
                self._send_json(200, rebalance())
            elif endpoint == "edges":
                self._send_json(200, service.handle_updates(payload, trace=trace))
            else:
                # Deadlines cover the answering endpoints only: update
                # batches are admin operations that must run to the end.
                # ``?mode=`` (exact | approximate) rides the same query
                # string; the service validates it into a 400.
                mode = query.get("mode")
                with self._deadline_scope(query):
                    if endpoint == "query":
                        response = service.handle_query(
                            payload, trace=trace, mode=mode
                        )
                    else:
                        response = service.handle_batch(
                            payload, trace=trace, mode=mode
                        )
                self._send_json(200, response)
        except BadRequestError as error:
            kind = self._error_kind(error)
            if service is not None:
                service.stats.record_error(kind)
            else:
                registry.record_error(kind)
            self._send_error(
                error.status,
                kind,
                str(error),
                detail=error.detail,
                headers=getattr(error, "headers", None),
            )
        except ReproError as error:
            # Anything else the library rejected is still the client's
            # query (bad constraint text reaching a deeper layer, ...).
            if service is not None:
                service.stats.record_error("bad-request")
            else:
                registry.record_error("bad-request")
            self._send_error(400, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 — last-resort boundary
            if service is not None:
                service.stats.record_error("internal-error")
            else:
                registry.record_error("internal-error")
            self._send_error(500, "internal-error", f"{type(error).__name__}: {error}")

    def do_DELETE(self) -> None:  # noqa: N802
        registry = self.server.registry
        self._drain_body()
        try:
            path, _ = self._route()
            parts = path.strip("/").split("/")
            if len(parts) != 2 or parts[0] != "t":
                raise BadRequestError(
                    f"no such endpoint: DELETE {self.path}", status=404
                )
            registry.remove(parts[1])
            self._send_json(200, {"removed": parts[1]})
        except BadRequestError as error:
            registry.record_error(self._error_kind(error))
            self._send_error(error.status, self._error_kind(error), str(error))

    def do_PUT(self) -> None:  # noqa: N802
        self._drain_body()
        self._send_error(405, "method-not-allowed", "use GET, POST or DELETE")

    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        """Discard any request body so keep-alive connections stay in
        sync — unread bytes would be parsed as the next request line."""
        try:
            remaining = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                return
            remaining -= len(chunk)

    def _route(self) -> tuple[str, dict[str, str]]:
        """Split ``self.path`` into (path, query) — query keeps the
        first value per key (``?trace=1`` is the only consumer)."""
        split = urlsplit(self.path)
        query = {
            key: values[0]
            for key, values in parse_qs(split.query).items()
            if values
        }
        return split.path, query

    def _shard_worker(self, path: str, *, expected_parts: int) -> Any:
        """Resolve ``/shard/<id>[/<endpoint>]`` to an attached worker."""
        parts = path.strip("/").split("/")
        if len(parts) != expected_parts or parts[0] != "shard":
            raise BadRequestError(
                f"no such endpoint: {self.command} {self.path}", status=404
            )
        worker = self.server.shard_workers.get(parts[1])
        if worker is None:
            raise BadRequestError(
                f"no shard worker {parts[1]!r} attached to this server",
                status=404,
            )
        return worker

    def _handle_shard_post(self, path: str, payload: object) -> None:
        """``POST /shard/<id>/{expand,query,update}`` → the worker.

        ``update`` (the two-phase slice swap) is deliberately *not*
        behind ``allow_updates``: a worker process trusts the
        coordinator that attached it — the gate governs a tenant's
        public write surface, not the fleet-internal wire.
        """
        worker = self._shard_worker(path, expected_parts=3)
        endpoint = path.strip("/").split("/")[2]
        if endpoint == "expand":
            self._send_json(200, worker.handle_expand(payload))
        elif endpoint == "query":
            self._send_json(200, worker.handle_query(payload))
        elif endpoint == "update":
            self._send_json(200, worker.handle_update(payload))
        else:
            raise BadRequestError(
                f"no such endpoint: POST {self.path}", status=404
            )

    def _split_tenant_path(self, path: str) -> tuple[str, str]:
        """``/t/<tenant>/<endpoint>`` → (tenant, endpoint), or 404.

        The endpoint may span segments (``debug/slow``), so everything
        after the tenant joins back into one endpoint string.
        """
        parts = path.strip("/").split("/")
        if len(parts) >= 3 and parts[0] == "t" and valid_tenant_name(parts[1]):
            return parts[1], "/".join(parts[2:])
        raise BadRequestError(
            f"no such endpoint: {self.command} {self.path}", status=404
        )

    def _register_tenant(self, payload: object) -> dict:
        """``POST /tenants``: validate and register a lazy tenant."""
        if not isinstance(payload, dict):
            raise BadRequestError("tenant registration must be a JSON object")
        name = payload.get("name")
        if not valid_tenant_name(name):
            raise BadRequestError(
                "'name' must be 1-128 characters from [A-Za-z0-9._-], "
                "not starting with a dot"
            )
        graph = payload.get("graph")
        if not isinstance(graph, str) or not graph:
            raise BadRequestError("'graph' must be a TSV file path")
        index = payload.get("index")
        if index is not None and not isinstance(index, str):
            raise BadRequestError("'index' must be a file path string")
        options: dict[str, Any] = {}
        for field, acceptable in _TENANT_OPTION_FIELDS.items():
            if field not in payload or payload[field] is None:
                continue
            value = payload[field]
            if not acceptable(value):
                raise BadRequestError(
                    f"invalid value for {field!r}: {value!r}"
                )
            options[field] = value
        self.server.registry.register_files(name, graph, index, **options)
        return {"registered": name, "loaded": False}

    def _deadline_scope(self, query: dict[str, str]) -> use_deadline:
        """The deadline context for one ``/query`` or ``/batch`` request.

        ``?deadline_ms=`` wins over the server-wide default; neither
        means ``use_deadline(None)``, which costs one ContextVar set and
        keeps every downstream check a no-op.
        """
        raw = query.get("deadline_ms")
        if raw is None:
            budget_ms = self.server.default_deadline_ms
        else:
            try:
                budget_ms = float(raw)
            except ValueError:
                budget_ms = math.nan
            if not math.isfinite(budget_ms) or budget_ms <= 0:
                raise BadRequestError(
                    f"deadline_ms must be a positive number of "
                    f"milliseconds, got {raw!r}"
                )
        if budget_ms is None:
            return use_deadline(None)
        return use_deadline(Deadline(budget_ms))

    @staticmethod
    def _error_kind(error: BadRequestError) -> str:
        if isinstance(error, DeadlineExceededError):
            return "deadline-exceeded"
        if isinstance(error, ShardUnavailableError):
            return "shard-unavailable"
        if isinstance(error, OverloadedError):
            return "overloaded"
        if isinstance(error, UnknownTenantError):
            return "unknown-tenant"
        if isinstance(error, ReadOnlyServiceError):
            return "read-only"
        if isinstance(error, UpdatesDisabledError):
            return "updates-disabled"
        if isinstance(error, UpdatesUnsupportedError):
            return "updates-unsupported"
        return "not-found" if error.status == 404 else "bad-request"

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise BadRequestError("missing or invalid Content-Length") from None
        if length <= 0:
            raise BadRequestError("request body is empty; send a JSON object")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from None

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        """Prometheus exposition body (text format 0.0.4)."""
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        kind: str,
        message: str,
        detail: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        body: dict[str, Any] = {"error": {"type": kind, "message": message}}
        if detail is not None:
            body["error"]["detail"] = detail
        self._send_json(status, body, headers=headers)


def create_server(
    service: QueryService | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 8080,
    shard_workers: dict[str, Any] | None = None,
    allow_updates: bool = False,
    default_deadline_ms: float | None = None,
) -> ServiceHTTPServer:
    """Bind (but do not start) a server for a service or registry.

    ``shard_workers`` attaches :class:`~repro.shard.worker.ShardWorker`\\ s
    behind the ``/shard/<id>/...`` routes (keys are the URL segments).
    ``allow_updates`` opens the ``POST /edges`` live-update routes
    (otherwise they answer a structured 403).  ``default_deadline_ms``
    bounds every query/batch request that doesn't pass its own
    ``?deadline_ms=``.  Callers run ``server.serve_forever()`` —
    typically on a dedicated thread — and stop with
    ``server.shutdown()`` + ``server.server_close()``.
    """
    return ServiceHTTPServer(
        (host, port),
        service,
        shard_workers,
        allow_updates,
        default_deadline_ms=default_deadline_ms,
    )
