"""Stdlib HTTP front end: JSON endpoints over ``ThreadingHTTPServer``.

Endpoints (all JSON, UTF-8):

* ``POST /query``  — answer one LSCR query
  (``{"source", "target", "labels", "constraint", "algorithm"?,
  "use_cache"?}``);
* ``POST /batch``  — answer a batch (``{"queries": [spec, ...],
  "use_cache"?}``), order-preserving and concurrent;
* ``GET /stats``   — the :class:`ServiceStats` / cache telemetry;
* ``GET /healthz`` — liveness and what is loaded.

Errors are structured: every failure body is
``{"error": {"type": ..., "message": ...}}`` with a matching 4xx/5xx
status.  ``ThreadingHTTPServer`` gives one thread per connection; the
shared :class:`~repro.service.app.QueryService` is safe for that by
construction (immutable graph/index, locked caches and counters).

Binding ``port=0`` asks the OS for an ephemeral port — the bound
address is on ``server.server_address`` — which is how the integration
tests and ``python -m repro serve --port 0`` avoid collisions.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import BadRequestError, ReproError
from repro.service.app import QueryService

__all__ = ["ServiceHTTPServer", "ServiceRequestHandler", "create_server"]

#: Refuse request bodies larger than this many bytes (memory guard).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the shared service."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    #: Quiet by default — a query service would log via real telemetry,
    #: and the test suite starts dozens of servers.
    verbose = False

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        if self.path == "/healthz":
            self._send_json(200, self.server.service.health())
        elif self.path == "/stats":
            self._send_json(200, self.server.service.stats_snapshot())
        else:
            self._send_error(404, "not-found", f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        service = self.server.service
        if self.path not in ("/query", "/batch"):
            self._send_error(404, "not-found", f"no such endpoint: POST {self.path}")
            return
        try:
            payload = self._read_json_body()
            if self.path == "/query":
                self._send_json(200, service.handle_query(payload))
            else:
                self._send_json(200, service.handle_batch(payload))
        except BadRequestError as error:
            service.stats.record_error("bad-request")
            self._send_error(error.status, "bad-request", str(error))
        except ReproError as error:
            # Anything else the library rejected is still the client's
            # query (bad constraint text reaching a deeper layer, ...).
            service.stats.record_error("bad-request")
            self._send_error(400, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 — last-resort boundary
            service.stats.record_error("internal-error")
            self._send_error(500, "internal-error", f"{type(error).__name__}: {error}")

    def do_PUT(self) -> None:  # noqa: N802
        self._send_error(405, "method-not-allowed", "use GET or POST")

    do_DELETE = do_PUT  # noqa: N815

    # ------------------------------------------------------------------

    def _read_json_body(self) -> object:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise BadRequestError("missing or invalid Content-Length") from None
        if length <= 0:
            raise BadRequestError("request body is empty; send a JSON object")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from None

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
) -> ServiceHTTPServer:
    """Bind (but do not start) a server for ``service``.

    Callers run ``server.serve_forever()`` — typically on a dedicated
    thread — and stop with ``server.shutdown()`` + ``server.server_close()``.
    """
    return ServiceHTTPServer((host, port), service)
