"""Concurrent, order-preserving batch execution.

The paper's algorithms are CPU-bound pure functions of (graph, index,
query): per-query state (``close`` maps, checkers, heaps) is created
inside each ``answer`` call and the graph/index are immutable after
load, so a batch of queries can fan out across a ``ThreadPoolExecutor``
with no locking at all.  :class:`BatchExecutor` packages that pattern:

* **order preservation** — results come back positionally aligned with
  the input batch, whatever order the workers finished in;
* **constraint amortisation** — :meth:`run` prepares raw
  ``(source, target, labels, constraint_text)`` specs through the
  session's shared constraint cache *before* fanning out, so each
  distinct constraint text in the batch is parsed exactly once (the
  batch is grouped by constraint at the parsing stage);
* **degenerate batches stay serial** — empty and single-element
  batches, and ``max_workers=1``, skip thread-pool setup entirely, so
  :meth:`LSCRSession.answer_many` costs nothing extra for small inputs.

Exceptions raised by any query propagate to the caller (the service
layer validates requests up front, so a worker exception is a bug, not
traffic).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any, TypeVar

from repro.core.query import LSCRQuery
from repro.core.result import QueryResult
from repro.obs.trace import span

__all__ = ["BatchExecutor", "DEFAULT_MAX_WORKERS"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Mirrors ``ThreadPoolExecutor``'s own default sizing rule.
DEFAULT_MAX_WORKERS = min(32, (os.cpu_count() or 1) + 4)


class BatchExecutor:
    """Fan work over a thread pool, returning results in input order.

    ``persistent=True`` keeps one lazily created pool alive across
    calls — right for a long-lived service, where a pool per request
    would put thread creation/teardown on the hot path.  The default
    tears the pool down after each call, so throwaway executors (one
    ``answer_many`` invocation) leave no idle threads behind.
    """

    def __init__(
        self, max_workers: int | None = None, *, persistent: bool = False
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.persistent = persistent
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"BatchExecutor(max_workers={self.max_workers}, "
            f"persistent={self.persistent})"
        )

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Iterable[_ItemT],
    ) -> list[_ResultT]:
        """``[fn(item) for item in items]``, concurrently, order kept.

        Traced requests see the fan-out as an ``executor`` span (item
        count + serial/pool mode).  Worker threads do not inherit the
        request context, so per-item spans are the *caller's* job: wrap
        ``fn`` with :func:`repro.obs.trace.use_trace` to stitch item
        spans into the request's trace (the service's batch path does).
        """
        work = list(items)
        if len(work) <= 1 or self.max_workers == 1:
            with span("executor", items=len(work), mode="serial"):
                return [fn(item) for item in work]
        if self.persistent:
            with span("executor", items=len(work), mode="pool"):
                return list(self._shared_pool().map(fn, work))
        workers = min(self.max_workers or DEFAULT_MAX_WORKERS, len(work))
        with span("executor", items=len(work), mode="pool"):
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-batch"
            ) as pool:
                return list(pool.map(fn, work))

    def _shared_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers or DEFAULT_MAX_WORKERS,
                        thread_name_prefix="repro-batch",
                    )
        return pool

    def shutdown(self) -> None:
        """Release the persistent pool (no-op otherwise; idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def run(
        self,
        session: Any,
        queries: Iterable[LSCRQuery | Sequence],
    ) -> list[QueryResult]:
        """Answer a batch on an :class:`~repro.session.LSCRSession`.

        Accepts prepared :class:`LSCRQuery` objects or raw
        ``(source, target, labels, constraint)`` tuples; raw specs are
        prepared serially first so the session's constraint cache parses
        each distinct constraint text once, then answering fans out.
        """
        prepared = [
            query if isinstance(query, LSCRQuery) else session.make_query(*query)
            for query in queries
        ]
        return self.map(session.answer, prepared)
