"""repro.service — a concurrent LSCR query service.

The serving layer the one-shot APIs (``LSCRSession.ask``,
``python -m repro query``) lack: load a graph and its local index once,
then answer sustained traffic from many threads.  The pieces compose in
one direction:

========================  =============================================
:mod:`~.planner`          canonical cache keys, trivial answers,
                          algorithm choice
:mod:`~.cache`            LRU+TTL result cache, shared parse-once
                          constraint cache
:mod:`~.executor`         order-preserving concurrent batch execution
:mod:`~.stats`            thread-safe service telemetry
:mod:`~.app`              :class:`QueryService` — planner + caches +
                          session pool + executor + stats
:mod:`~.registry`         :class:`TenantRegistry` — many tenants
                          (graph+index pairs), lazy warm start,
                          cross-tenant aggregation
:mod:`~.http`             stdlib JSON endpoints (``POST /query``,
                          ``POST /batch``, ``GET /stats``,
                          ``GET /healthz``, ``/t/<tenant>/...``,
                          ``GET|POST /tenants``)
========================  =============================================

Start one from the CLI with ``python -m repro serve --graph g.tsv
--index g.index.json`` (add ``--tenant name=g2.tsv:g2.index.json`` for
more graphs) or embed it::

    from repro.service import QueryService, TenantRegistry, create_server

    registry = TenantRegistry()
    registry.add("default", QueryService.from_files("g.tsv", "g.index.json"))
    registry.register_files("yago", "yago.tsv")    # lazy warm start
    server = create_server(registry, port=0)       # ephemeral port
    server.serve_forever()

Attribute access is lazy (PEP 562): :mod:`repro.session` imports the
cache/executor submodules while :mod:`~.app` imports the session back,
and a lazy package namespace keeps that cycle acyclic at import time.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

_EXPORTS = {
    "BatchExecutor": "repro.service.executor",
    "CacheStats": "repro.service.cache",
    "CandidateCache": "repro.service.cache",
    "CanonicalKey": "repro.service.planner",
    "ConstraintCache": "repro.service.cache",
    "GraphEpoch": "repro.service.epoch",
    "QueryPlan": "repro.service.planner",
    "QueryPlanner": "repro.service.planner",
    "QueryService": "repro.service.app",
    "ResultCache": "repro.service.cache",
    "ServiceHTTPServer": "repro.service.http",
    "ServiceStats": "repro.service.stats",
    "TenantRegistry": "repro.service.registry",
    "create_server": "repro.service.http",
    "merge_snapshots": "repro.service.stats",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}") from None
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
