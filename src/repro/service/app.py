"""The query service: planner + caches + session pool + batch executor.

:class:`QueryService` is the object the HTTP front end (and any
embedding application) talks to.  It owns everything shared between
requests:

* one immutable :class:`KnowledgeGraph` (and optionally one
  :class:`LocalIndex`), loaded once at startup — *never mutated after*,
  which is what makes lock-free concurrent answering sound.  At
  construction the graph is **frozen** into a read-optimized CSR
  snapshot (:class:`~repro.graph.csr.FrozenGraph`, ``freeze=False``
  opts out): every search and SPARQL evaluation then iterates
  contiguous label-slices behind per-vertex label-mask pre-tests
  instead of walking per-vertex dicts;
* a :class:`QueryPlanner` with a process-wide
  :class:`ConstraintCache`;
* a :class:`ResultCache` keyed on canonical queries, and a
  :class:`CandidateCache` memoising ``V(S, G)`` per canonical
  constraint so repeated constraints skip the SPARQL engine;
* a lazily populated pool of per-algorithm :class:`LSCRSession`\\ s, all
  sharing the graph, index and constraint cache (per-query search state
  lives inside each ``answer`` call, so one session per algorithm
  serves every thread; the only shared mutable piece is the shuffle
  rng, whose interleaving affects traversal-order telemetry, never
  answers);
* a :class:`BatchExecutor` for ``POST /batch`` fan-out and a
  :class:`ServiceStats` ledger for ``GET /stats``.

Two API levels are exposed.  :meth:`query` / :meth:`query_batch` take
Python values and return ``(QueryResult, meta)`` pairs;
:meth:`handle_query` / :meth:`handle_batch` / :meth:`health` /
:meth:`stats_snapshot` speak JSON-ready dicts and raise
:class:`~repro.exceptions.BadRequestError` for anything a client got
wrong, which the HTTP layer maps to structured 4xx responses.
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Iterable
from dataclasses import asdict
from pathlib import Path
from threading import Lock
from time import perf_counter
from typing import Any

from repro.constraints.label_constraint import LabelConstraint
from repro.constraints.substructure import SubstructureConstraint
from repro.core.result import QueryResult
from repro.exceptions import (
    BadRequestError,
    ConstraintError,
    ServiceConfigError,
    SparqlError,
)
from repro.graph.csr import FrozenGraph, freeze_graph
from repro.graph.io import load_tsv
from repro.graph.labeled_graph import KnowledgeGraph
from repro.index.local_index import LocalIndex
from repro.index.storage import load_or_build_index
from repro.service.cache import CandidateCache, ConstraintCache, ResultCache
from repro.service.executor import BatchExecutor
from repro.service.planner import QueryPlan, QueryPlanner
from repro.service.stats import ServiceStats
from repro.session import LSCRSession
from repro.utils.persist import atomic_write_json

__all__ = ["QueryService", "DEFAULT_MAX_BATCH"]

#: Refuse larger ``POST /batch`` bodies (memory guard, not a tuning knob).
DEFAULT_MAX_BATCH = 4096

_SPEC_FIELDS = ("source", "target", "labels", "constraint")

#: On-disk format of :meth:`QueryService.save_snapshot` files.
_SNAPSHOT_VERSION = 1


class QueryService:
    """A shared, thread-safe LSCR answering engine for one graph."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: LocalIndex | None = None,
        *,
        algorithm: str | None = None,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        max_workers: int | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        seed: int = 0,
        freeze: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ServiceConfigError(f"max_batch must be >= 1, got {max_batch}")
        # Freeze once at warm start: the service's immutability contract
        # makes the CSR snapshot safe, and every session/planner below
        # sees the frozen graph.  Ids are shared, so an index built (or
        # loaded) against the source graph stays valid.
        self.graph = freeze_graph(graph) if freeze else graph
        self.index = index
        self.seed = seed
        self.max_batch = max_batch
        self.constraints = ConstraintCache()
        # Follows the result cache's knob: cache_size=0 disables V(S,G)
        # memoisation too, so one flag yields a genuinely uncached service.
        self.candidates = CandidateCache(max_size=cache_size)
        self.planner = QueryPlanner(
            self.graph,
            self.constraints,
            has_index=index is not None,
            fallback_algorithm=algorithm or "uis*",
        )
        self._forced_algorithm = algorithm
        self.results = ResultCache(max_size=cache_size, ttl_seconds=cache_ttl)
        self.executor = BatchExecutor(max_workers=max_workers, persistent=True)
        self.stats = ServiceStats()
        self._sessions: dict[str, LSCRSession] = {}
        self._session_lock = Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        graph_path: str | Path,
        index_path: str | Path | None = None,
        *,
        landmark_count: int | None = None,
        seed: int = 0,
        freeze: bool = True,
        **kwargs: Any,
    ) -> "QueryService":
        """Warm-start a service from a TSV graph and a persisted index.

        ``index_path=None`` serves index-free (UIS*/UIS fallback).  A
        given-but-missing ``index_path`` builds the index at startup and
        persists it there, so the *next* start is warm — the service
        counterpart of ``python -m repro index``.

        The graph is frozen *before* the index is touched, so a missing
        index is built over the CSR snapshot (itself measurably faster)
        and a loaded one binds to the graph the sessions will traverse.
        """
        graph_path = Path(graph_path)
        if not graph_path.is_file():
            raise ServiceConfigError(f"graph file not found: {graph_path}")
        graph = load_tsv(graph_path, name=graph_path.stem)
        if freeze:
            graph = freeze_graph(graph)
        index = None
        if index_path is not None:
            index = load_or_build_index(
                graph, index_path, k=landmark_count, rng=seed, save_if_built=True
            )
        return cls(graph, index, seed=seed, freeze=freeze, **kwargs)

    def __repr__(self) -> str:
        return (
            f"QueryService({self.graph.name!r}, "
            f"default={self.planner.default_algorithm!r}, "
            f"index={'loaded' if self.index is not None else 'none'})"
        )

    @property
    def default_algorithm(self) -> str:
        """The algorithm requests run on when they don't name one."""
        return self._forced_algorithm or self.planner.default_algorithm

    def close(self) -> None:
        """Release pooled resources (the persistent batch thread pool).

        Called when a tenant is removed from a
        :class:`~repro.service.registry.TenantRegistry`.  Idempotent,
        and safe with stragglers: a request still holding this service
        keeps answering — a fresh pool is created on demand if one more
        batch arrives.
        """
        self.executor.shutdown()

    # ------------------------------------------------------------------
    # Python-level API
    # ------------------------------------------------------------------

    def query(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] | LabelConstraint,
        constraint: str | SubstructureConstraint,
        algorithm: str | None = None,
        use_cache: bool = True,
        _batch: bool = False,
    ) -> tuple[QueryResult, dict]:
        """Answer one query; returns ``(result, meta)``.

        ``meta`` reports how the answer was produced: ``cached``,
        ``trivial`` and the planner's ``reason``.  With ``use_cache``
        off the result cache is neither consulted nor populated.
        """
        if algorithm is None:
            algorithm = self._forced_algorithm
        plan = self.planner.plan(source, target, labels, constraint, algorithm)
        return self._finish(plan, use_cache=use_cache, batch=_batch)

    def query_batch(
        self,
        specs: Iterable[dict],
        use_cache: bool = True,
    ) -> list[tuple[QueryResult, dict]]:
        """Answer a homogeneous batch concurrently, preserving order.

        Planning runs serially first — that is where constraint parsing
        happens, so the batch is effectively grouped by constraint text
        and each distinct text is parsed once — then execution fans out
        over the :class:`BatchExecutor`.  A per-spec ``use_cache`` key
        overrides the batch-level flag for that query only.
        """
        started = perf_counter()
        specs = list(specs)
        if len(specs) > self.max_batch:
            raise BadRequestError(
                f"batch of {len(specs)} queries exceeds the limit of "
                f"{self.max_batch}"
            )
        plans = [
            (
                self.planner.plan(
                    spec["source"],
                    spec["target"],
                    spec["labels"],
                    spec["constraint"],
                    spec.get("algorithm") or self._forced_algorithm,
                ),
                use_cache and spec.get("use_cache", True),
            )
            for spec in specs
        ]
        self.stats.record_batch()
        answered = self.executor.map(
            lambda item: self._finish(item[0], use_cache=item[1], batch=True), plans
        )
        self.stats.record_latency("batch", perf_counter() - started)
        return answered

    # ------------------------------------------------------------------

    def _finish(
        self, plan: QueryPlan, *, use_cache: bool, batch: bool
    ) -> tuple[QueryResult, dict]:
        """Execute (or short-circuit) one plan and record telemetry."""
        started = perf_counter()
        meta = {"cached": False, "trivial": False, "reason": plan.reason}
        if plan.is_trivial:
            result = QueryResult(
                answer=bool(plan.trivial_answer),
                algorithm="planner",
                seconds=0.0,
                passed_vertices=0,
            )
            meta["trivial"] = True
            self.stats.record_query(result, trivial=True, batch=batch)
            self.stats.record_latency("query", perf_counter() - started)
            return result, meta
        if use_cache:
            cached = self.results.get(plan.key)
            if cached is not None:
                meta["cached"] = True
                self.stats.record_query(cached, cached=True, batch=batch)
                self.stats.record_latency("query", perf_counter() - started)
                return cached, meta
        result = self._execute(plan)
        if use_cache:
            self.results.put(plan.key, result)
        self.stats.record_query(result, batch=batch)
        self.stats.record_latency("query", perf_counter() - started)
        return result, meta

    def _execute(self, plan: QueryPlan) -> QueryResult:
        """Run one non-trivial plan on the session it names.

        The execution seam subclasses reroute: the sharded service
        (:class:`repro.shard.ShardedQueryService`) sends non-forced
        plans to its scatter-gather coordinator instead.
        """
        assert plan.query is not None
        return self._session(plan.algorithm).answer(plan.query)

    def _session(self, algorithm: str) -> LSCRSession:
        """The shared session for ``algorithm`` (created on first use)."""
        session = self._sessions.get(algorithm)
        if session is not None:
            return session
        with self._session_lock:
            session = self._sessions.get(algorithm)
            if session is None:
                session = LSCRSession(
                    self.graph,
                    algorithm=algorithm,
                    index=self.index if algorithm == "ins" else None,
                    seed=self.seed,
                    constraint_cache=self.constraints,
                    candidate_cache=self.candidates,
                )
                self._sessions[algorithm] = session
        return session

    # ------------------------------------------------------------------
    # JSON-level API (used by the HTTP front end)
    # ------------------------------------------------------------------

    def handle_query(self, payload: object) -> dict:
        """``POST /query``: validate a JSON payload and answer it."""
        spec = self._validate_spec(payload, where="query")
        try:
            result, meta = self.query(
                spec["source"],
                spec["target"],
                spec["labels"],
                spec["constraint"],
                algorithm=spec.get("algorithm"),
                use_cache=spec.get("use_cache", True),
            )
        except (ConstraintError, SparqlError) as error:
            raise BadRequestError(f"invalid query: {error}") from error
        return self._result_payload(result, meta)

    def handle_batch(self, payload: object) -> dict:
        """``POST /batch``: validate and answer a batch payload."""
        if not isinstance(payload, dict) or "queries" not in payload:
            raise BadRequestError(
                "batch body must be a JSON object with a 'queries' array"
            )
        raw = payload["queries"]
        if not isinstance(raw, list) or not raw:
            raise BadRequestError("'queries' must be a non-empty array")
        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise BadRequestError("'use_cache' must be a boolean")
        specs = [
            self._validate_spec(item, where=f"queries[{position}]")
            for position, item in enumerate(raw)
        ]
        try:
            answered = self.query_batch(specs, use_cache=use_cache)
        except (ConstraintError, SparqlError) as error:
            raise BadRequestError(f"invalid query in batch: {error}") from error
        return {
            "count": len(answered),
            "results": [self._result_payload(r, m) for r, m in answered],
        }

    def health(self) -> dict:
        """``GET /healthz``: liveness plus what is loaded."""
        return {
            "status": "ok",
            "graph": self.graph.name,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "labels": self.graph.num_labels,
            "graph_frozen": isinstance(self.graph, FrozenGraph),
            "index_loaded": self.index is not None,
            "default_algorithm": self.default_algorithm,
        }

    def stats_snapshot(self) -> dict:
        """``GET /stats``: the full telemetry document."""
        index_info: dict[str, Any] = {"loaded": self.index is not None}
        if self.index is not None:
            index_info["landmarks"] = len(self.index.partition.landmarks)
        return {
            "service": self.stats.snapshot(),
            "result_cache": self.results.stats().as_dict(),
            "constraint_cache": self.constraints.stats().as_dict(),
            "candidate_cache": self.candidates.stats().as_dict(),
            "graph": {
                "name": self.graph.name,
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
                "labels": self.graph.num_labels,
            },
            "index": index_info,
            "config": {
                "default_algorithm": self.default_algorithm,
                "cache_size": self.results.max_size,
                "cache_ttl": self.results.ttl_seconds,
                "max_workers": self.executor.max_workers,
                "max_batch": self.max_batch,
                "seed": self.seed,
            },
        }

    # ------------------------------------------------------------------
    # cache + stats persistence (ROADMAP "Cache warming and persistence")
    # ------------------------------------------------------------------

    def save_snapshot(self, path: str | Path) -> int:
        """Persist the result cache and stats ledger as JSON.

        The snapshot carries every unexpired result-cache entry (keyed
        on the planner's canonical keys) plus the
        :meth:`ServiceStats.snapshot` document, tagged with the graph's
        identity so :meth:`load_snapshot` can refuse a mismatched file.
        Written atomically (write-then-rename, like the index store).
        Returns the file size in bytes.
        """
        document = {
            "format_version": _SNAPSHOT_VERSION,
            "graph": {
                "name": self.graph.name,
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
            },
            "results": [
                {
                    "key": [key[0], key[1], list(key[2]), key[3]],
                    "result": asdict(result),
                }
                for key, result in self.results.export_entries()
            ],
            "stats": self.stats.snapshot(),
        }
        return atomic_write_json(document, path)

    def load_snapshot(self, path: str | Path) -> dict:
        """Warm the result cache and stats from a :meth:`save_snapshot` file.

        Raises :class:`~repro.exceptions.ServiceConfigError` when the
        file was written for a different graph (name or sizes differ) —
        a stale cache must never answer for the wrong data.  Returns
        ``{"results": n}`` with the number of warmed entries.
        """
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ServiceConfigError(
                f"cannot read service snapshot {path}: {error}"
            ) from error
        if document.get("format_version") != _SNAPSHOT_VERSION:
            raise ServiceConfigError(
                f"unsupported snapshot format version "
                f"{document.get('format_version')!r} in {path}"
            )
        graph_info = document.get("graph", {})
        ours = (self.graph.name, self.graph.num_vertices, self.graph.num_edges)
        theirs = (
            graph_info.get("name"),
            graph_info.get("vertices"),
            graph_info.get("edges"),
        )
        if ours != theirs:
            raise ServiceConfigError(
                f"snapshot {path} was taken for graph {theirs}, "
                f"this service hosts {ours}"
            )
        entries = []
        for item in document.get("results", []):
            source, target, labels, constraint = item["key"]
            key = (source, target, tuple(labels), constraint)
            entries.append((key, QueryResult(**item["result"])))
        warmed = self.results.import_entries(entries)
        self.stats.restore(document.get("stats", {}))
        return {"results": warmed}

    # ------------------------------------------------------------------

    @staticmethod
    def _validate_spec(payload: object, *, where: str) -> dict:
        """Shape-check one JSON query spec into :meth:`query` kwargs."""
        if not isinstance(payload, dict):
            raise BadRequestError(f"{where}: expected a JSON object")
        missing = [field for field in _SPEC_FIELDS if field not in payload]
        if missing:
            raise BadRequestError(f"{where}: missing field(s) {', '.join(missing)}")
        source = payload["source"]
        target = payload["target"]
        if not isinstance(source, str) or not isinstance(target, str):
            raise BadRequestError(f"{where}: 'source' and 'target' must be strings")
        labels = payload["labels"]
        if isinstance(labels, str):
            labels = [piece for piece in labels.split(",") if piece]
        if (
            not isinstance(labels, list)
            or not labels
            or not all(isinstance(label, str) for label in labels)
        ):
            raise BadRequestError(
                f"{where}: 'labels' must be a non-empty array of strings "
                "(or a comma-separated string)"
            )
        constraint = payload["constraint"]
        if not isinstance(constraint, str) or not constraint.strip():
            raise BadRequestError(
                f"{where}: 'constraint' must be a non-empty SPARQL string"
            )
        algorithm = payload.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise BadRequestError(f"{where}: 'algorithm' must be a string")
        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise BadRequestError(f"{where}: 'use_cache' must be a boolean")
        return {
            "source": source,
            "target": target,
            "labels": labels,
            "constraint": constraint,
            "algorithm": algorithm,
            "use_cache": use_cache,
        }

    @staticmethod
    def _result_payload(result: QueryResult, meta: dict) -> dict:
        """One query's JSON response body."""
        return {
            "answer": result.answer,
            "algorithm": result.algorithm,
            "seconds": result.seconds,
            "passed_vertices": result.passed_vertices,
            "cached": meta["cached"],
            "trivial": meta["trivial"],
            "reason": meta["reason"],
        }
